//! A reactive supervisor: reputations, bans, and the lifetime of a Sybil
//! army.
//!
//! Run with `cargo run -p redundancy-examples --bin reactive_supervisor`.
//!
//! The paper's caveat says a determined adversary eventually succeeds, "but
//! it is highly likely that in making these attempts she will be detected,
//! alerting the supervisor ... allowing for potential reactive measures".
//! This example *implements* those reactive measures: accounts implicated
//! in flagged tasks are banned, and we watch a 2,000-account Sybil army
//! evaporate round by round — then compare how long it survives under
//! simple redundancy (forever) vs the Balanced distribution.

use redundancy_core::RealizedPlan;
use redundancy_sim::rounds::{run_platform, PlatformConfig};
use redundancy_sim::survival::expected_free_cheats;
use redundancy_sim::CheatStrategy;
use redundancy_stats::DeterministicRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_tasks = 20_000u64;
    let epsilon = 0.75;
    let honest = 18_000u32;
    let sybils = 2_000u32;

    println!(
        "Platform: {n_tasks} tasks/round, {honest} honest accounts, {sybils} Sybils \
         cheating on every task they touch.\n"
    );

    let plan = RealizedPlan::balanced(n_tasks, epsilon)?;
    let config = PlatformConfig::strict(honest, sybils, CheatStrategy::AtLeast { min_copies: 1 });
    let mut rng = DeterministicRng::new(2005);
    let history = run_platform(&plan, &config, 12, &mut rng);

    println!("Balanced distribution at eps = {epsilon}, one-strike bans:");
    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>14} {:>10}",
        "round", "active sybils", "attacks", "detected", "wrong accepted", "banned"
    );
    for r in &history.rounds {
        println!(
            "{:>6} {:>14} {:>10} {:>10} {:>14} {:>10}",
            r.round, r.active_sybils, r.attacks, r.detected, r.wrong_accepted, r.banned
        );
    }
    match history.extinction_round() {
        Some(round) => println!("\nSybil army extinct by round {round}."),
        None => println!("\nSybils survived the horizon."),
    }
    println!(
        "Total damage: {} wrong results accepted, {} re-issued assignments, {} credit banked.",
        history.total_wrong_accepted(),
        history.total_reverification(),
        history.total_sybil_credit()
    );

    // Contrast: under simple redundancy the same army, cheating only on
    // fully-controlled pairs, is never detectable at all.
    let simple = RealizedPlan::k_fold(n_tasks, 2, epsilon)?;
    let pair_config = PlatformConfig::strict(honest, sybils, CheatStrategy::ExactTuples { k: 2 });
    let mut rng2 = DeterministicRng::new(2005);
    let simple_history = run_platform(&simple, &pair_config, 12, &mut rng2);
    println!(
        "\nSimple redundancy, pair-colluding adversary: {} wrong results accepted over \
         {} rounds, {} Sybils banned (pair collusion is invisible to comparison).",
        simple_history.total_wrong_accepted(),
        simple_history.rounds.len(),
        sybils - simple_history.rounds.last().map_or(0, |r| r.active_sybils),
    );

    let p0 = plan.effective_detection(0.1)?;
    println!(
        "\nPer-attempt geometric view (Proposition 3): with P_eff = {p0:.3}, a cheater \
         expects only {:.2} free cheats before her first ban.",
        expected_free_cheats(p0)
    );
    Ok(())
}
