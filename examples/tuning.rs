//! Tuning ε and stress-testing the guarantee against adversary growth.
//!
//! Run with `cargo run -p redundancy-examples --bin tuning`.
//!
//! Two sweeps a supervisor actually performs:
//!
//! 1. **Cost of assurance**: how the redundancy factor and precompute of
//!    the Balanced plan grow with the detection threshold ε;
//! 2. **Guarantee under siege**: with ε fixed, how the effective detection
//!    degrades as the adversary's assignment share p grows — closed form
//!    (Proposition 3) next to a full platform simulation.

use redundancy_core::RealizedPlan;
use redundancy_sim::{detection_experiment, AdversaryModel, CheatStrategy, ExperimentConfig};
use redundancy_stats::table::{fnum, inum, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100_000u64;

    println!("Sweep 1: cost of assurance (N = {n})\n");
    let mut cost = Table::new(&[
        "eps",
        "factor",
        "assignments",
        "tail mult.",
        "ringers",
        "vs simple",
    ]);
    cost.numeric();
    for eps in [0.1, 0.25, 0.5, 0.6, 0.75, 0.9, 0.95] {
        let plan = RealizedPlan::balanced(n, eps)?;
        let delta = plan.total_assignments() as i64 - 2 * n as i64;
        cost.row(&[
            &fnum(eps, 2),
            &fnum(plan.redundancy_factor(), 4),
            &inum(plan.total_assignments()),
            &plan.tail_multiplicity().unwrap_or(0).to_string(),
            &plan.ringer_tasks().to_string(),
            &format!(
                "{}{}",
                if delta >= 0 { "+" } else { "-" },
                inum(delta.unsigned_abs())
            ),
        ]);
    }
    print!("{}", cost.render());
    println!("\nBelow eps \u{2248} 0.797 the guarantee is cheaper than unguaranteed 2-fold redundancy.\n");

    let eps = 0.6;
    println!("Sweep 2: adversary growth (eps = {eps}, Balanced plan, N = 20,000)\n");
    let plan = RealizedPlan::balanced(20_000, eps)?;
    let bal = redundancy_core::Balanced::new(20_000, eps)?;
    let mut siege = Table::new(&["p", "closed form", "simulated", "attacks"]);
    siege.numeric();
    for p in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4] {
        let est = detection_experiment(
            &plan,
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
            &ExperimentConfig::new(10, 777),
        );
        let overall = est.overall();
        let closed = bal.p_nonasymptotic(1, p)?;
        siege.row(&[
            &fnum(p, 2),
            &fnum(closed, 4),
            &if overall.trials() > 0 {
                fnum(overall.estimate(), 4)
            } else {
                "-".into()
            },
            &overall.trials().to_string(),
        ]);
    }
    print!("{}", siege.render());
    println!(
        "\nProposition 3 in action: detection decays only as 1-(1-eps)^(1-p),\n\
         and the simulation tracks the closed form at every p."
    );
    Ok(())
}
