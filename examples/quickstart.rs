//! Quickstart: protect a volunteer computation against colluding cheaters.
//!
//! Run with `cargo run -p redundancy-examples --bin quickstart`.
//!
//! The scenario: you supervise a 500,000-task computation and want at
//! least a 60 % chance of catching any cheater, no matter how many copies
//! of a task they control.  Simple 2-fold redundancy cannot promise that —
//! this example builds the paper's Balanced distribution, realizes a
//! deployable plan, and checks the guarantee.

use redundancy_core::{Balanced, RealizedPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_tasks = 500_000u64;
    let epsilon = 0.6;

    // 1. The theoretical scheme: N times a zero-truncated Poisson law.
    let scheme = Balanced::new(n_tasks, epsilon)?;
    println!("Balanced distribution for {n_tasks} tasks at eps = {epsilon}:");
    println!("  gamma = ln(1/(1-eps))       = {:.4}", scheme.gamma());
    println!(
        "  redundancy factor           = {:.4}  (simple redundancy: 2.0)",
        scheme.redundancy_factor_exact()
    );
    println!(
        "  total assignments           = {:.0}  (simple redundancy: {})",
        scheme.total_assignments_exact(),
        2 * n_tasks
    );
    println!(
        "  detection at any tuple size = {:.2}  (simple redundancy: 0 on pairs)",
        scheme.p_asymptotic(1)
    );

    // 2. A deployable integer plan: floored buckets + tail + ringers.
    let plan = RealizedPlan::balanced(n_tasks, epsilon)?;
    println!("\nDeployable plan:");
    for p in plan.partitions().iter().take(5) {
        println!(
            "  {:>8} tasks x multiplicity {:<3} ({:?})",
            p.tasks, p.multiplicity, p.kind
        );
    }
    println!("  ... ({} partitions total)", plan.partitions().len());
    println!(
        "  tail: {} tasks at multiplicity {}; ringers: {} precomputed tasks",
        plan.tail_tasks(),
        plan.tail_multiplicity().unwrap_or(0),
        plan.ringer_tasks()
    );

    // 3. The guarantee survives realization, for every tuple size.
    let effective = plan.effective_detection(0.0)?;
    println!("\nEffective detection of the realized plan: {effective:.4} (>= {epsilon})");
    assert!(effective >= epsilon - 1e-9);

    // 4. And degrades gracefully if an adversary amasses 10% of all
    //    assignments (Proposition 3: 1 - (1-eps)^(1-p)).
    let at_p10 = plan.effective_detection(0.10)?;
    println!("With an adversary holding 10% of assignments: {at_p10:.4}");
    Ok(())
}
