//! Scheme shootout: let the advisor pick a plan for your requirements.
//!
//! Run with `cargo run -p redundancy-examples --bin scheme_shootout`.
//!
//! Three supervisors with different operational constraints ask the
//! advisor for the cheapest scheme that meets them; a comparison table of
//! the reference plans is printed alongside each verdict.

use redundancy_core::{advise, comparison_row, reference_plans, Requirements};
use redundancy_stats::table::{fnum, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenarios = [
        (
            "research lab: robust against a 10% adversary",
            Requirements {
                n_tasks: 200_000,
                epsilon: 0.5,
                max_adversary_proportion: 0.10,
                precompute_budget: 100,
                min_multiplicity: None,
            },
        ),
        (
            "trusted-ish grid: tiny adversary, big precompute budget",
            Requirements {
                n_tasks: 200_000,
                epsilon: 0.5,
                max_adversary_proportion: 0.0,
                precompute_budget: 5_000,
                min_multiplicity: None,
            },
        ),
        (
            "fault-prone platform: every task at least twice",
            Requirements {
                n_tasks: 200_000,
                epsilon: 0.5,
                max_adversary_proportion: 0.05,
                precompute_budget: 100,
                min_multiplicity: Some(2),
            },
        ),
    ];

    for (label, req) in scenarios {
        println!("### {label}");
        let advice = advise(&req)?;
        println!("advisor picks: {:?}", advice.choice);
        println!("  {}", advice.rationale);
        println!(
            "  cost: {:.0} assignments (factor {:.4}), precompute {:.0}, detection {:.2} at p = {}",
            advice.total_assignments,
            advice.redundancy_factor,
            advice.precompute,
            advice.effective_detection,
            req.max_adversary_proportion
        );

        let mut table = Table::new(&["reference plan", "factor", "effective detection"]);
        table.numeric();
        for plan in reference_plans(req.n_tasks, req.epsilon)? {
            let (name, factor, eff) = comparison_row(&req, &plan)?;
            table.row(&[&name, &fnum(factor, 4), &fnum(eff, 4)]);
        }
        print!("{}", table.render());
        println!();
    }
    Ok(())
}
