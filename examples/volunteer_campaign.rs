//! A SETI-style volunteer campaign under attack, end to end.
//!
//! Run with `cargo run -p redundancy-examples --bin volunteer_campaign`.
//!
//! A supervisor distributes 50,000 signal-analysis tasks to a pool of
//! 20,000 volunteer accounts.  Unknown to them, a determined adversary has
//! registered 2,000 Sybil accounts (10 % of the pool — the paper's
//! introduction notes SETI@home saw days with 5,000+ new user names) and
//! colludes across all of them, cheating on every task she touches.  The
//! honest volunteers also suffer a 0.5 % non-malicious error rate.
//!
//! We run the same campaign under three plans — simple redundancy,
//! Golle–Stubblebine, and Balanced — and compare what the supervisor
//! catches, what slips through, and what each plan costs.

use redundancy_core::RealizedPlan;
use redundancy_sim::engine::CampaignConfig;
use redundancy_sim::experiment::{detection_experiment_with, ExperimentConfig};
use redundancy_sim::supervisor::VerificationPolicy;
use redundancy_sim::{AdversaryModel, CheatStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_tasks = 50_000u64;
    let epsilon = 0.6;
    let adversary = AdversaryModel::SybilAccounts {
        total: 20_000,
        adversary: 2_000,
    };

    println!(
        "Campaign: {n_tasks} tasks, 20,000 volunteer accounts, 2,000 of them Sybils \
         (p = {:.0}%), honest fault rate 0.5%.\n",
        adversary.proportion() * 100.0
    );
    println!(
        "{:<20} {:>12} {:>8} {:>10} {:>12} {:>12} {:>11}",
        "plan", "assignments", "factor", "attacks", "detected", "undetected", "false flags"
    );

    let plans = [
        (
            "simple-redundancy",
            RealizedPlan::k_fold(n_tasks, 2, epsilon)?,
        ),
        (
            "golle-stubblebine",
            RealizedPlan::golle_stubblebine(n_tasks, epsilon)?,
        ),
        ("balanced", RealizedPlan::balanced(n_tasks, epsilon)?),
    ];

    for (name, plan) in &plans {
        let campaign = CampaignConfig {
            adversary,
            strategy: CheatStrategy::Always,
            honest_error_rate: 0.005,
            policy: VerificationPolicy::Unanimous,
        };
        let est = detection_experiment_with(plan, &campaign, &ExperimentConfig::new(8, 2005));
        let o = &est.outcome;
        println!(
            "{:<20} {:>12} {:>8.4} {:>10} {:>12} {:>12} {:>11}",
            name,
            plan.total_assignments(),
            plan.redundancy_factor(),
            o.total_attempted(),
            o.total_detected(),
            o.total_attempted() - o.total_detected(),
            o.false_flags,
        );
    }

    println!();
    println!("Reading the table:");
    println!(
        "- Simple redundancy hands the adversary every task she fully controls\n\
         \u{20}  (its undetected count is dominated by 2-tuples she owns outright)."
    );
    println!(
        "- Balanced catches a guaranteed fraction of attacks at ~30% fewer\n\
         \u{20}  assignments than simple redundancy, and its per-attack detection is\n\
         \u{20}  the same whatever tuple size the adversary holds (Proposition 3)."
    );
    println!(
        "- Golle-Stubblebine protects too, but pays more assignments for extra\n\
         \u{20}  protection at tuple sizes a smart adversary simply avoids."
    );
    Ok(())
}
