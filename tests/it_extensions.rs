//! Integration: the workspace extensions (presolve, MPS, survival,
//! reactive platform, goodness-of-fit) working across crate boundaries.

use redundancy_core::{AssignmentMinimizing, Balanced, RealizedPlan, Scheme};
use redundancy_lp::{parse_mps, solve_with_presolve, write_mps, Problem, Relation, Sense};
use redundancy_sim::rounds::{run_platform, PlatformConfig};
use redundancy_sim::survival::{expected_free_cheats, survival_experiment};
use redundancy_sim::CheatStrategy;
use redundancy_stats::gof::chi_square_test;
use redundancy_stats::samplers::sample_zero_truncated_poisson;
use redundancy_stats::special::zero_truncated_poisson_pmf;
use redundancy_stats::{DeterministicRng, Histogram};

/// Rebuild an S_m LP directly (the CLI's export path does the same).
fn s_m_problem(n: u64, eps: f64, dim: usize) -> Problem {
    let mut lp = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (1..=dim)
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    for (i, v) in vars.iter().enumerate() {
        lp.set_objective(*v, (i + 1) as f64);
    }
    let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&cover, Relation::Ge, n as f64);
    for k in 1..dim {
        let mut terms = vec![(vars[k - 1], -eps)];
        for i in (k + 1)..=dim {
            terms.push((
                vars[i - 1],
                (1.0 - eps) * redundancy_stats::special::binomial(i as u64, k as u64),
            ));
        }
        lp.add_constraint(&terms, Relation::Ge, 0.0);
    }
    lp
}

#[test]
fn s_m_survives_mps_round_trip_and_presolve() {
    let lp = s_m_problem(100_000, 0.5, 8);
    let direct = lp.solve().unwrap().objective;
    // MPS round trip.
    let round = parse_mps(&write_mps(&lp, "S8"))
        .unwrap()
        .solve()
        .unwrap()
        .objective;
    assert!((direct - round).abs() < 1e-6 * direct);
    // Presolve path.
    let (pre, _stats) = solve_with_presolve(&lp).unwrap();
    assert!((direct - pre.objective).abs() < 1e-6 * direct);
    // And all three agree with the core crate's (row-scaled) solver.
    let core = AssignmentMinimizing::solve(100_000, 0.5, 8).unwrap();
    assert!((core.objective() - direct).abs() < 1e-6 * direct);
}

#[test]
fn balanced_multiplicity_law_passes_chi_square() {
    // The per-task multiplicity of the Balanced distribution is
    // zero-truncated Poisson(γ); draw from the sampler and test against
    // the pmf the core crate's weights are built from.
    let eps = 0.75;
    let bal = Balanced::new(1_000_000, eps).unwrap();
    let gamma = bal.gamma();
    let mut rng = DeterministicRng::new(20_050_926);
    let mut hist = Histogram::new();
    for _ in 0..30_000 {
        hist.record(sample_zero_truncated_poisson(&mut rng, gamma) as usize);
    }
    let probs: Vec<f64> = (0..20)
        .map(|k| zero_truncated_poisson_pmf(gamma, k as u64))
        .collect();
    let result = chi_square_test(&hist, &probs, 5.0).unwrap();
    assert!(result.consistent(0.01), "{result:?}");

    // Cross-check the materialized plan proportions against the same law.
    let plan_props = bal.distribution().proportions();
    for (idx, &p) in plan_props.iter().take(6).enumerate() {
        let want = zero_truncated_poisson_pmf(gamma, idx as u64 + 1);
        assert!((p - want).abs() < 1e-9, "i={}", idx + 1);
    }
}

#[test]
fn realized_plan_task_counts_pass_chi_square() {
    // The integer plan's empirical multiplicity distribution must be
    // statistically indistinguishable from the ideal ZTP law.
    let eps = 0.6;
    let plan = RealizedPlan::balanced(200_000, eps).unwrap();
    let gamma = (1.0 / (1.0 - eps)).ln();
    let mut hist = Histogram::new();
    for p in plan.partitions() {
        if p.kind != redundancy_core::PartitionKind::Ringer {
            hist.record_n(p.multiplicity, p.tasks);
        }
    }
    let probs: Vec<f64> = (0..25)
        .map(|k| zero_truncated_poisson_pmf(gamma, k as u64))
        .collect();
    let result = chi_square_test(&hist, &probs, 5.0).unwrap();
    assert!(
        result.consistent(0.001),
        "plan deviates from ideal law: {result:?}"
    );
}

#[test]
fn survival_and_platform_views_agree() {
    // The single-career geometric law and the multi-round platform must
    // tell one story: per-attempt detection ε (at small adversary share)
    // implies careers of ~(1−ε)/ε free cheats and fast Sybil extinction.
    let eps = 0.75;
    let plan = RealizedPlan::balanced(10_000, eps).unwrap();

    let cfg = redundancy_sim::engine::CampaignConfig::new(
        redundancy_sim::AdversaryModel::AssignmentFraction { p: 0.05 },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    let survival = survival_experiment(&plan, &cfg, 600, 1);
    let p_eff = plan.effective_detection(0.05).unwrap();
    let expect = expected_free_cheats(p_eff);
    let mean = survival.free_cheats.mean();
    assert!(
        (mean - expect).abs() < 4.0 * survival.free_cheats.standard_error() + 0.05,
        "career mean {mean} vs geometric {expect}"
    );

    let platform = PlatformConfig::strict(9_500, 500, CheatStrategy::AtLeast { min_copies: 1 });
    let mut rng = DeterministicRng::new(2);
    let history = run_platform(&plan, &platform, 15, &mut rng);
    assert!(
        history.extinction_round().is_some(),
        "bans must extinguish the Sybils"
    );
}

#[test]
fn min_precompute_refinement_keeps_validity_across_crates() {
    let refined = AssignmentMinimizing::solve_min_precompute(100_000, 0.5, 9).unwrap();
    let plan = RealizedPlan::from_minimizing(&refined).unwrap();
    assert!(plan.detection_profile().satisfies_threshold(0.5, 1e-6));
    let base = AssignmentMinimizing::solve(100_000, 0.5, 9).unwrap();
    assert!(refined.precompute_required() <= base.precompute_required() + 1e-6);
}
