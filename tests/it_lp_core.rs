//! Integration: the LP solver and the core crate agree on the `S_m`
//! systems, and the LP audit machinery guards the pipeline end to end.

use redundancy_core::{bounds, AssignmentMinimizing, Scheme};
use redundancy_lp::{verify_solution, Problem, Relation, Sense};
use redundancy_stats::special::binomial;

/// Rebuild the S_m LP independently of the core crate (no row scaling) and
/// check both formulations land on the same optimum.
fn raw_s_m(n: u64, eps: f64, dim: usize) -> Problem {
    let mut lp = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (1..=dim)
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    for (i, v) in vars.iter().enumerate() {
        lp.set_objective(*v, (i + 1) as f64);
    }
    let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&cover, Relation::Ge, n as f64);
    for k in 1..dim {
        let mut terms = vec![(vars[k - 1], -eps)];
        for i in (k + 1)..=dim {
            terms.push((vars[i - 1], (1.0 - eps) * binomial(i as u64, k as u64)));
        }
        lp.add_constraint(&terms, Relation::Ge, 0.0);
    }
    lp
}

#[test]
fn scaled_and_unscaled_formulations_agree() {
    for dim in [3usize, 6, 10, 14] {
        let core_sol = AssignmentMinimizing::solve(100_000, 0.5, dim).unwrap();
        let raw = raw_s_m(100_000, 0.5, dim);
        let raw_sol = raw.solve().unwrap();
        let rel = (core_sol.objective() - raw_sol.objective).abs() / raw_sol.objective;
        assert!(
            rel < 1e-7,
            "dim={dim}: {} vs {}",
            core_sol.objective(),
            raw_sol.objective
        );
        let report = verify_solution(&raw, &raw_sol);
        assert!(report.is_ok(1e-6), "dim={dim}: {report:?}");
    }
}

#[test]
fn lp_duals_certify_the_optimum() {
    // Strong duality on the raw S_8 system: bᵀy = cᵀx, so the dual vector
    // is a *certificate* that no cheaper distribution exists.
    let raw = raw_s_m(100_000, 0.5, 8);
    let sol = raw.solve().unwrap();
    let dual_obj: f64 = 100_000.0 * sol.duals[0]; // only C₀ has nonzero rhs
    assert!(
        (dual_obj - sol.objective).abs() / sol.objective < 1e-7,
        "duality gap: {dual_obj} vs {}",
        sol.objective
    );
}

#[test]
fn lp_objective_sandwiched_by_theory() {
    // Proposition 1 bound below, Balanced cost above (Balanced satisfies
    // strictly more — its equality pattern — so it cannot be cheaper than
    // the LP optimum of the same dimension... but it IS comparable to the
    // infinite system; the finite S_m must sit between the bound and any
    // valid m-dimensional distribution's cost, e.g. the truncated
    // Balanced's).
    let n = 100_000u64;
    let eps = 0.5;
    let bound = bounds::lower_bound_assignments(n, eps).unwrap();
    for dim in [6usize, 10, 16] {
        let sol = AssignmentMinimizing::solve(n, eps, dim).unwrap();
        assert!(sol.objective() >= bound - 1e-3, "dim={dim}");
        let bal = redundancy_core::Balanced::new(n, eps).unwrap();
        assert!(
            sol.objective() <= bal.total_assignments_exact() + 1.0,
            "dim={dim}: S_m must not cost more than Balanced"
        );
    }
}

#[test]
fn infeasible_core_requests_surface_as_errors() {
    // ε = 1 is rejected before the LP layer.
    assert!(AssignmentMinimizing::solve(100, 1.0, 5).is_err());
    assert!(AssignmentMinimizing::solve(100, 0.5, 1).is_err());
}

#[test]
fn sweep_supports_match_fact1_shape() {
    // Fact 1: mass concentrates on {1, 2} with a small top bucket (plus at
    // most a couple of interior helpers at low dimensions).
    for sol in AssignmentMinimizing::sweep(100_000, 0.5, [8usize, 12, 20]).unwrap() {
        let d = sol.distribution();
        let frac12 = (d.weight(1) + d.weight(2)) / d.total_tasks();
        assert!(frac12 > 0.95, "dim={}: {frac12}", sol.dimension());
        assert!(d.weight(sol.dimension()) > 0.0, "top bucket present");
    }
}

#[test]
fn other_epsilons_solve_cleanly() {
    // The paper says "similar behavior is observed for all relevant ε".
    for eps in [0.25, 0.6, 0.75, 0.9] {
        let sol = AssignmentMinimizing::solve(50_000, eps, 12).unwrap();
        assert!(
            sol.verified_profile().satisfies_threshold(eps, 1e-6),
            "eps={eps}"
        );
        let bound = bounds::lower_bound_assignments(50_000, eps).unwrap();
        assert!(sol.objective() > bound, "eps={eps}");
    }
}
