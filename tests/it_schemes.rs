//! Integration: the scheme zoo behaves coherently through the shared
//! `Scheme` trait and the generic detection engine.

use redundancy_core::{Balanced, ExtendedBalanced, GolleStubblebine, KFold, Scheme};
use redundancy_integration::{assert_close, balanced_pkp, gs_pkp, EPSILONS, PROPORTIONS};

#[test]
fn every_scheme_covers_all_tasks() {
    let n = 250_000u64;
    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(KFold::simple(n).unwrap()),
        Box::new(KFold::new(n, 4).unwrap()),
        Box::new(GolleStubblebine::for_threshold(n, 0.5).unwrap()),
        Box::new(Balanced::new(n, 0.5).unwrap()),
        Box::new(ExtendedBalanced::new(n, 0.5, 3).unwrap()),
    ];
    for s in &schemes {
        let d = s.distribution();
        assert_close(
            d.total_tasks(),
            n as f64,
            1e-4,
            &format!("{} task coverage", s.name()),
        );
        assert_eq!(s.n_tasks(), n);
    }
}

#[test]
fn cost_ordering_matches_figure3() {
    // For every ε below 0.75: bound < balanced < GS < simple(2).
    for &eps in &EPSILONS {
        let bal = Balanced::factor_for_threshold(eps).unwrap();
        let gs = GolleStubblebine::factor_for_threshold(eps).unwrap();
        let bound = redundancy_core::bounds::lower_bound_factor(eps).unwrap();
        assert!(bound < bal, "eps={eps}");
        assert!(bal < gs, "eps={eps}");
        if eps < 0.75 {
            assert!(gs < 2.0, "eps={eps}");
        }
    }
}

#[test]
fn balanced_closed_form_agrees_with_engine_across_grid() {
    for &eps in &EPSILONS {
        let bal = Balanced::new(500_000, eps).unwrap();
        let prof = bal.detection_profile();
        let dim = prof.dimension();
        for &p in &PROPORTIONS {
            let closed = balanced_pkp(eps, p);
            for k in 1..=dim / 2 {
                let generic = prof.p_nonasymptotic(k, p).unwrap().unwrap();
                assert_close(
                    generic,
                    closed,
                    1e-4,
                    &format!("balanced eps={eps} k={k} p={p}"),
                );
            }
        }
    }
}

#[test]
fn gs_closed_form_agrees_with_engine_across_grid() {
    for &eps in &[0.25, 0.5, 0.6] {
        let gs = GolleStubblebine::for_threshold(1_000_000, eps).unwrap();
        let prof = gs.detection_profile();
        for &p in &PROPORTIONS {
            for k in 1..=8usize {
                let generic = prof.p_nonasymptotic(k, p).unwrap().unwrap();
                let closed = gs_pkp(gs.ratio(), k, p);
                assert_close(generic, closed, 1e-4, &format!("gs eps={eps} k={k} p={p}"));
            }
        }
    }
}

#[test]
fn intelligent_adversary_attacks_singletons_under_gs() {
    // Section 3.1: GS's weakest tuple is always k = 1.
    let gs = GolleStubblebine::for_threshold(1_000_000, 0.5).unwrap();
    let prof = gs.detection_profile();
    let (k, p1) = prof.weakest_tuple(0.0).unwrap().unwrap();
    // The truncated top bucket is an artifact; exclude it by checking the
    // weakest tuple is k = 1 among the meaningful range.
    if k != 1 {
        // must be the truncation bucket at the distribution's dimension
        assert!(k + 2 >= prof.dimension(), "unexpected weak tuple {k}");
    } else {
        assert_close(p1, 0.5, 1e-4, "GS weakest = ε at k=1");
    }
    // Balanced: no preference — all k equal within tolerance.
    let bal = Balanced::new(1_000_000, 0.5).unwrap();
    let bprof = bal.detection_profile();
    let dim = bprof.dimension();
    let values: Vec<f64> = (1..=dim / 2)
        .map(|k| bprof.p_asymptotic(k).unwrap())
        .collect();
    let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - values.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1e-4, "balanced spread {spread}");
}

#[test]
fn extended_balanced_nests_correctly() {
    // Raising the minimum multiplicity only ever raises cost, keeps ε.
    let mut prev = 0.0;
    for m in 1..=5usize {
        let ext = ExtendedBalanced::new(100_000, 0.5, m).unwrap();
        let f = ext.redundancy_factor_exact();
        assert!(f > prev, "m={m}");
        prev = f;
        assert_eq!(ext.guaranteed_detection(), Some(0.5));
        assert!(ext.distribution().weight(m.saturating_sub(1)) == 0.0 || m == 1);
    }
}

#[test]
fn guaranteed_detection_reported_honestly() {
    let n = 10_000u64;
    assert_eq!(KFold::simple(n).unwrap().guaranteed_detection(), Some(0.0));
    assert_close(
        Balanced::new(n, 0.7)
            .unwrap()
            .guaranteed_detection()
            .unwrap(),
        0.7,
        1e-12,
        "balanced guarantee",
    );
    assert_close(
        GolleStubblebine::for_threshold(n, 0.7)
            .unwrap()
            .guaranteed_detection()
            .unwrap(),
        0.7,
        1e-12,
        "GS guarantee",
    );
}
