//! Golden-snapshot harness for the repro binaries.
//!
//! Every exhibit binary in `crates/repro` is deterministic for its default
//! seed — including across thread counts, thanks to the chunk-seeded trial
//! runner — so its entire stdout can be pinned byte-for-byte.  The suite
//! in `it_snapshots.rs` runs each binary and compares against the files
//! committed under `tests/snapshots/`.
//!
//! Workflow:
//!
//! * a mismatch fails the test with a first-difference summary and the
//!   regeneration command;
//! * `UPDATE_SNAPSHOTS=1 cargo test -p redundancy-integration --test
//!   it_snapshots` rewrites the files and reports what changed;
//! * regeneration is refused when `CI` is set (GitHub sets `CI=true`), so
//!   a pipeline can never silently bless drifted output;
//! * `SNAPSHOT_THREADS=<n>` forwards `--threads <n>` to every binary —
//!   the snapshots must not depend on it.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Every repro exhibit, one binary per table/figure of the paper plus the
/// workspace's own extensions.
pub const EXHIBITS: [&str; 13] = [
    "fig1_detection_vs_p",
    "fig2_minimizing_table",
    "fig3_redundancy_factors",
    "fig4_assignment_table",
    "sec6_implementation",
    "sec7_extension",
    "theory_checks",
    "appendix_a_collusion",
    "empirical_detection",
    "ext_survival",
    "ext_faults",
    "ext_churn",
    "ext_serve",
];

/// Decide whether a mismatch should rewrite the snapshot instead of
/// failing.  Pure so the policy itself is unit-testable: regeneration
/// requires `UPDATE_SNAPSHOTS` to be set to something truthy and is always
/// refused when `CI` is set non-empty (CI must gate, never bless).
pub fn should_update(update_env: Option<&str>, ci_env: Option<&str>) -> bool {
    let wants_update = matches!(update_env, Some(v) if !v.is_empty() && v != "0");
    let in_ci = matches!(ci_env, Some(v) if !v.is_empty());
    wants_update && !in_ci
}

/// One-paragraph description of how `actual` departs from `expected`:
/// the first differing line (1-based) with both versions, and the line
/// count delta if any.
pub fn diff_summary(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for (i, (e, a)) in exp.iter().zip(&act).enumerate() {
        if e != a {
            out.push_str(&format!(
                "first difference at line {}:\n  snapshot: {e}\n  actual:   {a}\n",
                i + 1
            ));
            break;
        }
    }
    if out.is_empty() && exp.len() != act.len() {
        let longer = if act.len() > exp.len() {
            ("actual", &act)
        } else {
            ("snapshot", &exp)
        };
        out.push_str(&format!(
            "first difference at line {}: {} continues: {}\n",
            exp.len().min(act.len()) + 1,
            longer.0,
            longer.1[exp.len().min(act.len())]
        ));
    }
    if exp.len() != act.len() {
        out.push_str(&format!(
            "line count: snapshot {} vs actual {}\n",
            exp.len(),
            act.len()
        ));
    }
    if out.is_empty() {
        out.push_str("outputs differ only in trailing bytes or line endings\n");
    }
    out
}

/// `target/<profile>/` for the build that produced this test executable
/// (`target/<profile>/deps/<test>-<hash>` is two levels below it).
fn target_profile_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test executable has a path");
    exe.parent()
        .and_then(Path::parent)
        .expect("test executable lives in target/<profile>/deps")
        .to_path_buf()
}

/// Path of a repro binary in the current build profile.
pub fn binary_path(name: &str) -> PathBuf {
    target_profile_dir().join(format!("{name}{}", std::env::consts::EXE_SUFFIX))
}

/// The committed snapshot file for an exhibit.
pub fn snapshot_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("snapshots")
        .join(format!("{name}.txt"))
}

/// Run one exhibit binary and return its stdout.
///
/// Honors `SNAPSHOT_THREADS` (default 1) by forwarding `--threads`; the
/// repro CLI ignores unknown flags, so this is safe even for the exhibits
/// that are not multi-threaded.
pub fn run_exhibit(name: &str) -> String {
    let bin = binary_path(name);
    assert!(
        bin.exists(),
        "repro binary {} not built; run `cargo build -p redundancy-repro --bins` \
(a workspace-root `cargo test` builds it automatically)",
        bin.display()
    );
    let threads = std::env::var("SNAPSHOT_THREADS").unwrap_or_else(|_| "1".into());
    let out = Command::new(&bin)
        .args(["--threads", &threads])
        .output()
        .unwrap_or_else(|e| panic!("spawning {name}: {e}"));
    assert!(
        out.status.success(),
        "{name} exited with {}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap_or_else(|e| panic!("{name} emitted non-UTF-8: {e}"))
}

/// Compare one exhibit against its committed snapshot, or regenerate it
/// when the environment allows (see [`should_update`]).
pub fn check_exhibit(name: &str) {
    check_actual(name, &run_exhibit(name));
}

/// Compare already-captured output against the committed snapshot for
/// `name`, regenerating when the environment allows.
///
/// Split from [`check_exhibit`] so the same gate serves output that does
/// not come from spawning a standalone binary — the unified
/// `redundancy repro` entry point and the `repro --list` index run
/// in-process and are pinned through this path.
pub fn check_actual(name: &str, actual: &str) {
    let path = snapshot_path(name);
    let update = should_update(
        std::env::var("UPDATE_SNAPSHOTS").ok().as_deref(),
        std::env::var("CI").ok().as_deref(),
    );
    let expected = std::fs::read_to_string(&path).ok();
    match (expected, update) {
        (Some(expected), _) if expected == actual => {}
        (expected, true) => {
            std::fs::write(&path, actual)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            match expected {
                Some(old) => eprintln!(
                    "[snapshot] {name}: rewrote {}\n{}",
                    path.display(),
                    diff_summary(&old, actual)
                ),
                None => eprintln!("[snapshot] {name}: created {}", path.display()),
            }
        }
        (Some(expected), false) => {
            panic!(
                "{name} drifted from its golden snapshot {}.\n{}\
If the change is intended, regenerate with:\n  \
UPDATE_SNAPSHOTS=1 cargo test -p redundancy-integration --test it_snapshots\n\
(refused in CI: the snapshots job only gates)",
                path.display(),
                diff_summary(&expected, actual)
            );
        }
        (None, false) => {
            panic!(
                "no snapshot committed at {}; generate one locally with \
UPDATE_SNAPSHOTS=1 cargo test -p redundancy-integration --test it_snapshots",
                path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_policy_requires_flag_and_refuses_ci() {
        assert!(!should_update(None, None));
        assert!(!should_update(Some(""), None));
        assert!(!should_update(Some("0"), None));
        assert!(should_update(Some("1"), None));
        assert!(should_update(Some("1"), Some("")));
        // GitHub Actions sets CI=true: regeneration must be a no-op there.
        assert!(!should_update(Some("1"), Some("true")));
        assert!(!should_update(None, Some("true")));
    }

    #[test]
    fn diff_summary_pinpoints_the_first_change() {
        let s = diff_summary("a\nb\nc\n", "a\nX\nc\n");
        assert!(s.contains("line 2"), "{s}");
        assert!(
            s.contains("snapshot: b") && s.contains("actual:   X"),
            "{s}"
        );
    }

    #[test]
    fn diff_summary_reports_length_changes() {
        let s = diff_summary("a\nb\n", "a\nb\nc\n");
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("snapshot 2 vs actual 3"), "{s}");
        let t = diff_summary("a\nb\n", "a\nb");
        assert!(t.contains("trailing"), "{t}");
    }

    #[test]
    fn exhibit_names_are_unique_and_snapshot_paths_distinct() {
        let mut paths: Vec<_> = EXHIBITS.iter().map(|e| snapshot_path(e)).collect();
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), EXHIBITS.len());
    }
}
