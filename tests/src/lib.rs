//! Shared helpers for the cross-crate integration tests.

pub mod snapshot;

/// Detection thresholds covering the paper's operating range.
pub const EPSILONS: [f64; 4] = [0.25, 0.5, 0.75, 0.9];

/// Adversary proportions used across the non-asymptotic checks.
pub const PROPORTIONS: [f64; 4] = [0.0, 0.05, 0.10, 0.15];

/// Assert two floats agree within an absolute tolerance, with context.
pub fn assert_close(got: f64, want: f64, tol: f64, context: &str) {
    assert!(
        (got - want).abs() <= tol,
        "{context}: got {got}, want {want} (tol {tol})"
    );
}

/// Balanced closed form `P_{k,p} = 1 − (1−ε)^{1−p}` (Proposition 3).
pub fn balanced_pkp(eps: f64, p: f64) -> f64 {
    1.0 - (1.0 - eps).powf(1.0 - p)
}

/// Golle–Stubblebine closed form `P_{k,p} = 1 − (1 − c(1−p))^{k+1}`.
pub fn gs_pkp(c: f64, k: usize, p: f64) -> f64 {
    1.0 - (1.0 - c * (1.0 - p)).powi(k as i32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_at_zero() {
        assert_close(balanced_pkp(0.5, 0.0), 0.5, 1e-12, "balanced at p=0");
        let c = 1.0 - 0.5f64.sqrt();
        assert_close(gs_pkp(c, 1, 0.0), 0.5, 1e-12, "GS k=1 at p=0");
    }

    #[test]
    #[should_panic(expected = "tol")]
    fn assert_close_fires() {
        assert_close(1.0, 2.0, 0.1, "deliberate");
    }
}
