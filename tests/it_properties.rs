//! Property-based tests on the workspace's core invariants (proptest).

use proptest::prelude::*;
use redundancy_core::{
    bounds, AssignmentMinimizing, Balanced, DetectionProfile, Distribution, GolleStubblebine,
    RealizedPlan, Scheme,
};
use redundancy_integration::balanced_pkp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 1 over random (N, ε): coverage, equality, total cost.
    #[test]
    fn theorem1_holds_for_random_parameters(
        n in 1_000u64..2_000_000,
        eps_cent in 5u32..95,
    ) {
        let eps = eps_cent as f64 / 100.0;
        let bal = Balanced::new(n, eps).unwrap();
        let total: f64 = (1..160).map(|i| bal.ideal_weight(i)).sum();
        prop_assert!((total - n as f64).abs() < 1e-3 * (n as f64).max(1.0));
        let exact = bal.total_assignments_exact();
        let expect = n as f64 * (1.0 / (1.0 - eps)).ln() / eps;
        prop_assert!((exact - expect).abs() < 1e-6 * expect);
        // Lower bound (Prop 1) respected with room to spare.
        prop_assert!(exact > bounds::lower_bound_assignments(n, eps).unwrap());
    }

    /// Realized plans: exact coverage and the ε guarantee, for random
    /// parameters.
    #[test]
    fn realized_plans_always_valid(
        n in 500u64..500_000,
        eps_cent in 10u32..95,
    ) {
        let eps = eps_cent as f64 / 100.0;
        let plan = RealizedPlan::balanced(n, eps).unwrap();
        let ordinary: u64 = plan
            .partitions()
            .iter()
            .filter(|p| p.kind != redundancy_core::PartitionKind::Ringer)
            .map(|p| p.tasks)
            .sum();
        prop_assert_eq!(ordinary, n);
        let eff = plan.effective_detection(0.0).unwrap();
        prop_assert!(eff >= eps - 1e-9, "eff {} < eps {}", eff, eps);
    }

    /// Proposition 3 shape: P_{k,p} decreasing in p, independent of k.
    #[test]
    fn proposition3_monotone_and_flat(
        eps_cent in 10u32..90,
        p_cent in 0u32..80,
    ) {
        let eps = eps_cent as f64 / 100.0;
        let p = p_cent as f64 / 100.0;
        let v = balanced_pkp(eps, p);
        prop_assert!(v <= eps + 1e-12);
        prop_assert!(v >= 0.0);
        if p_cent > 0 {
            prop_assert!(v < balanced_pkp(eps, (p_cent - 1) as f64 / 100.0) + 1e-12);
        }
        // Against the generic engine at two tuple sizes.
        let bal = Balanced::new(100_000, eps).unwrap();
        let prof = bal.detection_profile();
        for k in [1usize, 2] {
            if let Some(generic) = prof.p_nonasymptotic(k, p).unwrap() {
                prop_assert!((generic - v).abs() < 1e-3, "k={}: {} vs {}", k, generic, v);
            }
        }
    }

    /// The generic detection engine is monotone: adding ringers can only
    /// raise every detection probability.
    #[test]
    fn ringers_never_hurt(
        weights in proptest::collection::vec(0.0f64..1_000.0, 1..8),
        ringer_mult in 1usize..10,
        ringers in 1.0f64..50.0,
    ) {
        let base = DetectionProfile::from_normal(weights.clone());
        let with = DetectionProfile::from_normal(weights)
            .with_precomputed(ringer_mult, ringers);
        let dim = with.dimension();
        for k in 1..=dim {
            let before = base.p_asymptotic(k);
            let after = with.p_asymptotic(k);
            if let (Some(b), Some(a)) = (before, after) {
                prop_assert!(a >= b - 1e-12, "k={}: {} -> {}", k, b, a);
            }
        }
    }

    /// GS detection increases with k; its minimum is at k = 1 and equals
    /// 1 − (1−c)².
    #[test]
    fn gs_minimum_is_at_singletons(c_cent in 5u32..95) {
        let c = c_cent as f64 / 100.0;
        let gs = GolleStubblebine::with_ratio(1_000_000, c).unwrap();
        let mut prev = gs.p_asymptotic(1);
        prop_assert!((prev - (1.0 - (1.0 - c) * (1.0 - c))).abs() < 1e-12);
        for k in 2..12 {
            let pk = gs.p_asymptotic(k);
            prop_assert!(pk > prev);
            prev = pk;
        }
    }

    /// Distribution arithmetic: scaling preserves the redundancy factor;
    /// proportions always sum to 1.
    #[test]
    fn distribution_invariants(
        weights in proptest::collection::vec(0.0f64..1e6, 1..12),
        scale in 0.01f64..100.0,
    ) {
        let d = Distribution::from_weights(weights);
        prop_assume!(d.total_tasks() > 0.0);
        let s = d.scaled(scale);
        let rel = (s.redundancy_factor() - d.redundancy_factor()).abs()
            / d.redundancy_factor().max(1e-12);
        prop_assert!(rel < 1e-9);
        let sum: f64 = d.proportions().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Metamorphic on the S_m LP: raising the detection threshold ε only
    /// tightens every detection row, shrinking the feasible region, so the
    /// minimized assignment count — the redundancy R(ε) — is nondecreasing
    /// in ε.  The balanced closed form N·ln(1/(1−ε))/ε must agree.
    #[test]
    fn redundancy_is_monotone_in_epsilon(
        n in 10_000u64..1_000_000,
        eps_cent in 10u32..85,
        bump in 1u32..=10,
        dim in 2usize..7,
    ) {
        let lo = eps_cent as f64 / 100.0;
        let hi = (eps_cent + bump) as f64 / 100.0;
        let z_lo = AssignmentMinimizing::solve(n, lo, dim).unwrap().objective();
        let z_hi = AssignmentMinimizing::solve(n, hi, dim).unwrap().objective();
        prop_assert!(
            z_hi >= z_lo - 1e-6 * z_lo,
            "S_{} optimum fell from {} to {} as eps rose {} -> {}",
            dim, z_lo, z_hi, lo, hi
        );
        let bal_lo = Balanced::new(n, lo).unwrap().total_assignments_exact();
        let bal_hi = Balanced::new(n, hi).unwrap().total_assignments_exact();
        prop_assert!(bal_hi >= bal_lo, "balanced: {} -> {}", bal_lo, bal_hi);
    }

    /// Detection probabilities are genuine probabilities for arbitrary
    /// profiles and p.
    #[test]
    fn detection_in_unit_interval(
        weights in proptest::collection::vec(0.0f64..1e5, 1..10),
        p_cent in 0u32..99,
    ) {
        let prof = DetectionProfile::from_normal(weights);
        let p = p_cent as f64 / 100.0;
        for k in 1..=prof.dimension() {
            if let Some(v) = prof.p_nonasymptotic(k, p).unwrap() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "k={} v={}", k, v);
            }
        }
    }
}
