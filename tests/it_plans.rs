//! Integration: realized plans (Section 6) across a parameter grid.

use redundancy_core::{PartitionKind, RealizedPlan};
use redundancy_integration::{assert_close, balanced_pkp, EPSILONS};

fn ordinary_tasks(plan: &RealizedPlan) -> u64 {
    plan.partitions()
        .iter()
        .filter(|p| p.kind != PartitionKind::Ringer)
        .map(|p| p.tasks)
        .sum()
}

#[test]
fn balanced_plans_cover_and_guarantee_across_grid() {
    for &eps in &EPSILONS {
        for n in [997u64, 10_000, 250_000] {
            let plan = RealizedPlan::balanced(n, eps).unwrap();
            assert_eq!(ordinary_tasks(&plan), n, "coverage at N={n}, eps={eps}");
            let eff = plan.effective_detection(0.0).unwrap();
            assert!(eff >= eps - 1e-9, "N={n}, eps={eps}: effective {eff}");
            // Realization overhead stays tiny (rounding + ringers dominate
            // at small N, so the bound scales with 1/N).
            let ideal = n as f64 * (1.0 / (1.0 - eps)).ln() / eps;
            let rel = (plan.total_assignments() as f64 - ideal).abs() / ideal;
            let allowed = 0.005 + 30.0 / n as f64;
            assert!(rel < allowed, "N={n}, eps={eps}: overhead {rel}");
        }
    }
}

#[test]
fn gs_plans_cover_and_guarantee() {
    for &eps in &[0.25, 0.5, 0.75] {
        let plan = RealizedPlan::golle_stubblebine(100_000, eps).unwrap();
        assert_eq!(ordinary_tasks(&plan), 100_000);
        assert!(plan.effective_detection(0.0).unwrap() >= eps - 1e-9);
    }
}

#[test]
fn plan_detection_tracks_proposition3_nonasymptotically() {
    let plan = RealizedPlan::balanced(200_000, 0.5).unwrap();
    for &p in &[0.0, 0.05, 0.1] {
        let eff = plan.effective_detection(p).unwrap();
        // The plan's minimum can only fall below the ideal curve by
        // rounding dust; it must track Proposition 3 closely.
        assert_close(eff, balanced_pkp(0.5, p), 5e-3, &format!("p={p}"));
    }
}

#[test]
fn partitions_are_sorted_and_typed() {
    let plan = RealizedPlan::balanced(50_000, 0.75).unwrap();
    let mults: Vec<usize> = plan.partitions().iter().map(|p| p.multiplicity).collect();
    let mut sorted = mults.clone();
    sorted.sort_unstable();
    assert_eq!(mults, sorted, "partitions ascend in multiplicity");
    // Exactly one tail, ringers last.
    let tails = plan
        .partitions()
        .iter()
        .filter(|p| p.kind == PartitionKind::Tail)
        .count();
    assert!(tails <= 1);
    if plan.ringer_tasks() > 0 {
        assert_eq!(
            plan.partitions().last().unwrap().kind,
            PartitionKind::Ringer
        );
    }
}

#[test]
fn plan_json_round_trips_with_full_fidelity() {
    let plan = RealizedPlan::balanced(12_345, 0.6).unwrap();
    let json = redundancy_json::to_string_pretty(&plan);
    let back: RealizedPlan = redundancy_json::from_str(&json).unwrap();
    assert_eq!(plan, back);
    assert_eq!(
        back.effective_detection(0.0).unwrap(),
        plan.effective_detection(0.0).unwrap()
    );
}

#[test]
fn minimizing_plans_integerize_safely() {
    for dim in [5usize, 9, 16] {
        let sol = redundancy_core::AssignmentMinimizing::solve(100_000, 0.5, dim).unwrap();
        let plan = RealizedPlan::from_minimizing(&sol).unwrap();
        let total: u64 = plan.partitions().iter().map(|p| p.tasks).sum();
        assert_eq!(total, 100_000, "dim={dim}");
        assert!(
            plan.detection_profile().satisfies_threshold(0.5, 1e-6),
            "dim={dim}"
        );
        // Integerization cost vs the LP optimum is sub-percent.
        let rel = (plan.total_assignments() as f64 - sol.objective()).abs() / sol.objective();
        assert!(rel < 0.01, "dim={dim}: {rel}");
    }
}

#[test]
fn extreme_thresholds_still_realize() {
    // Near the boundaries of the supported ε range.
    for eps in [0.01, 0.99] {
        let plan = RealizedPlan::balanced(100_000, eps).unwrap();
        assert_eq!(ordinary_tasks(&plan), 100_000);
        assert!(
            plan.effective_detection(0.0).unwrap() >= eps - 1e-9,
            "eps={eps}"
        );
    }
}
