//! Protocol-level integration: `redundancy serve` end to end.
//!
//! The serve transport is generic over `Read`/`Write`, so one scripted
//! byte fixture drives every assertion here: the in-memory transport pins
//! the framed exchange byte for byte, and a spawned
//! `redundancy serve --stdio` process must emit exactly the same response
//! bytes for the same input bytes — the wire protocol is the same code
//! path either way.  Malformed input (truncated prefixes, oversized
//! payloads, unknown verbs) must answer structured `err` frames and exit
//! cleanly, never hang or panic.

use redundancy_core::RealizedPlan;
use redundancy_integration::snapshot::binary_path;
use redundancy_sim::serve::{
    decode_frames, script_frames, ServeConfig, ServeSession, SessionEnd, MAX_FRAME,
};
use redundancy_sim::task::expand_plan;
use redundancy_sim::{serve_connection, AdversaryModel, CampaignConfig, CheatStrategy};
use std::io::Write as _;
use std::process::{Command, Stdio};

/// The scripted drain of the 3-task x 2-copy `simple` workload, with the
/// reply every frame earns.  The multiplicities are fixed by the scheme
/// and dispatch is task-id ordered, so the exchange is seed-independent
/// and can be pinned as a constant.
const SCRIPT: [(&str, &str); 14] = [
    ("request-work", "work 0 0 2"),
    ("return-result 0 0", "ok"),
    ("request-work", "work 0 1 2"),
    ("return-result 0 1", "ok complete"),
    ("request-work", "work 1 0 2"),
    ("return-result 1 0", "ok"),
    ("request-work", "work 1 1 2"),
    ("return-result 1 1", "ok complete"),
    ("request-work", "work 2 0 2"),
    ("return-result 2 0", "ok"),
    ("request-work", "work 2 1 2"),
    ("return-result 2 1", "ok complete"),
    ("request-work", "drained"),
    ("shutdown", "bye"),
];

fn requests() -> Vec<&'static str> {
    SCRIPT.iter().map(|(req, _)| *req).collect()
}

fn replies() -> Vec<&'static str> {
    SCRIPT.iter().map(|(_, reply)| *reply).collect()
}

/// The session `redundancy serve --scheme simple --tasks 3 --epsilon 0.5
/// --proportion 0.2 --shards 2` builds (every other flag at its default).
fn oracle_session() -> ServeSession {
    let tasks = expand_plan(&RealizedPlan::k_fold(3, 2, 0.5).unwrap());
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.2 },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    ServeSession::new(&tasks, &campaign, &ServeConfig::new(2), 20_050_926).unwrap()
}

/// Spawn `redundancy serve --stdio` on the oracle workload, feed it the
/// raw `input` bytes, and return its stdout bytes (asserting a clean
/// exit — malformed input must never crash or hang the process).
fn run_stdio(input: &[u8]) -> Vec<u8> {
    let path = binary_path("redundancy");
    assert!(path.exists(), "{} not built", path.display());
    let mut child = Command::new(&path)
        .args([
            "serve",
            "--stdio",
            "--scheme",
            "simple",
            "--tasks",
            "3",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--shards",
            "2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning redundancy serve");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(input)
        .expect("writing the script");
    let out = child.wait_with_output().expect("collecting serve output");
    assert!(
        out.status.success(),
        "serve exited with {}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn in_memory_scripted_fixture_is_byte_exact() {
    let mut session = oracle_session();
    let mut input: &[u8] = &script_frames(&requests())[..];
    let mut output = Vec::new();
    let end = serve_connection(&mut input, &mut output, |req| session.handle(req)).unwrap();
    assert_eq!(end, SessionEnd::Shutdown);
    assert_eq!(decode_frames(&output), replies());
    // Not just the payloads: the response byte stream is exactly the
    // replies re-framed by the same encoder.
    assert_eq!(output, script_frames(&replies()));
    assert!(session.store.is_drained());
}

#[test]
fn stdio_process_is_byte_identical_to_the_in_memory_transport() {
    let stdout = run_stdio(&script_frames(&requests()));
    assert_eq!(
        stdout,
        script_frames(&replies()),
        "process replies decoded: {:?}",
        decode_frames(&stdout)
    );
}

#[test]
fn stdio_truncated_prefix_answers_a_structured_err_and_exits() {
    // Two bytes of a four-byte length prefix, then EOF.
    let stdout = run_stdio(&[0x00, 0x01]);
    assert_eq!(stdout, script_frames(&["err truncated-frame"]));
}

#[test]
fn stdio_truncated_payload_answers_a_structured_err_and_exits() {
    // A prefix promising five bytes, delivering two.
    let stdout = run_stdio(&[0x00, 0x00, 0x00, 0x05, b'h', b'i']);
    assert_eq!(stdout, script_frames(&["err truncated-frame"]));
}

#[test]
fn stdio_oversize_payload_answers_a_structured_err_and_exits() {
    let len = (MAX_FRAME as u32) + 1;
    let stdout = run_stdio(&len.to_be_bytes());
    let expected = format!("err oversize-frame {len} exceeds {MAX_FRAME}");
    assert_eq!(stdout, script_frames(&[expected.as_str()]));
}

#[test]
fn stdio_unknown_verb_answers_err_and_the_session_continues() {
    let stdout = run_stdio(&script_frames(&["frobnicate 7", "shutdown"]));
    assert_eq!(
        stdout,
        script_frames(&["err unknown-verb frobnicate", "bye"])
    );
}

#[test]
fn stdio_clean_eof_ends_the_session_silently_after_serving() {
    // No shutdown frame: the client hangs up after one request.  The
    // process must answer the request, then exit cleanly on EOF.
    let stdout = run_stdio(&script_frames(&["request-work"]));
    assert_eq!(stdout, script_frames(&["work 0 0 2"]));
}

#[test]
fn stdio_per_shard_streams_serve_the_same_protocol() {
    // The per-shard store speaks the identical verb set through the same
    // formatter; on this tiny workload the dispatch order happens to
    // match the single-stream script too (shard-owned ids are walked in
    // id order and the driver returns each copy before asking again).
    let path = binary_path("redundancy");
    assert!(path.exists(), "{} not built", path.display());
    let mut child = Command::new(&path)
        .args([
            "serve",
            "--stdio",
            "--scheme",
            "simple",
            "--tasks",
            "3",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--shards",
            "1",
            "--streams",
            "per-shard",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning redundancy serve");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(&script_frames(&requests()))
        .expect("writing the script");
    let out = child.wait_with_output().expect("collecting serve output");
    assert!(out.status.success(), "serve exited with {}", out.status);
    assert_eq!(decode_frames(&out.stdout), replies());
}

/// `shutdown` must terminate a `--port` daemon process cleanly — no
/// throwaway self-connection, no orphaned accept loop, a zero exit — on
/// both io loops and both stream modes.
#[test]
fn port_daemon_shuts_down_cleanly_on_the_shutdown_verb() {
    use redundancy_sim::serve::{read_frame, write_frame, Frame};
    use std::io::{BufRead as _, BufReader, Read as _};
    let mut combos = vec![("threads", "single"), ("threads", "per-shard")];
    if cfg!(target_os = "linux") {
        combos.push(("epoll", "single"));
        combos.push(("epoll", "per-shard"));
    }
    for (io, streams) in combos {
        let path = binary_path("redundancy");
        assert!(path.exists(), "{} not built", path.display());
        let mut child = Command::new(&path)
            .args([
                "serve",
                "--scheme",
                "simple",
                "--tasks",
                "3",
                "--epsilon",
                "0.5",
                "--proportion",
                "0.2",
                "--seed",
                "7",
                "--port",
                "0",
                "--io",
                io,
                "--streams",
                streams,
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawning the daemon");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr is piped"));
        let mut banner = String::new();
        stderr.read_line(&mut banner).expect("reading the banner");
        let addr = banner
            .strip_prefix("[serving on ")
            .and_then(|rest| rest.split(';').next())
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_owned();
        let mut stream = std::net::TcpStream::connect(&addr)
            .unwrap_or_else(|e| panic!("connecting to {addr}: {e}"));
        write_frame(&mut stream, "request-work").unwrap();
        let Frame::Message(reply) = read_frame(&mut stream).unwrap() else {
            panic!("{io}/{streams}: no reply to request-work");
        };
        assert!(reply.starts_with(b"work "), "{io}/{streams}: {reply:?}");
        write_frame(&mut stream, "shutdown").unwrap();
        let Frame::Message(reply) = read_frame(&mut stream).unwrap() else {
            panic!("{io}/{streams}: no reply to shutdown");
        };
        assert_eq!(reply, b"bye", "{io}/{streams}");
        drop(stream);
        // Watchdog: the daemon must exit on its own, promptly and cleanly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let status = loop {
            if let Some(status) = child.try_wait().expect("polling the daemon") {
                break status;
            }
            if std::time::Instant::now() >= deadline {
                let _ = child.kill();
                panic!("{io}/{streams}: daemon still running 30s after shutdown");
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(
            status.success(),
            "{io}/{streams}: daemon exited with {status}"
        );
        let mut out = String::new();
        child
            .stdout
            .take()
            .expect("stdout is piped")
            .read_to_string(&mut out)
            .unwrap();
        assert!(out.contains("issued 1\n"), "{io}/{streams}: {out}");
        assert!(out.contains("in-flight 1\n"), "{io}/{streams}: {out}");
    }
}

/// The crash-recovery contract, end to end at the process level: a
/// journaled `--port` daemon is SIGKILLed mid-session, `--recover`
/// replays the journal and finishes the drain, and the final report is
/// byte-identical (journal lines aside) to a run that never crashed.
#[test]
fn killed_journaled_daemon_recovers_to_the_uninterrupted_report() {
    use redundancy_sim::serve::{read_frame, write_frame, Frame};
    use std::io::{BufRead as _, BufReader};
    let path = binary_path("redundancy");
    assert!(path.exists(), "{} not built", path.display());
    let journal =
        std::env::temp_dir().join(format!("it_serve_crash_{}.journal", std::process::id()));
    let journal_str = journal.to_str().unwrap().to_owned();
    let base = [
        "serve",
        "--tasks",
        "500",
        "--epsilon",
        "0.5",
        "--proportion",
        "0.2",
        "--seed",
        "11",
        "--shards",
        "2",
        "--timeout",
        "1000000000",
    ];

    // The reference: the same workload drained with no journal at all.
    let plain = Command::new(&path)
        .args(base)
        .output()
        .expect("running the uninterrupted drain");
    assert!(plain.status.success(), "{}", plain.status);

    // The victim: a journaled daemon, killed mid-session with copies in
    // flight.  --sync always means every reply the client saw is backed
    // by a durable journal record.
    let mut child = Command::new(&path)
        .args(base)
        .args(["--port", "0", "--journal", &journal_str, "--sync", "always"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning the daemon");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr is piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("reading the banner");
    let addr = banner
        .strip_prefix("[serving on ")
        .and_then(|rest| rest.split(';').next())
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();
    let mut stream = std::net::TcpStream::connect(&addr).expect("connecting to the daemon");
    let mut held = Vec::new();
    for i in 0..12 {
        write_frame(&mut stream, "request-work").unwrap();
        let Frame::Message(reply) = read_frame(&mut stream).unwrap() else {
            panic!("no reply to request-work");
        };
        let text = String::from_utf8(reply).unwrap();
        let rest = text.strip_prefix("work ").expect("a fresh store has work");
        let mut parts = rest.split_whitespace();
        let (task, copy) = (parts.next().unwrap(), parts.next().unwrap());
        if i % 2 == 0 {
            held.push((task.to_owned(), copy.to_owned()));
        } else {
            write_frame(&mut stream, &format!("return-result {task} {copy}")).unwrap();
            let Frame::Message(ack) = read_frame(&mut stream).unwrap() else {
                panic!("no reply to return-result");
            };
            assert!(ack.starts_with(b"ok"), "{ack:?}");
        }
    }
    child.kill().expect("killing the daemon");
    child.wait().expect("reaping the daemon");

    // Recovery: same command line plus --recover, drained in process.
    let recovered = Command::new(&path)
        .args(base)
        .args(["--journal", &journal_str, "--sync", "always", "--recover"])
        .output()
        .expect("running the recovery");
    assert!(
        recovered.status.success(),
        "recovery exited with {}: {}",
        recovered.status,
        String::from_utf8_lossy(&recovered.stderr)
    );
    let recovered_out = String::from_utf8(recovered.stdout).unwrap();
    assert!(
        recovered_out
            .lines()
            .any(|l| l.starts_with("journal recovered: ")),
        "{recovered_out}"
    );
    assert!(
        recovered_out.contains("batched-kernel oracle: bit-identical"),
        "{recovered_out}"
    );
    // Journal lines aside, the recovered report is byte-identical to the
    // run that never crashed — including the stats block and checksum.
    let sans_journal: String = recovered_out
        .lines()
        .filter(|l| !l.starts_with("journal"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(sans_journal, String::from_utf8(plain.stdout).unwrap());

    // The finished journal passes offline inspection as intact.
    let inspect = Command::new(&path)
        .args(["journal-inspect", "--journal", &journal_str])
        .output()
        .expect("running journal-inspect");
    assert!(inspect.status.success(), "{}", inspect.status);
    let inspect_out = String::from_utf8(inspect.stdout).unwrap();
    assert!(inspect_out.contains("integrity: intact"), "{inspect_out}");
    assert!(inspect_out.contains("header seed=11"), "{inspect_out}");
    assert!(inspect_out.contains("reset reverted="), "{inspect_out}");
    std::fs::remove_file(&journal).ok();
}
