//! Golden snapshots: every repro exhibit's stdout is pinned byte-for-byte.
//!
//! See `tests/src/snapshot.rs` for the harness and `docs/TESTING.md` for
//! the update workflow.  One test per exhibit so failures name the drifted
//! binary directly and the suite parallelizes across exhibits.

use redundancy_integration::snapshot::check_exhibit;

macro_rules! snapshot_tests {
    ($($name:ident),+ $(,)?) => {$(
        #[test]
        fn $name() {
            check_exhibit(stringify!($name));
        }
    )+};
}

snapshot_tests!(
    fig1_detection_vs_p,
    fig2_minimizing_table,
    fig3_redundancy_factors,
    fig4_assignment_table,
    sec6_implementation,
    sec7_extension,
    theory_checks,
    appendix_a_collusion,
    empirical_detection,
    ext_survival,
    ext_faults,
    ext_churn,
    ext_serve,
);

/// The macro above must cover exactly the canonical exhibit list.
#[test]
fn all_exhibits_have_a_snapshot_test() {
    assert_eq!(redundancy_integration::snapshot::EXHIBITS.len(), 13);
}

/// The 14th snapshot: the `redundancy repro --list` registry index.
/// Pinning it means the exhibit catalogue (names, paper references,
/// summaries) cannot drift from what the docs describe without a visible
/// snapshot diff.
#[test]
fn repro_list() {
    let index = redundancy_cli::run(&["repro".to_string(), "--list".to_string()])
        .expect("`redundancy repro --list` succeeds");
    redundancy_integration::snapshot::check_actual("repro_list", &index);
}
