//! Integration: the fault-injection subsystem is a strict extension — a
//! zero-fault model reproduces the fault-free engine bit for bit, and
//! active models stay deterministic across thread counts.

use redundancy_core::RealizedPlan;
use redundancy_sim::engine::CampaignConfig;
use redundancy_sim::experiment::{
    detection_experiment_with, faulty_detection_experiment, ExperimentConfig,
};
use redundancy_sim::rounds::{run_platform, run_platform_with_faults, PlatformConfig};
use redundancy_sim::supervisor::VerificationPolicy;
use redundancy_sim::{AdversaryModel, CheatStrategy, FaultModel};
use redundancy_stats::DeterministicRng;

fn plans() -> Vec<RealizedPlan> {
    vec![
        RealizedPlan::balanced(5_000, 0.5).unwrap(),
        RealizedPlan::golle_stubblebine(5_000, 0.5).unwrap(),
        RealizedPlan::k_fold(5_000, 2, 0.5).unwrap(),
    ]
}

#[test]
fn zero_fault_model_reproduces_baseline_bit_for_bit() {
    // The whole CampaignOutcome — counters, histograms, per-k vectors —
    // must be equal, not just statistically close: an inactive FaultModel
    // may not consume a single random draw.
    for (i, plan) in plans().into_iter().enumerate() {
        for policy in [VerificationPolicy::Unanimous, VerificationPolicy::Majority] {
            let campaign = CampaignConfig {
                honest_error_rate: 0.001,
                policy,
                ..CampaignConfig::new(
                    AdversaryModel::AssignmentFraction { p: 0.15 },
                    CheatStrategy::AtLeast { min_copies: 1 },
                )
            };
            let cfg = ExperimentConfig::new(10, 4_000 + i as u64);
            let base = detection_experiment_with(&plan, &campaign, &cfg);
            let faulty = faulty_detection_experiment(&plan, &campaign, &FaultModel::none(), &cfg);
            assert_eq!(
                base.outcome, faulty.outcome,
                "plan {i} policy {policy:?}: zero-fault path diverged from baseline"
            );
        }
    }
}

#[test]
fn faulty_results_identical_across_thread_counts() {
    let plan = RealizedPlan::balanced(4_000, 0.5).unwrap();
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.2 },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    let faults = FaultModel {
        straggler_rate: 0.25,
        straggler_mean_delay: 16.0,
        corrupt_rate: 0.02,
        ..FaultModel::with_drop_rate(0.2)
    };
    let run = |threads: usize| {
        let cfg = ExperimentConfig {
            campaigns: 16,
            seed: 99,
            threads,
            chunk_size: 4,
            sampler: Default::default(),
        };
        faulty_detection_experiment(&plan, &campaign, &faults, &cfg).outcome
    };
    let single = run(1);
    let multi = run(8);
    assert_eq!(single, multi, "fault injection broke chunked determinism");
    assert!(single.drops > 0 && single.retries > 0, "faults never fired");
}

#[test]
fn zero_fault_platform_run_is_unchanged() {
    let plan = RealizedPlan::balanced(5_000, 0.75).unwrap();
    let cfg = PlatformConfig::strict(4_000, 400, CheatStrategy::AtLeast { min_copies: 1 });
    let mut a = DeterministicRng::new(12);
    let mut b = DeterministicRng::new(12);
    let baseline = run_platform(&plan, &cfg, 6, &mut a);
    let faulty = run_platform_with_faults(&plan, &cfg, &FaultModel::none(), 6, &mut b);
    assert_eq!(baseline, faulty);
    assert_eq!(a, b, "inactive fault model consumed randomness");
}

#[test]
fn degraded_histogram_accounts_for_every_lost_assignment() {
    // Each lost assignment contributes exactly one unit of multiplicity
    // deficit to some task, so the weighted histogram mass must equal the
    // lost-assignment counter.
    let plan = RealizedPlan::balanced(3_000, 0.5).unwrap();
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.1 },
        CheatStrategy::Always,
    );
    let faults = FaultModel {
        max_retries: 1,
        ..FaultModel::with_drop_rate(0.4)
    };
    let out =
        faulty_detection_experiment(&plan, &campaign, &faults, &ExperimentConfig::new(10, 31))
            .outcome;
    assert!(out.lost_assignments > 0);
    let deficit_mass: u64 = (1..=64).map(|k| k as u64 * out.degraded.count(k)).sum();
    assert_eq!(deficit_mass, out.lost_assignments);
    assert!(out.unresolved_tasks <= out.degraded.total());
}

#[test]
fn retries_recover_detection_lost_to_drops() {
    let plan = RealizedPlan::balanced(8_000, 0.5).unwrap();
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.1 },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    let cfg = ExperimentConfig::new(15, 77);
    let detection = |retries: u32| {
        let faults = FaultModel {
            max_retries: retries,
            ..FaultModel::with_drop_rate(0.4)
        };
        faulty_detection_experiment(&plan, &campaign, &faults, &cfg)
            .overall()
            .estimate()
    };
    let lossless = 1.0 - (1.0 - plan.epsilon()).powf(0.9);
    let bare = detection(0);
    let retried = detection(4);
    assert!(
        bare < lossless - 0.05,
        "drops did not degrade detection: {bare}"
    );
    assert!(
        retried > lossless - 0.03,
        "retries failed to recover detection: {retried} vs {lossless}"
    );
}
