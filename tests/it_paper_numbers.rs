//! Integration: every concrete number that survived in the paper's text,
//! in one place.  This file is the executable record behind EXPERIMENTS.md.

use redundancy_core::{
    bounds, AssignmentMinimizing, Balanced, ExtendedBalanced, GolleStubblebine, RealizedPlan,
};
use redundancy_integration::assert_close;

#[test]
fn gs_cheaper_than_simple_iff_eps_below_075() {
    // §3.1: "their scheme requires fewer resources than simple redundancy
    // provided ε < 0.75".
    assert!(GolleStubblebine::factor_for_threshold(0.7499).unwrap() < 2.0);
    assert!(GolleStubblebine::factor_for_threshold(0.7501).unwrap() > 2.0);
}

#[test]
fn prop1_bound_is_4_thirds_at_eps_half() {
    // §3.2: "the lower bound redundancy factor of 4/3 ... (with ε = 0.5)".
    assert_close(
        bounds::lower_bound_factor(0.5).unwrap(),
        4.0 / 3.0,
        1e-12,
        "Prop 1 at eps = 1/2",
    );
}

#[test]
fn fig2_anchor_s5_602_and_s6_1923() {
    // §3.2: "in moving from the solution for S_5 to the solution for S_6,
    // the amount of precomputing increases from 602 tasks to [1]923 tasks"
    // (N = 100,000, ε = 0.5; the OCR dropped the leading 1).
    let s5 = AssignmentMinimizing::solve(100_000, 0.5, 5).unwrap();
    let s6 = AssignmentMinimizing::solve(100_000, 0.5, 6).unwrap();
    assert_close(s5.precompute_required(), 602.41, 0.5, "S_5 precompute");
    assert_close(s6.precompute_required(), 1923.08, 0.5, "S_6 precompute");
}

#[test]
fn fig2_anchor_s3_to_s4_factor_rises() {
    // §3.2: "in moving from systems S_3 to S_4, the redundancy factor
    // increases".
    let s3 = AssignmentMinimizing::solve(100_000, 0.5, 3).unwrap();
    let s4 = AssignmentMinimizing::solve(100_000, 0.5, 4).unwrap();
    assert!(s4.objective() > s3.objective());
}

#[test]
fn fig1_selection_s9_and_s26() {
    // Figure 1 caption: the first finite-dimensional solutions requiring
    // fewer than 1000 precomputed tasks are S_9 at N = 100,000 and S_26 at
    // N = 1,000,000 (ε = 1/2).
    let s9 = AssignmentMinimizing::first_dimension_under_precompute(100_000, 0.5, 1000.0, 30)
        .unwrap()
        .unwrap();
    assert_eq!(s9.dimension(), 9);
    let s26 = AssignmentMinimizing::first_dimension_under_precompute(1_000_000, 0.5, 1000.0, 30)
        .unwrap()
        .unwrap();
    assert_eq!(s26.dimension(), 26);
}

#[test]
fn balanced_redundancy_factor_values() {
    // Theorem 1.3: factor = ln(1/(1−ε))/ε.
    assert_close(
        Balanced::factor_for_threshold(0.5).unwrap(),
        2.0 * std::f64::consts::LN_2 / 1.0,
        1e-12,
        "eps = 0.5 (2 ln 2 ≈ 1.3863)",
    );
    assert_close(
        Balanced::factor_for_threshold(0.75).unwrap(),
        (4.0f64).ln() / 0.75,
        1e-12,
        "eps = 0.75",
    );
}

#[test]
fn fig4_totals_n1e6_eps075() {
    // Figure 4: Balanced saves > 50,000 assignments over both GS and
    // simple redundancy at N = 10⁶, ε = 0.75 (our realized totals:
    // 1,848,440 vs 2,000,048 vs 2,000,000 — actual savings ≈ 151,600).
    let bal = RealizedPlan::balanced(1_000_000, 0.75).unwrap();
    let gs = RealizedPlan::golle_stubblebine(1_000_000, 0.75).unwrap();
    assert!(gs.total_assignments() - bal.total_assignments() > 50_000);
    assert!(2_000_000 - bal.total_assignments() > 50_000);
    assert_close(
        bal.total_assignments() as f64,
        1_848_440.0,
        1_000.0,
        "balanced realized total",
    );
}

#[test]
fn sec6_extreme_example() {
    // §6: N = 10⁷, ε = 0.99 → i_f = 20, tail 12 tasks (240 assignments of
    // ~46.5 M), 57 ringers.
    let plan = RealizedPlan::balanced(10_000_000, 0.99).unwrap();
    assert_eq!(plan.tail_multiplicity(), Some(20));
    assert_eq!(plan.tail_tasks(), 12);
    assert_eq!(plan.ringer_tasks(), 57);
    assert!((46_400_000..46_600_000).contains(&plan.total_assignments()));
}

#[test]
fn sec6_typical_example() {
    // §6: N = 10⁶, ε = 0.75 → i_f = 11, tail 5, 2 ringers.
    let plan = RealizedPlan::balanced(1_000_000, 0.75).unwrap();
    assert_eq!(plan.tail_multiplicity(), Some(11));
    assert_eq!(plan.tail_tasks(), 5);
    assert_eq!(plan.ringer_tasks(), 2);
}

#[test]
fn sec7_factors_and_extra_cost() {
    // §7: factors 2.259, 3.192, 4.152, 5.126 for min multiplicities 2–5 at
    // ε = 0.5, and +25,900 assignments over simple redundancy at N = 10⁵.
    let expect = [(2, 2.2589), (3, 3.1923), (4, 4.1522), (5, 5.1256)];
    for (m, want) in expect {
        let ext = ExtendedBalanced::new(100_000, 0.5, m).unwrap();
        assert_close(
            ext.redundancy_factor_exact(),
            want,
            0.001,
            &format!("sec7 m={m}"),
        );
    }
    let ext2 = ExtendedBalanced::new(100_000, 0.5, 2).unwrap();
    assert_close(
        ext2.total_assignments_exact() - 200_000.0,
        25_889.0,
        50.0,
        "extra cost over simple",
    );
}

#[test]
fn appendix_a_critical_proportion() {
    // Appendix A: expected fully controlled tasks ≈ p²N; threshold 1/√N.
    use redundancy_sim::two_phase::TwoPhaseConfig;
    let cfg = TwoPhaseConfig::new(1_000_000, 0.001);
    assert_close(cfg.expected_full_control(), 1.0, 1e-9, "p²N at p = 1/√N");
    assert_close(cfg.critical_proportion(), 0.001, 1e-12, "1/√N");
}

#[test]
fn balanced_beats_gs_pointwise() {
    // §4 / Figure 3: "the redundancy factor of the Balanced distribution
    // is less than that of the Golle-Stubblebine distribution for
    // 0 < ε < 1".
    for i in 1..=99 {
        let eps = i as f64 / 100.0;
        assert!(
            Balanced::factor_for_threshold(eps).unwrap()
                < GolleStubblebine::factor_for_threshold(eps).unwrap(),
            "eps={eps}"
        );
    }
}
