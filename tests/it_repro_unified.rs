//! The unified-entry-point contract: `redundancy repro <exhibit>` is
//! byte-for-byte the same surface as the legacy standalone binary and the
//! pinned golden snapshot, at more than one thread count.
//!
//! One test per registry entry (so failures name the drifted exhibit and
//! the suite parallelizes), plus registry/harness consistency checks and
//! process-level coverage of the shared parser's `--trials-scale`
//! validation.

use redundancy_integration::snapshot::{binary_path, run_exhibit, snapshot_path, EXHIBITS};
use std::process::Command;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// `redundancy repro <name> --threads <t>` stdout, via the in-process CLI
/// entry point (the same code path `main` runs).
fn cli_repro(name: &str, threads: &str) -> String {
    redundancy_cli::run(&argv(&["repro", name, "--threads", threads]))
        .unwrap_or_else(|e| panic!("`redundancy repro {name}` failed: {e}"))
}

/// The three-way byte equality at thread counts 1 and 4: pinned snapshot,
/// standalone binary (honoring `SNAPSHOT_THREADS`), unified CLI.
fn check_unified(name: &str) {
    let snapshot = std::fs::read_to_string(snapshot_path(name)).unwrap_or_else(|e| {
        panic!(
            "no snapshot for {name} at {}: {e}",
            snapshot_path(name).display()
        )
    });
    let binary = run_exhibit(name);
    assert_eq!(
        binary, snapshot,
        "standalone binary {name} drifted from its snapshot"
    );
    for threads in ["1", "4"] {
        let unified = cli_repro(name, threads);
        assert_eq!(
            unified, snapshot,
            "`redundancy repro {name} --threads {threads}` is not byte-identical \
             to the pinned snapshot"
        );
    }
}

macro_rules! unified_tests {
    ($($name:ident),+ $(,)?) => {$(
        #[test]
        fn $name() {
            check_unified(stringify!($name));
        }
    )+};
}

unified_tests!(
    fig1_detection_vs_p,
    fig2_minimizing_table,
    fig3_redundancy_factors,
    fig4_assignment_table,
    sec6_implementation,
    sec7_extension,
    theory_checks,
    appendix_a_collusion,
    empirical_detection,
    ext_survival,
    ext_faults,
    ext_churn,
    ext_serve,
);

/// The registry, the snapshot harness's exhibit list, and the macro above
/// must all name the same 13 exhibits in the same order.
#[test]
fn registry_matches_the_snapshot_harness() {
    let registry: Vec<&str> = redundancy_repro::registry()
        .iter()
        .map(|e| e.name())
        .collect();
    assert_eq!(registry, EXHIBITS.to_vec());
}

/// `--trials-scale 0` is rejected at the process level with exit code 2
/// and an error naming the flag — by the legacy binary and by the unified
/// subcommand alike (they share one parser).
#[test]
fn trials_scale_zero_exits_2_naming_the_flag() {
    for (bin, args) in [
        ("appendix_a_collusion", vec!["--trials-scale", "0"]),
        (
            "redundancy",
            vec!["repro", "appendix_a_collusion", "--trials-scale", "0"],
        ),
    ] {
        let path = binary_path(bin);
        assert!(path.exists(), "{} not built", path.display());
        let out = Command::new(&path)
            .args(&args)
            .output()
            .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bin} {args:?} should exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--trials-scale"),
            "{bin} stderr must name the flag: {stderr}"
        );
        assert!(out.stdout.is_empty(), "{bin} must not print a report");
    }
}

/// The same validation is reachable in-process, matching the established
/// `bad value` wording.
#[test]
fn trials_scale_zero_in_process_error_names_the_flag() {
    let err =
        redundancy_cli::run(&argv(&["repro", "theory_checks", "--trials-scale", "0"])).unwrap_err();
    assert!(err.contains("--trials-scale"), "{err}");
    assert!(err.contains("bad value"), "{err}");
}

/// Unknown flags are a strict error through the unified subcommand (unlike
/// the lenient legacy binaries), and unknown exhibits point at `--list`.
#[test]
fn unified_rejects_unknown_flags_and_exhibits() {
    let err = redundancy_cli::run(&argv(&["repro", "theory_checks", "--bogus", "1"])).unwrap_err();
    assert!(err.contains("unknown flag `--bogus` for `repro`"), "{err}");
    let err = redundancy_cli::run(&argv(&["repro", "no_such_exhibit"])).unwrap_err();
    assert!(err.contains("repro --list"), "{err}");
    let err = redundancy_cli::run(&argv(&["repro"])).unwrap_err();
    assert!(err.contains("repro --list"), "{err}");
}

/// `--json` emits a valid `repro-report/v1` document whose envelope echoes
/// the context, alongside unchanged stdout.
#[test]
fn json_report_carries_the_envelope() {
    let dir = std::env::temp_dir().join("repro_unified_json_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sec7.json");
    let out = redundancy_cli::run(&argv(&[
        "repro",
        "sec7_extension",
        "--seed",
        "7",
        "--json",
        path.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(
        out,
        std::fs::read_to_string(snapshot_path("sec7_extension")).unwrap(),
        "--json must not change stdout"
    );
    let doc = redundancy_json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc.field_str("schema").unwrap(), "repro-report/v1");
    assert_eq!(doc.field_str("exhibit").unwrap(), "sec7_extension");
    assert_eq!(doc.field_u64("seed").unwrap(), 7);
    assert!(doc.field("passed").unwrap().as_bool().unwrap());
    assert!(!doc.field_arr("sections").unwrap().is_empty());
    let _ = std::fs::remove_file(&path);
}
