//! Integration: full platform simulations confirm the analytic detection
//! guarantees for every scheme (the workspace's empirical validation).

use redundancy_core::RealizedPlan;
use redundancy_integration::{balanced_pkp, gs_pkp};
use redundancy_sim::engine::CampaignConfig;
use redundancy_sim::experiment::{
    detection_experiment, detection_experiment_with, ExperimentConfig,
};
use redundancy_sim::supervisor::VerificationPolicy;
use redundancy_sim::two_phase::{two_phase_batch, TwoPhaseConfig};
use redundancy_sim::{AdversaryModel, CheatStrategy};
use redundancy_stats::DeterministicRng;

#[test]
fn balanced_empirical_brackets_proposition3_on_grid() {
    for (eps, p, seed) in [(0.5, 0.05, 1u64), (0.5, 0.15, 2), (0.75, 0.10, 3)] {
        let plan = RealizedPlan::balanced(20_000, eps).unwrap();
        let est = detection_experiment(
            &plan,
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
            &ExperimentConfig::new(25, seed),
        );
        let closed = balanced_pkp(eps, p);
        for k in 1..=2usize {
            assert!(
                est.consistent_with(k, closed),
                "eps={eps} p={p} k={k}: {:?} vs {closed}",
                est.at_tuple(k).map(|q| q.estimate())
            );
        }
    }
}

#[test]
fn gs_empirical_brackets_closed_form() {
    let eps = 0.5;
    let p = 0.1;
    let plan = RealizedPlan::golle_stubblebine(20_000, eps).unwrap();
    let est = detection_experiment(
        &plan,
        AdversaryModel::AssignmentFraction { p },
        CheatStrategy::AtLeast { min_copies: 1 },
        &ExperimentConfig::new(25, 7),
    );
    let c = 1.0 - (1.0 - eps).sqrt();
    for k in 1..=2usize {
        let closed = gs_pkp(c, k, p);
        assert!(
            est.consistent_with(k, closed),
            "k={k}: {:?} vs {closed}",
            est.at_tuple(k).map(|q| q.estimate())
        );
    }
}

#[test]
fn simple_redundancy_pair_collusion_always_succeeds() {
    let plan = RealizedPlan::k_fold(10_000, 2, 0.5).unwrap();
    let est = detection_experiment(
        &plan,
        AdversaryModel::AssignmentFraction { p: 0.2 },
        CheatStrategy::ExactTuples { k: 2 },
        &ExperimentConfig::new(15, 11),
    );
    let pair = est.at_tuple(2).unwrap();
    assert_eq!(pair.estimate(), 0.0);
    assert!(est.outcome.wrong_accepted > 100);
}

#[test]
fn sybil_pool_matches_assignment_fraction_analysis() {
    // The Sybil model (hypergeometric per task) must produce detection
    // rates statistically indistinguishable from the p-fraction model.
    let eps = 0.5;
    let plan = RealizedPlan::balanced(20_000, eps).unwrap();
    let est = detection_experiment(
        &plan,
        AdversaryModel::SybilAccounts {
            total: 50_000,
            adversary: 5_000,
        },
        CheatStrategy::AtLeast { min_copies: 1 },
        &ExperimentConfig::new(25, 13),
    );
    let closed = balanced_pkp(eps, 0.1);
    assert!(
        est.consistent_with(1, closed),
        "{:?} vs {closed}",
        est.at_tuple(1).map(|q| q.estimate())
    );
}

#[test]
fn majority_policy_accepts_colluded_values_but_flags_them() {
    let plan = RealizedPlan::k_fold(5_000, 3, 0.5).unwrap();
    let campaign = CampaignConfig {
        adversary: AdversaryModel::AssignmentFraction { p: 0.5 },
        strategy: CheatStrategy::ExactTuples { k: 2 },
        honest_error_rate: 0.0,
        policy: VerificationPolicy::Majority,
    };
    let est = detection_experiment_with(&plan, &campaign, &ExperimentConfig::new(10, 17));
    // Holding 2 of 3 copies: flagged (the honest copy disagrees) AND the
    // colluded value wins the vote — the quorum pitfall.
    let two = est.at_tuple(2).unwrap();
    assert_eq!(two.estimate(), 1.0, "mismatch always flags");
    assert!(
        est.outcome.wrong_accepted > 0,
        "yet the wrong value is recorded"
    );
}

#[test]
fn honest_faults_do_not_inflate_cheat_detection() {
    let plan = RealizedPlan::balanced(10_000, 0.5).unwrap();
    let campaign = CampaignConfig {
        adversary: AdversaryModel::AssignmentFraction { p: 0.0 },
        strategy: CheatStrategy::Never,
        honest_error_rate: 0.01,
        policy: VerificationPolicy::Unanimous,
    };
    let est = detection_experiment_with(&plan, &campaign, &ExperimentConfig::new(10, 19));
    assert_eq!(est.outcome.total_attempted(), 0);
    assert!(est.outcome.false_flags > 0);
}

#[test]
fn appendix_a_mean_matches_p_squared_n_at_scale() {
    let cfg = TwoPhaseConfig::new(1_000_000, 0.002);
    let mut rng = DeterministicRng::new(23);
    let out = two_phase_batch(&cfg, 2_000, &mut rng);
    let expect = cfg.expected_full_control(); // 4.0
    let mean = out.full_control.mean();
    let se = out.full_control.standard_error();
    assert!(
        (mean - expect).abs() < 4.0 * se + 0.01,
        "mean {mean} vs {expect} (se {se})"
    );
    // Well above the 1/√N threshold ⇒ essentially always cheatable.
    assert!(out.cheatable_fraction() > 0.9);
}

#[test]
fn cross_seed_stability_of_estimates() {
    // Different seeds must give statistically compatible estimates (a
    // regression guard against seed-dependent bias in the chunked runner).
    let plan = RealizedPlan::balanced(20_000, 0.5).unwrap();
    let run = |seed| {
        detection_experiment(
            &plan,
            AdversaryModel::AssignmentFraction { p: 0.1 },
            CheatStrategy::AtLeast { min_copies: 1 },
            &ExperimentConfig::new(20, seed),
        )
        .at_tuple(1)
        .unwrap()
        .estimate()
    };
    let a = run(100);
    let b = run(200);
    assert!((a - b).abs() < 0.02, "{a} vs {b}");
}
