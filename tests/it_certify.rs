//! The full Figure 2 sweep under the exact-rational LP oracle: every `S_m`
//! instance the paper solves, m = 2..=26 at N = 100,000 and ε = ½, must be
//! certified optimal in ℚ (primal feasibility, dual feasibility,
//! complementary slackness, strong duality) and agree with the f64 simplex.

use redundancy_core::{certify_minimizing, certify_sweep};

#[test]
fn figure2_full_sweep_certifies_in_exact_arithmetic() {
    let certs = certify_sweep(100_000, 0.5, 2..=26).expect("every S_m certifies");
    assert_eq!(certs.len(), 25);
    for c in &certs {
        assert!(c.certified, "m={} failed its certificate", c.dimension);
        assert!(
            c.relative_gap < 1e-8,
            "m={}: f64 {} vs exact {} (gap {})",
            c.dimension,
            c.f64_objective,
            c.objective.to_f64(),
            c.relative_gap
        );
    }
    // S₂ has the closed-form optimum 4N/3, witnessed exactly in ℚ.
    assert_eq!(format!("{}", certs[0].objective), "400000/3");
    // S₂ attains Proposition 1's lower bound; S₃ sits strictly above it
    // (paper §3.2).  The exact objectives witness that separation with no
    // floating-point doubt.
    assert!(certs[1].objective > certs[0].objective);
}

#[test]
fn figure3_epsilons_certify_too() {
    // Figure 3 sweeps the threshold; every ε there is a dyadic rational, so
    // the unnormalized rows stay exactly representable.
    for eps in [0.25, 0.5, 0.75] {
        for m in [2usize, 6, 12] {
            let cert = certify_minimizing(100_000, eps, m)
                .unwrap_or_else(|e| panic!("eps={eps} m={m}: {e}"));
            assert!(cert.certified, "eps={eps} m={m}");
            assert!(
                cert.relative_gap < 1e-8,
                "eps={eps} m={m}: gap {}",
                cert.relative_gap
            );
        }
    }
}
