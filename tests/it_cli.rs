//! Integration: the `redundancy` CLI drives the whole stack end to end.

use redundancy_cli::run;
use redundancy_integration::snapshot::binary_path;
use std::process::Command;

fn cli(parts: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    run(&argv)
}

#[test]
fn plan_analyze_simulate_pipeline() {
    // Plan a computation, analyze it, and simulate it — the three commands
    // must tell a consistent story at eps = 0.75.
    let plan = cli(&["plan", "--tasks", "100000", "--epsilon", "0.75"]).unwrap();
    assert!(plan.contains("factor 1.84"), "{plan}");
    let analyze = cli(&[
        "analyze",
        "--tasks",
        "100000",
        "--epsilon",
        "0.75",
        "--proportion",
        "0.1",
    ])
    .unwrap();
    // Proposition 3 at p = 0.1: 1 - 0.25^0.9 ≈ 0.7128.
    assert!(analyze.contains("0.7129"), "{analyze}");
    let simulate = cli(&[
        "simulate",
        "--tasks",
        "20000",
        "--epsilon",
        "0.75",
        "--proportion",
        "0.1",
        "--campaigns",
        "10",
        "--seed",
        "42",
    ])
    .unwrap();
    // The simulated k = 1 rate appears and is near 0.71.
    let line = simulate
        .lines()
        .find(|l| l.trim_start().starts_with('1') && l.contains('['))
        .expect("k = 1 row present");
    assert!(line.contains("0.7"), "{line}");
}

#[test]
fn errors_propagate_as_messages() {
    let err = cli(&["plan", "--tasks", "0", "--epsilon", "0.5"]).unwrap_err();
    assert!(err.contains("task"), "{err}");
    let err2 = cli(&["nonsense"]).unwrap_err();
    assert!(err2.contains("unknown command"), "{err2}");
}

#[test]
fn help_is_always_available() {
    let out = cli(&["help"]).unwrap();
    assert!(out.contains("USAGE"));
    let out2 = cli(&["help", "solve-sm"]).unwrap();
    assert!(out2.contains("--min-precompute"));
    let out3 = cli(&["help", "faults"]).unwrap();
    assert!(out3.contains("--drop-rate"), "{out3}");
    let out4 = cli(&["help", "churn"]).unwrap();
    assert!(out4.contains("--leave-rate"), "{out4}");
    assert!(out4.contains("--soak"), "{out4}");
    let out5 = cli(&["help", "serve"]).unwrap();
    assert!(out5.contains("--stdio"), "{out5}");
    assert!(out5.contains("--shards"), "{out5}");
    assert!(out5.contains("--clients"), "{out5}");
}

#[test]
fn faults_table_snapshot() {
    // Full-output snapshot: the sweep is deterministic for a fixed seed
    // and independent of worker thread count, so the rendered table is
    // stable byte for byte.
    let out = cli(&[
        "faults",
        "--tasks",
        "500",
        "--epsilon",
        "0.5",
        "--proportion",
        "0.2",
        "--campaigns",
        "2",
        "--seed",
        "3",
        "--drop-rate",
        "0.4",
        "--steps",
        "2",
        "--retries",
        "1",
    ])
    .unwrap();
    let expected = "\
fault sweep: balanced over 500 tasks, 2 campaigns/row, adversary share 0.2, seed 3
timeout 8 ticks, 1 retries, straggler rate 0 (mean delay 4)
closed-form detection with lossless delivery: 0.4257
drop rate  detection            95% CI  delivered  eff. mult  retries  unresolved
---------------------------------------------------------------------------------
0.00          0.4038  [0.3460, 0.4645]     1.0000      1.405        0           0
0.20          0.4093  [0.3511, 0.4701]     0.9638      1.354      291          24
0.40          0.3932  [0.3328, 0.4570]     0.8409      1.182      536         118
(detection below the closed form means fault pressure ate into the guarantee; \
raise --retries or the timeout to recover it)
";
    assert_eq!(out, expected);
}

#[test]
fn churn_table_snapshot() {
    // Full-output snapshot: the churn sweep is deterministic for a fixed
    // seed and independent of worker thread count, so the rendered table
    // is stable byte for byte.  Row 0 is the static pool and matches the
    // faults snapshot's zero-fault detection on the same seed exactly —
    // both degenerate to the same batched kernel draws.
    let out = cli(&[
        "churn",
        "--tasks",
        "500",
        "--epsilon",
        "0.5",
        "--proportion",
        "0.2",
        "--campaigns",
        "2",
        "--seed",
        "3",
        "--leave-rate",
        "0.004",
        "--workers",
        "120",
        "--horizon",
        "600",
        "--census-interval",
        "200",
        "--steps",
        "2",
    ])
    .unwrap();
    let expected = "\
churn sweep: balanced over 500 tasks, 2 campaigns/row, adversary share 0.2, seed 3
120 initial workers, horizon 600 ticks, census every 200 ticks, arrival rate 0.6, failure rate 0
closed-form detection with a static pool: 0.4257
leave rate  detection            95% CI  realized factor  live workers  reassigned/trial  lost/trial
----------------------------------------------------------------------------------------------------
0.0000         0.4038  [0.3460, 0.4645]            1.408         120.0               0.0         0.0
0.0020         0.4224  [0.3883, 0.4572]            3.009         253.0             809.5         0.0
0.0040         0.4418  [0.4079, 0.4763]            4.543         155.0            1573.0         0.0
(departures reassign their copies — detection holds but the realized factor inflates; \
failures destroy copies and eat into the detection guarantee)
";
    assert_eq!(out, expected);
}

#[test]
fn serve_drain_snapshot() {
    // Full-output snapshot: the default mode drains the session in
    // process and checks the batched-kernel oracle, so the stats dump —
    // checksum included — is stable byte for byte for a fixed seed.
    let out = cli(&[
        "serve",
        "--tasks",
        "500",
        "--epsilon",
        "0.5",
        "--proportion",
        "0.2",
        "--seed",
        "3",
        "--shards",
        "2",
    ])
    .unwrap();
    let expected = "\
serve: balanced over 500 tasks, 2 shard(s), adversary share 0.2, seed 3
timeout 8 ticks, 3 retries per copy
tasks-total 501
tasks-activated 501
tasks-completed 501
copies-total 704
issued 704
returned 704
in-flight 0
requeued 0
lost 0
timeouts 0
retries 0
cheats-attempted 130
cheats-detected 73
wrong-accepted 57
false-flags 0
unresolved-tasks 0
detection 0.5615
realized-factor 1.4052
checksum 0x4ae1da86d4a8f6ca
batched-kernel oracle: bit-identical
";
    assert_eq!(out, expected);
}

/// `redundancy serve` flag validation at the process level: a bad shard
/// count or an out-of-range port exits with code 2 and an error naming
/// the flag, before any listener is bound or any session is built.
#[test]
fn serve_flag_validation_exits_2_naming_the_flag() {
    for (flag, value) in [("--shards", "0"), ("--port", "70000")] {
        let path = binary_path("redundancy");
        assert!(path.exists(), "{} not built", path.display());
        let out = Command::new(&path)
            .args(["serve", flag, value])
            .output()
            .unwrap_or_else(|e| panic!("spawning redundancy: {e}"));
        assert_eq!(
            out.status.code(),
            Some(2),
            "serve {flag} {value} should exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag),
            "stderr must name the flag {flag}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "must not print a report");
    }
}

/// Journal flag validation at the process level, matching the exit-code
/// convention above: a missing or unreadable journal path — and
/// `--recover` without a journal at all — exits 2 with an error naming
/// the flag, before any session is built; nothing is printed to stdout.
#[test]
fn journal_flag_validation_exits_2_naming_the_flag() {
    let path = binary_path("redundancy");
    assert!(path.exists(), "{} not built", path.display());
    let missing = "/nonexistent/journal.bin";
    let cases: [(&[&str], &str); 4] = [
        (&["journal-inspect", "--journal", missing], "--journal"),
        (&["journal-inspect"], "--journal"),
        (
            &["serve", "--tasks", "100", "--journal", missing, "--recover"],
            "--journal",
        ),
        (&["serve", "--tasks", "100", "--recover"], "--recover"),
    ];
    for (args, flag) in cases {
        let out = Command::new(&path)
            .args(args)
            .output()
            .unwrap_or_else(|e| panic!("spawning redundancy: {e}"));
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} should exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag),
            "stderr must name the flag {flag}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "must not print a report");
    }
}

#[test]
fn churn_rejects_invalid_parameters_with_messages() {
    let err = cli(&["churn", "--leave-rate", "1.5"]).unwrap_err();
    assert!(err.contains("probability in [0, 1]"), "{err}");
    let err2 = cli(&["churn", "--census-interval", "0"]).unwrap_err();
    assert!(err2.contains("positive number of ticks"), "{err2}");
}

/// `redundancy churn` flag validation at the process level: a bad flag
/// value exits with code 2 and an error naming the flag, matching the
/// established exit-code conventions.
#[test]
fn churn_flag_validation_exits_2_naming_the_flag() {
    for (flag, value) in [("--enter-rate", "-1"), ("--threads", "0")] {
        let path = binary_path("redundancy");
        assert!(path.exists(), "{} not built", path.display());
        let out = Command::new(&path)
            .args(["churn", flag, value])
            .output()
            .unwrap_or_else(|e| panic!("spawning redundancy: {e}"));
        assert_eq!(
            out.status.code(),
            Some(2),
            "churn {flag} {value} should exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag),
            "stderr must name the flag {flag}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "must not print a report");
    }
}

#[test]
fn faults_rejects_invalid_parameters_with_messages() {
    let err = cli(&[
        "faults",
        "--tasks",
        "500",
        "--epsilon",
        "0.5",
        "--drop-rate",
        "1.5",
    ])
    .unwrap_err();
    assert!(err.contains("probability in [0, 1]"), "{err}");
    let err2 = cli(&[
        "faults",
        "--tasks",
        "500",
        "--epsilon",
        "0.5",
        "--timeout",
        "0",
    ])
    .unwrap_err();
    assert!(err2.contains("positive number of ticks"), "{err2}");
}
