//! Integration: the `redundancy` CLI drives the whole stack end to end.

use redundancy_cli::run;

fn cli(parts: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    run(&argv)
}

#[test]
fn plan_analyze_simulate_pipeline() {
    // Plan a computation, analyze it, and simulate it — the three commands
    // must tell a consistent story at eps = 0.75.
    let plan = cli(&["plan", "--tasks", "100000", "--epsilon", "0.75"]).unwrap();
    assert!(plan.contains("factor 1.84"), "{plan}");
    let analyze = cli(&[
        "analyze", "--tasks", "100000", "--epsilon", "0.75", "--proportion", "0.1",
    ])
    .unwrap();
    // Proposition 3 at p = 0.1: 1 - 0.25^0.9 ≈ 0.7128.
    assert!(analyze.contains("0.7129"), "{analyze}");
    let simulate = cli(&[
        "simulate", "--tasks", "20000", "--epsilon", "0.75", "--proportion", "0.1",
        "--campaigns", "10", "--seed", "42",
    ])
    .unwrap();
    // The simulated k = 1 rate appears and is near 0.71.
    let line = simulate
        .lines()
        .find(|l| l.trim_start().starts_with('1') && l.contains('['))
        .expect("k = 1 row present");
    assert!(line.contains("0.7"), "{line}");
}

#[test]
fn errors_propagate_as_messages() {
    let err = cli(&["plan", "--tasks", "0", "--epsilon", "0.5"]).unwrap_err();
    assert!(err.contains("task"), "{err}");
    let err2 = cli(&["nonsense"]).unwrap_err();
    assert!(err2.contains("unknown command"), "{err2}");
}

#[test]
fn help_is_always_available() {
    let out = cli(&["help"]).unwrap();
    assert!(out.contains("USAGE"));
    let out2 = cli(&["help", "solve-sm"]).unwrap();
    assert!(out2.contains("--min-precompute"));
}
