//! Hand-rolled argument parsing for the `redundancy` command.
//!
//! The grammar is flat: a subcommand followed by `--key value` pairs.
//! Parsing is strict — unknown flags and malformed values are errors, not
//! silently ignored — because a supervisor mistyping `--epsilon` should
//! not deploy an unprotected computation.

use redundancy_sim::serve::{StreamMode, SyncPolicy};
use redundancy_stats::SamplerMode;
use std::collections::HashMap;
use std::fmt;

/// Which TCP transport loop `redundancy serve` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// The epoll readiness loop where available (Linux), else threads.
    #[default]
    Auto,
    /// The epoll readiness loop, or an error off Linux.
    Epoll,
    /// One blocking thread per connection (the portable fallback).
    Threads,
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(IoMode::Auto),
            "epoll" => Ok(IoMode::Epoll),
            "threads" => Ok(IoMode::Threads),
            other => Err(format!(
                "unknown io mode '{other}' (expected auto, epoll, or threads)"
            )),
        }
    }
}

/// Which scheme a command operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeName {
    /// The paper's Balanced distribution.
    Balanced,
    /// Golle–Stubblebine geometric distribution.
    GolleStubblebine,
    /// Plain 2-fold redundancy.
    Simple,
    /// Extended Balanced with a minimum multiplicity.
    Extended,
}

impl SchemeName {
    fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "balanced" | "bal" => Ok(SchemeName::Balanced),
            "golle-stubblebine" | "gs" => Ok(SchemeName::GolleStubblebine),
            "simple" => Ok(SchemeName::Simple),
            "extended" | "extended-balanced" => Ok(SchemeName::Extended),
            other => Err(ArgError::BadValue {
                flag: "--scheme".into(),
                value: other.into(),
                expected: "balanced | golle-stubblebine | simple | extended",
            }),
        }
    }
}

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `redundancy plan`
    Plan {
        /// Scheme to realize.
        scheme: SchemeName,
        /// Task count.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// §7 minimum multiplicity (extended scheme only).
        min_multiplicity: Option<usize>,
        /// Adversary share the guarantee must survive (boosts ε).
        proportion: f64,
        /// Optional JSON output path.
        json: Option<String>,
    },
    /// `redundancy analyze`
    Analyze {
        /// Scheme to analyze.
        scheme: SchemeName,
        /// Task count.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// Adversary share for the non-asymptotic columns.
        proportion: f64,
    },
    /// `redundancy advise`
    Advise {
        /// Task count.
        tasks: u64,
        /// Required detection threshold.
        epsilon: f64,
        /// Worst-case adversary share.
        adversary: f64,
        /// Precompute budget in tasks.
        precompute_budget: u64,
        /// Optional minimum multiplicity requirement.
        min_multiplicity: Option<usize>,
    },
    /// `redundancy simulate`
    Simulate {
        /// Scheme to simulate.
        scheme: SchemeName,
        /// Task count per campaign.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// Adversary assignment share.
        proportion: f64,
        /// Number of campaigns.
        campaigns: u64,
        /// RNG seed.
        seed: u64,
        /// Trials per deterministic chunk of the parallel runner.
        chunk_size: u64,
        /// Worker threads for the parallel runner (0 = auto).
        threads: usize,
        /// Sampling backend: bit-compat (snapshot-exact) or fast (alias).
        sampler: SamplerMode,
    },
    /// `redundancy solve-sm`
    SolveSm {
        /// Task count.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// System dimension m.
        dim: usize,
        /// Use the lexicographic min-precompute refinement.
        min_precompute: bool,
        /// Optional MPS export path.
        mps: Option<String>,
    },
    /// `redundancy faults`
    Faults {
        /// Scheme to simulate.
        scheme: SchemeName,
        /// Task count per campaign.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// Adversary assignment share.
        proportion: f64,
        /// Number of campaigns per sweep row.
        campaigns: u64,
        /// RNG seed.
        seed: u64,
        /// Largest per-assignment drop rate in the sweep.
        drop_rate: f64,
        /// Straggler probability applied to every row.
        straggler_rate: f64,
        /// Mean straggler delay, in ticks.
        straggler_delay: f64,
        /// Ticks the supervisor waits before re-issuing a copy.
        timeout: u64,
        /// Re-issue budget per assignment.
        retries: u32,
        /// Sweep rows above zero (the zero-fault baseline is always row 0).
        steps: u32,
        /// Trials per deterministic chunk of the parallel runner.
        chunk_size: u64,
        /// Thread budget shared by the sweep pool and per-row runners
        /// (0 = auto).
        threads: usize,
    },
    /// `redundancy churn`
    Churn {
        /// Scheme to simulate.
        scheme: SchemeName,
        /// Task count per campaign.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// Adversary assignment share.
        proportion: f64,
        /// Number of campaigns per sweep row.
        campaigns: u64,
        /// RNG seed.
        seed: u64,
        /// Per-tick worker arrival rate applied to every row.
        enter_rate: f64,
        /// Largest per-worker departure rate in the sweep.
        leave_rate: f64,
        /// Per-worker failure rate applied to every row.
        fail_rate: f64,
        /// Initial worker population.
        workers: u64,
        /// Simulation horizon in ticks.
        horizon: u64,
        /// Ticks between census checkpoints.
        census_interval: u64,
        /// Sweep rows above zero (the zero-churn baseline is always row 0).
        steps: u32,
        /// Trials per deterministic chunk of the parallel runner.
        chunk_size: u64,
        /// Thread budget shared by the sweep pool and per-row runners
        /// (0 = auto; an explicit 0 is rejected).
        threads: usize,
        /// Run the single-trial soak (event-loop stress) instead of the
        /// sweep.
        soak: bool,
    },
    /// `redundancy serve`
    Serve {
        /// Scheme to serve.
        scheme: SchemeName,
        /// Task count of the workload.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// Adversary assignment share.
        proportion: f64,
        /// RNG seed for the session.
        seed: u64,
        /// Shard count of the assignment store.
        shards: usize,
        /// Ticks (requests) before an in-flight copy is re-queued.
        timeout: u64,
        /// Re-issue budget per copy before it is abandoned.
        retries: u32,
        /// TCP port to listen on (0 = OS-assigned); absent = no TCP.
        port: Option<u16>,
        /// Synthetic concurrent clients for the self-driving TCP drain.
        clients: usize,
        /// Serve the framed protocol over stdin/stdout instead.
        stdio: bool,
        /// RNG-stream discipline: one session stream (the batch-kernel
        /// bit-compat oracle) or one derived stream per shard.
        streams: StreamMode,
        /// TCP transport loop: epoll readiness loop or thread-per-conn.
        io: IoMode,
        /// Write a serve-report/v1 JSON document (per-shard mode only).
        json: Option<String>,
        /// Append every state-mutating event to this journal file.
        journal: Option<String>,
        /// When the journal appender hands bytes to the OS / fsyncs.
        sync: SyncPolicy,
        /// Replay the journal first and resume the session from it.
        recover: bool,
    },
    /// `redundancy journal-inspect`
    JournalInspect {
        /// The journal file to list and integrity-check.
        journal: String,
    },
    /// `redundancy certify`
    Certify {
        /// Task count.
        tasks: u64,
        /// Detection threshold.
        epsilon: f64,
        /// Certify `S_m` for every m from 2 to this dimension.
        max_dim: usize,
    },
    /// `redundancy bench`
    Bench {
        /// Shrink fixture sizes and repetitions for CI smoke runs.
        smoke: bool,
        /// RNG seed shared by every randomized fixture.
        seed: u64,
        /// Where the BENCH JSON report is written.
        out: String,
        /// Optional baseline report to gate regressions against.
        baseline: Option<String>,
        /// Cap on the thread counts the scaling fixtures exercise
        /// (0 = the full 1/2/4 ladder).
        threads: usize,
        /// Chunk size for the `run_trials` scaling fixtures.
        chunk_size: u64,
        /// Override every fixture's repetition count (must be positive).
        reps: Option<u64>,
    },
    /// `redundancy repro`
    Repro {
        /// Exhibit to run (a registry name); absent with `--list`/`--all`.
        exhibit: Option<String>,
        /// List the exhibit registry instead of running anything.
        list: bool,
        /// Run every registry entry.
        all: bool,
        /// Where the `repro-report/v1` JSON goes: a file path for a single
        /// exhibit, a directory for `--all`.
        json: Option<String>,
        /// Shared exhibit flags (`--seed/--csv/--trials-scale/--threads`),
        /// validated by the registry's own parser.
        ctx: redundancy_repro::ExhibitCtx,
    },
    /// `redundancy help [command]`
    Help {
        /// Command to describe, if any.
        topic: Option<String>,
    },
}

/// Argument-parsing failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    NoCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag {
        /// The offending flag.
        flag: String,
        /// The subcommand being parsed.
        command: &'static str,
    },
    /// Flag present but no value followed.
    MissingValue(String),
    /// A required flag was absent.
    MissingFlag {
        /// The absent flag.
        flag: &'static str,
        /// The subcommand being parsed.
        command: &'static str,
    },
    /// Value failed to parse or was out of range.
    BadValue {
        /// The flag.
        flag: String,
        /// The rejected value.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::NoCommand => write!(f, "no command given; try `redundancy help`"),
            ArgError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}`; try `redundancy help`")
            }
            ArgError::UnknownFlag { flag, command } => {
                write!(f, "unknown flag `{flag}` for `{command}`")
            }
            ArgError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            ArgError::MissingFlag { flag, command } => {
                write!(f, "`{command}` requires `{flag}`")
            }
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for `{flag}` (expected {expected})"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Collect `--key value` pairs after the subcommand.
fn collect_flags(argv: &[String]) -> Result<HashMap<String, String>, ArgError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        let key = &argv[i];
        if !key.starts_with("--") {
            return Err(ArgError::UnknownCommand(key.clone()));
        }
        // Boolean flags take no value.
        if key == "--min-precompute"
            || key == "--smoke"
            || key == "--soak"
            || key == "--stdio"
            || key == "--recover"
        {
            flags.insert(key.clone(), "true".into());
            i += 1;
            continue;
        }
        let Some(value) = argv.get(i + 1) else {
            return Err(ArgError::MissingValue(key.clone()));
        };
        flags.insert(key.clone(), value.clone());
        i += 2;
    }
    Ok(flags)
}

struct FlagSet<'a> {
    flags: HashMap<String, String>,
    command: &'static str,
    allowed: &'a [&'static str],
}

impl<'a> FlagSet<'a> {
    fn new(
        argv: &[String],
        command: &'static str,
        allowed: &'a [&'static str],
    ) -> Result<Self, ArgError> {
        let flags = collect_flags(argv)?;
        for key in flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::UnknownFlag {
                    flag: key.clone(),
                    command,
                });
            }
        }
        Ok(FlagSet {
            flags,
            command,
            allowed,
        })
    }

    fn required<T: std::str::FromStr>(
        &self,
        flag: &'static str,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        debug_assert!(self.allowed.contains(&flag));
        let raw = self.flags.get(flag).ok_or(ArgError::MissingFlag {
            flag,
            command: self.command,
        })?;
        raw.parse().map_err(|_| ArgError::BadValue {
            flag: flag.into(),
            value: raw.clone(),
            expected,
        })
    }

    fn optional<T: std::str::FromStr>(
        &self,
        flag: &'static str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgError> {
        match self.flags.get(flag) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| ArgError::BadValue {
                flag: flag.into(),
                value: raw.clone(),
                expected,
            }),
        }
    }

    fn or_default<T: std::str::FromStr>(
        &self,
        flag: &'static str,
        expected: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        Ok(self.optional(flag, expected)?.unwrap_or(default))
    }

    fn scheme(&self, default: SchemeName) -> Result<SchemeName, ArgError> {
        match self.flags.get("--scheme") {
            None => Ok(default),
            Some(raw) => SchemeName::parse(raw),
        }
    }
}

fn check_unit_interval(flag: &'static str, value: f64, open_top: bool) -> Result<f64, ArgError> {
    let ok = if open_top {
        (0.0..1.0).contains(&value)
    } else {
        0.0 < value && value < 1.0
    };
    if ok && value.is_finite() {
        Ok(value)
    } else {
        Err(ArgError::BadValue {
            flag: flag.into(),
            value: value.to_string(),
            expected: "a number strictly inside (0, 1)",
        })
    }
}

/// A fault-injection probability: any value in the closed interval [0, 1].
fn check_rate(flag: &'static str, value: f64) -> Result<f64, ArgError> {
    if (0.0..=1.0).contains(&value) && value.is_finite() {
        Ok(value)
    } else {
        Err(ArgError::BadValue {
            flag: flag.into(),
            value: value.to_string(),
            expected: "a probability in [0, 1]",
        })
    }
}

/// A count that must be at least 1 (timeouts, sweep steps).
fn check_nonzero<T: Into<u64> + Copy>(
    flag: &'static str,
    value: T,
    expected: &'static str,
) -> Result<T, ArgError> {
    if value.into() == 0 {
        Err(ArgError::BadValue {
            flag: flag.into(),
            value: "0".into(),
            expected,
        })
    } else {
        Ok(value)
    }
}

/// Parse a full argv (excluding the program name) into a [`Command`].
pub fn parse_args(argv: &[String]) -> Result<Command, ArgError> {
    let Some(command) = argv.first() else {
        return Err(ArgError::NoCommand);
    };
    let rest = &argv[1..];
    match command.as_str() {
        "plan" => {
            let f = FlagSet::new(
                rest,
                "plan",
                &[
                    "--scheme",
                    "--tasks",
                    "--epsilon",
                    "--min-multiplicity",
                    "--proportion",
                    "--json",
                ],
            )?;
            Ok(Command::Plan {
                scheme: f.scheme(SchemeName::Balanced)?,
                tasks: f.required("--tasks", "a positive integer")?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.required("--epsilon", "a number in (0, 1)")?,
                    false,
                )?,
                min_multiplicity: f.optional("--min-multiplicity", "a positive integer")?,
                proportion: check_unit_interval(
                    "--proportion",
                    f.or_default("--proportion", "a number in [0, 1)", 0.0)?,
                    true,
                )
                .or_else(|e| {
                    if f.flags.contains_key("--proportion") {
                        Err(e)
                    } else {
                        Ok(0.0)
                    }
                })?,
                json: f.optional("--json", "a file path")?,
            })
        }
        "analyze" => {
            let f = FlagSet::new(
                rest,
                "analyze",
                &["--scheme", "--tasks", "--epsilon", "--proportion"],
            )?;
            Ok(Command::Analyze {
                scheme: f.scheme(SchemeName::Balanced)?,
                tasks: f.required("--tasks", "a positive integer")?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.required("--epsilon", "a number in (0, 1)")?,
                    false,
                )?,
                proportion: f.or_default("--proportion", "a number in [0, 1)", 0.0)?,
            })
        }
        "advise" => {
            let f = FlagSet::new(
                rest,
                "advise",
                &[
                    "--tasks",
                    "--epsilon",
                    "--adversary",
                    "--precompute-budget",
                    "--min-multiplicity",
                ],
            )?;
            Ok(Command::Advise {
                tasks: f.required("--tasks", "a positive integer")?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.required("--epsilon", "a number in (0, 1)")?,
                    false,
                )?,
                adversary: f.or_default("--adversary", "a number in [0, 1)", 0.0)?,
                precompute_budget: f.or_default("--precompute-budget", "an integer", 0)?,
                min_multiplicity: f.optional("--min-multiplicity", "a positive integer")?,
            })
        }
        "simulate" => {
            let f = FlagSet::new(
                rest,
                "simulate",
                &[
                    "--scheme",
                    "--tasks",
                    "--epsilon",
                    "--proportion",
                    "--campaigns",
                    "--seed",
                    "--chunk-size",
                    "--threads",
                    "--sampler",
                ],
            )?;
            Ok(Command::Simulate {
                scheme: f.scheme(SchemeName::Balanced)?,
                tasks: f.required("--tasks", "a positive integer")?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.required("--epsilon", "a number in (0, 1)")?,
                    false,
                )?,
                proportion: f.or_default("--proportion", "a number in [0, 1)", 0.0)?,
                campaigns: f.or_default("--campaigns", "a positive integer", 20)?,
                seed: f.or_default("--seed", "a 64-bit integer", 20_050_926)?,
                chunk_size: f.or_default("--chunk-size", "a positive integer", 4)?,
                threads: f.or_default("--threads", "a thread count (0 = auto)", 0)?,
                sampler: f.or_default(
                    "--sampler",
                    "`bit-compat` or `fast`",
                    SamplerMode::default(),
                )?,
            })
        }
        "solve-sm" => {
            let f = FlagSet::new(
                rest,
                "solve-sm",
                &["--tasks", "--epsilon", "--dim", "--min-precompute", "--mps"],
            )?;
            Ok(Command::SolveSm {
                tasks: f.required("--tasks", "a positive integer")?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.required("--epsilon", "a number in (0, 1)")?,
                    false,
                )?,
                dim: f.required("--dim", "an integer ≥ 2")?,
                min_precompute: f.flags.contains_key("--min-precompute"),
                mps: f.optional("--mps", "a file path")?,
            })
        }
        "faults" => {
            let f = FlagSet::new(
                rest,
                "faults",
                &[
                    "--scheme",
                    "--tasks",
                    "--epsilon",
                    "--proportion",
                    "--campaigns",
                    "--seed",
                    "--drop-rate",
                    "--straggler-rate",
                    "--straggler-delay",
                    "--timeout",
                    "--retries",
                    "--steps",
                    "--chunk-size",
                    "--threads",
                ],
            )?;
            Ok(Command::Faults {
                scheme: f.scheme(SchemeName::Balanced)?,
                tasks: f.required("--tasks", "a positive integer")?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.required("--epsilon", "a number in (0, 1)")?,
                    false,
                )?,
                proportion: check_unit_interval(
                    "--proportion",
                    f.or_default("--proportion", "a number in [0, 1)", 0.1)?,
                    true,
                )?,
                campaigns: f.or_default("--campaigns", "a positive integer", 20)?,
                seed: f.or_default("--seed", "a 64-bit integer", 20_050_926)?,
                drop_rate: check_rate(
                    "--drop-rate",
                    f.or_default("--drop-rate", "a probability in [0, 1]", 0.5)?,
                )?,
                straggler_rate: check_rate(
                    "--straggler-rate",
                    f.or_default("--straggler-rate", "a probability in [0, 1]", 0.0)?,
                )?,
                straggler_delay: f.or_default("--straggler-delay", "ticks >= 1", 4.0)?,
                timeout: check_nonzero(
                    "--timeout",
                    f.or_default("--timeout", "a positive number of ticks", 8u64)?,
                    "a positive number of ticks",
                )?,
                retries: f.or_default("--retries", "a small integer", 3)?,
                steps: check_nonzero(
                    "--steps",
                    f.or_default("--steps", "a positive integer", 5u32)?,
                    "a positive number of sweep steps",
                )?,
                chunk_size: f.or_default("--chunk-size", "a positive integer", 4)?,
                threads: f.or_default("--threads", "a thread count (0 = auto)", 0)?,
            })
        }
        "churn" => {
            let f = FlagSet::new(
                rest,
                "churn",
                &[
                    "--scheme",
                    "--tasks",
                    "--epsilon",
                    "--proportion",
                    "--campaigns",
                    "--seed",
                    "--enter-rate",
                    "--leave-rate",
                    "--fail-rate",
                    "--workers",
                    "--horizon",
                    "--census-interval",
                    "--steps",
                    "--chunk-size",
                    "--threads",
                    "--soak",
                ],
            )?;
            // An explicit `--threads 0` is rejected (the flag means "use
            // exactly this many"); omitting it keeps the auto default.
            let threads = match f.optional::<u64>("--threads", "a positive thread count")? {
                None => 0,
                Some(t) => {
                    check_nonzero("--threads", t, "a positive thread count (omit for auto)")?
                        as usize
                }
            };
            Ok(Command::Churn {
                scheme: f.scheme(SchemeName::Balanced)?,
                tasks: check_nonzero(
                    "--tasks",
                    f.or_default("--tasks", "a positive integer", 2_000u64)?,
                    "a positive task count",
                )?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.or_default("--epsilon", "a number in (0, 1)", 0.5)?,
                    false,
                )?,
                proportion: check_unit_interval(
                    "--proportion",
                    f.or_default("--proportion", "a number in [0, 1)", 0.2)?,
                    true,
                )?,
                campaigns: f.or_default("--campaigns", "a positive integer", 8)?,
                seed: f.or_default("--seed", "a 64-bit integer", 20_050_926)?,
                enter_rate: check_rate(
                    "--enter-rate",
                    f.or_default("--enter-rate", "a probability in [0, 1]", 0.6)?,
                )?,
                leave_rate: check_rate(
                    "--leave-rate",
                    f.or_default("--leave-rate", "a probability in [0, 1]", 0.004)?,
                )?,
                fail_rate: check_rate(
                    "--fail-rate",
                    f.or_default("--fail-rate", "a probability in [0, 1]", 0.0)?,
                )?,
                workers: check_nonzero(
                    "--workers",
                    f.or_default("--workers", "a positive integer", 400u64)?,
                    "a positive worker count",
                )?,
                horizon: check_nonzero(
                    "--horizon",
                    f.or_default("--horizon", "a positive number of ticks", 2_000u64)?,
                    "a positive number of ticks",
                )?,
                census_interval: check_nonzero(
                    "--census-interval",
                    f.or_default("--census-interval", "a positive number of ticks", 500u64)?,
                    "a positive number of ticks",
                )?,
                steps: check_nonzero(
                    "--steps",
                    f.or_default("--steps", "a positive integer", 4u32)?,
                    "a positive number of sweep steps",
                )?,
                chunk_size: f.or_default("--chunk-size", "a positive integer", 4)?,
                threads,
                soak: f.flags.contains_key("--soak"),
            })
        }
        "serve" => {
            let f = FlagSet::new(
                rest,
                "serve",
                &[
                    "--scheme",
                    "--tasks",
                    "--epsilon",
                    "--proportion",
                    "--seed",
                    "--shards",
                    "--timeout",
                    "--retries",
                    "--port",
                    "--clients",
                    "--stdio",
                    "--streams",
                    "--io",
                    "--json",
                    "--journal",
                    "--sync",
                    "--recover",
                ],
            )?;
            // `--recover` replays an existing journal; without one there is
            // nothing to recover from.
            if f.flags.contains_key("--recover") && !f.flags.contains_key("--journal") {
                return Err(ArgError::BadValue {
                    flag: "--recover".into(),
                    value: "set".into(),
                    expected: "a --journal path to recover from",
                });
            }
            // The port range is checked here (not left to u16 parsing) so
            // `--port 70000` names the flag and the accepted range.
            let port = match f.optional::<u64>("--port", "a TCP port in 0..=65535")? {
                None => None,
                Some(p) if p <= u64::from(u16::MAX) => Some(p as u16),
                Some(p) => {
                    return Err(ArgError::BadValue {
                        flag: "--port".into(),
                        value: p.to_string(),
                        expected: "a TCP port in 0..=65535",
                    })
                }
            };
            Ok(Command::Serve {
                scheme: f.scheme(SchemeName::Balanced)?,
                tasks: check_nonzero(
                    "--tasks",
                    f.or_default("--tasks", "a positive integer", 2_000u64)?,
                    "a positive task count",
                )?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.or_default("--epsilon", "a number in (0, 1)", 0.5)?,
                    false,
                )?,
                proportion: check_unit_interval(
                    "--proportion",
                    f.or_default("--proportion", "a number in [0, 1)", 0.2)?,
                    true,
                )?,
                seed: f.or_default("--seed", "a 64-bit integer", 20_050_926)?,
                shards: check_nonzero(
                    "--shards",
                    f.or_default("--shards", "a positive shard count", 1u64)?,
                    "a positive shard count",
                )? as usize,
                timeout: check_nonzero(
                    "--timeout",
                    f.or_default("--timeout", "a positive number of ticks", 8u64)?,
                    "a positive number of ticks",
                )?,
                retries: f.or_default("--retries", "a small integer", 3)?,
                port,
                clients: f.or_default("--clients", "a client count", 0)?,
                stdio: f.flags.contains_key("--stdio"),
                streams: f.or_default("--streams", "single or per-shard", StreamMode::Single)?,
                io: f.or_default("--io", "auto, epoll, or threads", IoMode::Auto)?,
                json: f.optional("--json", "a file path")?,
                journal: f.optional("--journal", "a file path")?,
                sync: f.or_default("--sync", "always, batch, or off", SyncPolicy::Batch)?,
                recover: f.flags.contains_key("--recover"),
            })
        }
        "journal-inspect" => {
            let f = FlagSet::new(rest, "journal-inspect", &["--journal"])?;
            Ok(Command::JournalInspect {
                journal: f.required("--journal", "a file path")?,
            })
        }
        "certify" => {
            let f = FlagSet::new(rest, "certify", &["--tasks", "--epsilon", "--max-dim"])?;
            Ok(Command::Certify {
                tasks: f.or_default("--tasks", "a positive integer", 100_000)?,
                epsilon: check_unit_interval(
                    "--epsilon",
                    f.or_default("--epsilon", "a number in (0, 1)", 0.5)?,
                    false,
                )?,
                max_dim: f.or_default("--max-dim", "an integer ≥ 2", 10)?,
            })
        }
        "bench" => {
            let f = FlagSet::new(
                rest,
                "bench",
                &[
                    "--smoke",
                    "--seed",
                    "--out",
                    "--baseline",
                    "--threads",
                    "--chunk-size",
                    "--reps",
                ],
            )?;
            Ok(Command::Bench {
                smoke: f.flags.contains_key("--smoke"),
                seed: f.or_default("--seed", "a 64-bit integer", 20_050_926)?,
                out: f
                    .optional("--out", "a file path")?
                    .unwrap_or_else(|| "BENCH_report.json".into()),
                baseline: f.optional("--baseline", "a file path")?,
                threads: f.or_default("--threads", "a thread count (0 = full ladder)", 0)?,
                chunk_size: f.or_default("--chunk-size", "a positive integer", 4)?,
                reps: f
                    .optional("--reps", "a positive repetition count")?
                    .map(|r| check_nonzero("--reps", r, "a positive repetition count"))
                    .transpose()?,
            })
        }
        "repro" => {
            // `repro` mixes one positional (the exhibit name) with its own
            // booleans and the shared exhibit flags, so it walks the argv
            // itself and hands the shared flags to the registry's parser —
            // the same code path the legacy standalone binaries use.
            let mut exhibit: Option<String> = None;
            let mut list = false;
            let mut all = false;
            let mut json: Option<String> = None;
            let mut shared: Vec<String> = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--list" => list = true,
                    "--all" => all = true,
                    "--json" => {
                        let Some(value) = rest.get(i + 1) else {
                            return Err(ArgError::MissingValue("--json".into()));
                        };
                        json = Some(value.clone());
                        i += 1;
                    }
                    flag if flag.starts_with("--") => {
                        shared.push(rest[i].clone());
                        if let Some(value) = rest.get(i + 1) {
                            shared.push(value.clone());
                            i += 1;
                        }
                    }
                    name => {
                        if exhibit.is_some() {
                            return Err(ArgError::BadValue {
                                flag: "repro".into(),
                                value: name.into(),
                                expected: "a single exhibit name",
                            });
                        }
                        exhibit = Some(name.to_string());
                    }
                }
                i += 1;
            }
            let ctx = redundancy_repro::ExhibitCtx::parse_from(&shared, true).map_err(|e| {
                use redundancy_repro::CtxError;
                match e {
                    CtxError::MissingValue(flag) => ArgError::MissingValue(flag),
                    CtxError::BadValue {
                        flag,
                        value,
                        expected,
                    } => ArgError::BadValue {
                        flag: flag.into(),
                        value,
                        expected,
                    },
                    CtxError::UnknownFlag(flag) => ArgError::UnknownFlag {
                        flag,
                        command: "repro",
                    },
                }
            })?;
            Ok(Command::Repro {
                exhibit,
                list,
                all,
                json,
                ctx,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help {
            topic: rest.first().cloned(),
        }),
        other => Err(ArgError::UnknownCommand(other.into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn plan_full_parse() {
        let cmd = parse_args(&argv(&[
            "plan",
            "--scheme",
            "gs",
            "--tasks",
            "1000",
            "--epsilon",
            "0.5",
            "--json",
            "out.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Plan {
                scheme: SchemeName::GolleStubblebine,
                tasks: 1000,
                epsilon: 0.5,
                min_multiplicity: None,
                proportion: 0.0,
                json: Some("out.json".into()),
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let cmd = parse_args(&argv(&["simulate", "--tasks", "10", "--epsilon", "0.5"])).unwrap();
        match cmd {
            Command::Simulate {
                scheme,
                campaigns,
                seed,
                proportion,
                ..
            } => {
                assert_eq!(scheme, SchemeName::Balanced);
                assert_eq!(campaigns, 20);
                assert_eq!(seed, 20_050_926);
                assert_eq!(proportion, 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse_args(&[]), Err(ArgError::NoCommand));
        assert!(matches!(
            parse_args(&argv(&["frobnicate"])),
            Err(ArgError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse_args(&argv(&[
                "plan",
                "--tasks",
                "10",
                "--epsilon",
                "0.5",
                "--bogus",
                "1"
            ])),
            Err(ArgError::UnknownFlag { .. })
        ));
        assert!(matches!(
            parse_args(&argv(&["plan", "--tasks"])),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            parse_args(&argv(&["plan", "--epsilon", "0.5"])),
            Err(ArgError::MissingFlag {
                flag: "--tasks",
                ..
            })
        ));
        assert!(matches!(
            parse_args(&argv(&["plan", "--tasks", "ten", "--epsilon", "0.5"])),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&argv(&["plan", "--tasks", "10", "--epsilon", "1.5"])),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn scheme_aliases() {
        assert_eq!(SchemeName::parse("bal").unwrap(), SchemeName::Balanced);
        assert_eq!(
            SchemeName::parse("golle-stubblebine").unwrap(),
            SchemeName::GolleStubblebine
        );
        assert_eq!(
            SchemeName::parse("extended-balanced").unwrap(),
            SchemeName::Extended
        );
        assert!(SchemeName::parse("magic").is_err());
    }

    #[test]
    fn solve_sm_boolean_flag() {
        let cmd = parse_args(&argv(&[
            "solve-sm",
            "--tasks",
            "1000",
            "--epsilon",
            "0.5",
            "--dim",
            "6",
            "--min-precompute",
        ]))
        .unwrap();
        match cmd {
            Command::SolveSm {
                min_precompute,
                dim,
                ..
            } => {
                assert!(min_precompute);
                assert_eq!(dim, 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn faults_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["faults", "--tasks", "1000", "--epsilon", "0.5"])).unwrap();
        match cmd {
            Command::Faults {
                drop_rate,
                straggler_rate,
                timeout,
                retries,
                steps,
                proportion,
                ..
            } => {
                assert_eq!(drop_rate, 0.5);
                assert_eq!(straggler_rate, 0.0);
                assert_eq!(timeout, 8);
                assert_eq!(retries, 3);
                assert_eq!(steps, 5);
                assert_eq!(proportion, 0.1);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(&argv(&[
            "faults",
            "--tasks",
            "1000",
            "--epsilon",
            "0.5",
            "--drop-rate",
            "0.8",
            "--straggler-rate",
            "0.3",
            "--timeout",
            "16",
            "--retries",
            "0",
        ]))
        .unwrap();
        match cmd {
            Command::Faults {
                drop_rate,
                straggler_rate,
                timeout,
                retries,
                ..
            } => {
                assert_eq!(drop_rate, 0.8);
                assert_eq!(straggler_rate, 0.3);
                assert_eq!(timeout, 16);
                assert_eq!(retries, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn faults_rejects_invalid_parameters() {
        // Drop rate above 1 is not a probability.
        assert!(matches!(
            parse_args(&argv(&[
                "faults",
                "--tasks",
                "10",
                "--epsilon",
                "0.5",
                "--drop-rate",
                "1.5"
            ])),
            Err(ArgError::BadValue { .. })
        ));
        // A zero timeout would retry forever without waiting.
        assert!(matches!(
            parse_args(&argv(&[
                "faults",
                "--tasks",
                "10",
                "--epsilon",
                "0.5",
                "--timeout",
                "0"
            ])),
            Err(ArgError::BadValue { .. })
        ));
        // Zero sweep steps cannot form a table.
        assert!(matches!(
            parse_args(&argv(&[
                "faults",
                "--tasks",
                "10",
                "--epsilon",
                "0.5",
                "--steps",
                "0"
            ])),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            parse_args(&argv(&[
                "faults",
                "--tasks",
                "10",
                "--epsilon",
                "0.5",
                "--straggler-rate",
                "-0.2"
            ])),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn chunk_size_flag_parses_with_default() {
        let cmd = parse_args(&argv(&["simulate", "--tasks", "10", "--epsilon", "0.5"])).unwrap();
        match cmd {
            Command::Simulate {
                chunk_size,
                threads,
                ..
            } => {
                assert_eq!(chunk_size, 4);
                assert_eq!(threads, 0);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(&argv(&[
            "faults",
            "--tasks",
            "10",
            "--epsilon",
            "0.5",
            "--chunk-size",
            "32",
            "--threads",
            "6",
        ]))
        .unwrap();
        match cmd {
            Command::Faults {
                chunk_size,
                threads,
                ..
            } => {
                assert_eq!(chunk_size, 32);
                assert_eq!(threads, 6);
            }
            other => panic!("{other:?}"),
        }
        // Zero parses here; rejection (exit 2) happens at dispatch via
        // `TrialConfig::validate`, which names the flag.
        let cmd = parse_args(&argv(&[
            "simulate",
            "--tasks",
            "10",
            "--epsilon",
            "0.5",
            "--chunk-size",
            "0",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate { chunk_size, .. } => assert_eq!(chunk_size, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn churn_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["churn"])).unwrap();
        match cmd {
            Command::Churn {
                scheme,
                tasks,
                epsilon,
                enter_rate,
                leave_rate,
                fail_rate,
                workers,
                horizon,
                census_interval,
                steps,
                threads,
                soak,
                ..
            } => {
                assert_eq!(scheme, SchemeName::Balanced);
                assert_eq!(tasks, 2_000);
                assert_eq!(epsilon, 0.5);
                assert_eq!(enter_rate, 0.6);
                assert_eq!(leave_rate, 0.004);
                assert_eq!(fail_rate, 0.0);
                assert_eq!(workers, 400);
                assert_eq!(horizon, 2_000);
                assert_eq!(census_interval, 500);
                assert_eq!(steps, 4);
                assert_eq!(threads, 0);
                assert!(!soak);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(&argv(&[
            "churn",
            "--soak",
            "--workers",
            "100000",
            "--horizon",
            "5500000",
            "--leave-rate",
            "0.01",
            "--threads",
            "2",
        ]))
        .unwrap();
        match cmd {
            Command::Churn {
                workers,
                horizon,
                leave_rate,
                threads,
                soak,
                ..
            } => {
                assert_eq!(workers, 100_000);
                assert_eq!(horizon, 5_500_000);
                assert_eq!(leave_rate, 0.01);
                assert_eq!(threads, 2);
                assert!(soak);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn churn_rejects_invalid_parameters_naming_the_flag() {
        // A negative rate is not a probability; `collect_flags` consumes
        // the `-1` as the flag's value, so this is a BadValue, not a
        // missing-value error.
        let e = parse_args(&argv(&["churn", "--enter-rate", "-1"])).unwrap_err();
        assert!(matches!(&e, ArgError::BadValue { flag, .. } if flag == "--enter-rate"));
        assert!(e.to_string().contains("--enter-rate"), "{e}");
        // An explicit zero thread count is rejected (omit the flag for
        // auto).
        let e = parse_args(&argv(&["churn", "--threads", "0"])).unwrap_err();
        assert!(matches!(&e, ArgError::BadValue { flag, .. } if flag == "--threads"));
        assert!(e.to_string().contains("--threads"), "{e}");
        for flags in [
            ["--leave-rate", "1.5"],
            ["--fail-rate", "nan"],
            ["--workers", "0"],
            ["--horizon", "0"],
            ["--census-interval", "0"],
            ["--steps", "0"],
        ] {
            let e = parse_args(&argv(&["churn", flags[0], flags[1]])).unwrap_err();
            assert!(e.to_string().contains(flags[0]), "{e}");
        }
    }

    #[test]
    fn serve_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["serve"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                scheme: SchemeName::Balanced,
                tasks: 2_000,
                epsilon: 0.5,
                proportion: 0.2,
                seed: 20_050_926,
                shards: 1,
                timeout: 8,
                retries: 3,
                port: None,
                clients: 0,
                stdio: false,
                streams: StreamMode::Single,
                io: IoMode::Auto,
                json: None,
                journal: None,
                sync: SyncPolicy::Batch,
                recover: false,
            }
        );
        let cmd = parse_args(&argv(&[
            "serve",
            "--tasks",
            "500",
            "--shards",
            "4",
            "--timeout",
            "100",
            "--retries",
            "0",
            "--port",
            "0",
            "--clients",
            "8",
            "--streams",
            "per-shard",
            "--io",
            "threads",
            "--json",
            "report.json",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                tasks,
                shards,
                timeout,
                retries,
                port,
                clients,
                stdio,
                streams,
                io,
                json,
                ..
            } => {
                assert_eq!(tasks, 500);
                assert_eq!(shards, 4);
                assert_eq!(timeout, 100);
                assert_eq!(retries, 0);
                assert_eq!(port, Some(0));
                assert_eq!(clients, 8);
                assert!(!stdio);
                assert_eq!(streams, StreamMode::PerShard);
                assert_eq!(io, IoMode::Threads);
                assert_eq!(json.as_deref(), Some("report.json"));
            }
            other => panic!("{other:?}"),
        }
        // --stdio is a boolean flag, like --soak.
        let cmd = parse_args(&argv(&["serve", "--stdio", "--seed", "7"])).unwrap();
        match cmd {
            Command::Serve { stdio, seed, .. } => {
                assert!(stdio);
                assert_eq!(seed, 7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_journal_flags_parse() {
        let cmd = parse_args(&argv(&[
            "serve",
            "--journal",
            "serve.journal",
            "--sync",
            "always",
            "--recover",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                journal,
                sync,
                recover,
                ..
            } => {
                assert_eq!(journal.as_deref(), Some("serve.journal"));
                assert_eq!(sync, SyncPolicy::Always);
                assert!(recover);
            }
            other => panic!("{other:?}"),
        }
        // --recover without --journal has nothing to replay.
        let e = parse_args(&argv(&["serve", "--recover"])).unwrap_err();
        assert!(matches!(&e, ArgError::BadValue { flag, .. } if flag == "--recover"));
        assert!(e.to_string().contains("--journal"), "{e}");
        // --sync takes one of the three policies.
        let e = parse_args(&argv(&["serve", "--sync", "fsync"])).unwrap_err();
        assert!(matches!(&e, ArgError::BadValue { flag, .. } if flag == "--sync"));
    }

    #[test]
    fn journal_inspect_requires_the_journal_flag() {
        let cmd = parse_args(&argv(&["journal-inspect", "--journal", "x.journal"])).unwrap();
        assert_eq!(
            cmd,
            Command::JournalInspect {
                journal: "x.journal".into()
            }
        );
        let e = parse_args(&argv(&["journal-inspect"])).unwrap_err();
        assert!(matches!(
            &e,
            ArgError::MissingFlag {
                flag: "--journal",
                ..
            }
        ));
        assert!(e.to_string().contains("--journal"), "{e}");
        let e = parse_args(&argv(&["journal-inspect", "--verbose", "1"])).unwrap_err();
        assert!(matches!(&e, ArgError::UnknownFlag { .. }));
    }

    #[test]
    fn serve_rejects_invalid_parameters_naming_the_flag() {
        // A store with no shards cannot hold tasks.
        let e = parse_args(&argv(&["serve", "--shards", "0"])).unwrap_err();
        assert!(matches!(&e, ArgError::BadValue { flag, .. } if flag == "--shards"));
        assert!(e.to_string().contains("--shards"), "{e}");
        // Ports live in 0..=65535; 0 is allowed (OS-assigned).
        let e = parse_args(&argv(&["serve", "--port", "70000"])).unwrap_err();
        assert!(matches!(&e, ArgError::BadValue { flag, .. } if flag == "--port"));
        assert!(e.to_string().contains("0..=65535"), "{e}");
        for flags in [
            ["--tasks", "0"],
            ["--timeout", "0"],
            ["--epsilon", "1.5"],
            ["--proportion", "-0.2"],
            ["--port", "seven"],
            ["--streams", "both"],
            ["--io", "uring"],
        ] {
            let e = parse_args(&argv(&["serve", flags[0], flags[1]])).unwrap_err();
            assert!(e.to_string().contains(flags[0]), "{e}");
        }
    }

    #[test]
    fn certify_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["certify"])).unwrap();
        assert_eq!(
            cmd,
            Command::Certify {
                tasks: 100_000,
                epsilon: 0.5,
                max_dim: 10,
            }
        );
        let cmd = parse_args(&argv(&["certify", "--max-dim", "26", "--tasks", "5000"])).unwrap();
        match cmd {
            Command::Certify { tasks, max_dim, .. } => {
                assert_eq!(tasks, 5000);
                assert_eq!(max_dim, 26);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_args(&argv(&["certify", "--epsilon", "2.0"])),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn bench_defaults_and_flags() {
        assert_eq!(
            parse_args(&argv(&["bench"])).unwrap(),
            Command::Bench {
                smoke: false,
                seed: 20_050_926,
                out: "BENCH_report.json".into(),
                baseline: None,
                threads: 0,
                chunk_size: 4,
                reps: None,
            }
        );
        let cmd = parse_args(&argv(&[
            "bench",
            "--smoke",
            "--seed",
            "7",
            "--out",
            "r.json",
            "--baseline",
            "BENCH_baseline.json",
            "--threads",
            "2",
            "--chunk-size",
            "8",
            "--reps",
            "3",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                smoke: true,
                seed: 7,
                out: "r.json".into(),
                baseline: Some("BENCH_baseline.json".into()),
                threads: 2,
                chunk_size: 8,
                reps: Some(3),
            }
        );
        assert!(matches!(
            parse_args(&argv(&["bench", "--iterations", "3"])),
            Err(ArgError::UnknownFlag { .. })
        ));
        // --reps 0 is rejected at parse time, naming the flag (exit 2).
        match parse_args(&argv(&["bench", "--reps", "0"])) {
            Err(ArgError::BadValue { flag, .. }) => assert_eq!(flag, "--reps"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sampler_flag_parses_and_rejects_unknown_modes() {
        let cmd = parse_args(&argv(&["simulate", "--tasks", "10", "--epsilon", "0.5"])).unwrap();
        match cmd {
            Command::Simulate { sampler, .. } => assert_eq!(sampler, SamplerMode::BitCompat),
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(&argv(&[
            "simulate",
            "--tasks",
            "10",
            "--epsilon",
            "0.5",
            "--sampler",
            "fast",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate { sampler, .. } => assert_eq!(sampler, SamplerMode::Fast),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv(&[
            "simulate",
            "--tasks",
            "10",
            "--epsilon",
            "0.5",
            "--sampler",
            "turbo",
        ])) {
            Err(ArgError::BadValue { flag, .. }) => assert_eq!(flag, "--sampler"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn help_topic() {
        assert_eq!(
            parse_args(&argv(&["help", "plan"])).unwrap(),
            Command::Help {
                topic: Some("plan".into())
            }
        );
        assert_eq!(
            parse_args(&argv(&["--help"])).unwrap(),
            Command::Help { topic: None }
        );
    }

    #[test]
    fn error_messages_read_well() {
        let e = ArgError::MissingFlag {
            flag: "--tasks",
            command: "plan",
        };
        assert!(e.to_string().contains("--tasks"));
        let e2 = ArgError::BadValue {
            flag: "--epsilon".into(),
            value: "2".into(),
            expected: "a number in (0, 1)",
        };
        assert!(e2.to_string().contains("(0, 1)"));
    }

    #[test]
    fn repro_full_parse() {
        let cmd = parse_args(&argv(&[
            "repro",
            "fig2_minimizing_table",
            "--seed",
            "7",
            "--trials-scale",
            "3",
            "--threads",
            "2",
            "--csv",
            "out.csv",
            "--json",
            "report.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Repro {
                exhibit: Some("fig2_minimizing_table".into()),
                list: false,
                all: false,
                json: Some("report.json".into()),
                ctx: redundancy_repro::ExhibitCtx {
                    seed: 7,
                    csv: Some("out.csv".into()),
                    trials_scale: 3,
                    threads: 2,
                },
            }
        );
    }

    #[test]
    fn repro_list_and_all_and_defaults() {
        assert_eq!(
            parse_args(&argv(&["repro", "--list"])).unwrap(),
            Command::Repro {
                exhibit: None,
                list: true,
                all: false,
                json: None,
                ctx: redundancy_repro::ExhibitCtx::default(),
            }
        );
        let cmd = parse_args(&argv(&["repro", "--all", "--json", "reports"])).unwrap();
        assert_eq!(
            cmd,
            Command::Repro {
                exhibit: None,
                list: false,
                all: true,
                json: Some("reports".into()),
                ctx: redundancy_repro::ExhibitCtx::default(),
            }
        );
        // The shared seed default is the conference date, same as the
        // legacy binaries.
        match cmd {
            Command::Repro { ctx, .. } => assert_eq!(ctx.seed, 20_050_926),
            _ => unreachable!(),
        }
    }

    #[test]
    fn repro_validates_the_shared_flags_strictly() {
        // Zero --trials-scale: rejected with the flag named, matching the
        // --chunk-size / --threads conventions.
        let e = parse_args(&argv(&["repro", "theory_checks", "--trials-scale", "0"])).unwrap_err();
        assert!(matches!(&e, ArgError::BadValue { flag, .. } if flag == "--trials-scale"));
        assert!(e.to_string().contains("--trials-scale"), "{e}");
        // Unknown flags are a strict error through the subcommand.
        assert_eq!(
            parse_args(&argv(&["repro", "--bogus", "1"])).unwrap_err(),
            ArgError::UnknownFlag {
                flag: "--bogus".into(),
                command: "repro",
            }
        );
        // A second positional is rejected rather than silently dropped.
        let e = parse_args(&argv(&["repro", "fig1_detection_vs_p", "extra"])).unwrap_err();
        assert!(matches!(e, ArgError::BadValue { .. }));
        // Flags missing their value are reported.
        assert_eq!(
            parse_args(&argv(&["repro", "--json"])).unwrap_err(),
            ArgError::MissingValue("--json".into())
        );
        assert_eq!(
            parse_args(&argv(&["repro", "--seed"])).unwrap_err(),
            ArgError::MissingValue("--seed".into())
        );
    }
}
