//! The `redundancy` binary: thin shell around [`redundancy_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match redundancy_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
