//! The `redundancy bench` subcommand: pinned performance fixtures with a
//! machine-readable report and a regression gate.
//!
//! Unlike the criterion benches (which explore), this command *pins*: a
//! fixed set of fixtures — the batched campaign kernel against its frozen
//! reference, the cached samplers against the per-draw walks, `run_trials`
//! thread scaling, the churn soak, the live-serve protocol loop, and an LP
//! sweep — each run `reps` times with the median wall time reported.  The result is written as `redundancy-bench/v1`
//! JSON so CI can archive it and compare runs; `--baseline` fails the
//! command (exit 2) when any fixture's median regresses beyond 2x.
//!
//! Every fixture returns a checksum folded from its outputs, both to keep
//! the optimizer honest and to make silent semantic drift visible when two
//! reports disagree on anything but time.

use crate::commands::CliError;
use redundancy_core::{AssignmentMinimizing, RealizedPlan};
use redundancy_json::{num_u64, obj, Json};
use redundancy_sim::engine::reference;
use redundancy_sim::outcome::CampaignOutcome;
use redundancy_sim::task::expand_plan;
use redundancy_sim::{
    run_campaign_with_scratch, AdversaryModel, CampaignAccumulator, CampaignConfig,
    CampaignScratch, CheatStrategy, ConcurrentStore, FaultModel, ServeConfig, ServeSession,
    ServeStats,
};
use redundancy_stats::table::{fnum, inum, Table};
use redundancy_stats::{
    parallel_sweep, run_trials, sample_binomial, BinomialCache, DeterministicRng, SamplerMode,
    TrialConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Regression gate: a fixture fails when its median exceeds this multiple
/// of the baseline median.  Generous on purpose — CI machines are noisy,
/// and the gate is for order-of-magnitude regressions, not jitter.
const GATE_FACTOR: f64 = 2.0;

/// One measured fixture in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable fixture name (the regression gate joins on it).
    pub name: String,
    /// Repetitions measured.
    pub reps: u64,
    /// Median wall time of one repetition, in nanoseconds.
    pub median_ns: u64,
    /// Tasks (or draws / solves) processed per second at the median.
    pub tasks_per_sec: f64,
    /// Assignments processed per second at the median (0 where the
    /// fixture has no assignment notion).
    pub assignments_per_sec: f64,
    /// Wrapping fold of the fixture's outputs — equal across runs on the
    /// same seed, so reports also double as a determinism check.
    pub checksum: u64,
    /// Per-(shards, clients) ladder points for fixtures that sweep a
    /// concurrency grid (empty for every other fixture).
    pub clients_ladder: Vec<LadderPoint>,
}

/// One (shards, clients) point of a concurrency-ladder fixture.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderPoint {
    /// Store shard count at this point.
    pub shards: u64,
    /// Concurrent client threads at this point.
    pub clients: u64,
    /// Median wall time of one drain, in nanoseconds.
    pub median_ns: u64,
    /// Issued assignments per second at the median.
    pub assignments_per_sec: f64,
    /// Drained-state fingerprint — identical at every client count of a
    /// shard row (the per-shard-stream determinism contract), and across
    /// `--threads` caps.
    pub checksum: u64,
}

/// Fixture sizes for one mode.
struct Sizes {
    campaign_tasks: u64,
    campaign_reps: u64,
    sampler_draws: u64,
    sampler_reps: u64,
    trials_tasks: u64,
    trials_campaigns: u64,
    trials_reps: u64,
    sweep_points: usize,
    sweep_campaigns: u64,
    sweep_reps: u64,
    lp_max_dim: usize,
    lp_reps: u64,
    churn_workers: u64,
    churn_horizon: u64,
    churn_tasks: u64,
    churn_reps: u64,
    serve_tasks: u64,
    serve_reps: u64,
}

impl Sizes {
    fn for_mode(smoke: bool) -> Sizes {
        if smoke {
            Sizes {
                campaign_tasks: 2_000,
                campaign_reps: 11,
                sampler_draws: 20_000,
                sampler_reps: 11,
                trials_tasks: 500,
                trials_campaigns: 16,
                trials_reps: 5,
                sweep_points: 8,
                sweep_campaigns: 4,
                sweep_reps: 5,
                lp_max_dim: 8,
                lp_reps: 5,
                churn_workers: 2_000,
                churn_horizon: 40_000,
                churn_tasks: 200,
                churn_reps: 3,
                serve_tasks: 2_000,
                serve_reps: 5,
            }
        } else {
            Sizes {
                campaign_tasks: 10_000,
                campaign_reps: 51,
                sampler_draws: 200_000,
                sampler_reps: 21,
                trials_tasks: 2_000,
                trials_campaigns: 64,
                trials_reps: 11,
                sweep_points: 16,
                sweep_campaigns: 8,
                sweep_reps: 7,
                lp_max_dim: 16,
                lp_reps: 11,
                // The headline churn demonstration: a 100k-node population
                // stepping through ≥10M discrete events per repetition.
                churn_workers: 100_000,
                churn_horizon: 5_600_000,
                churn_tasks: 500,
                churn_reps: 3,
                serve_tasks: 20_000,
                serve_reps: 5,
            }
        }
    }

    /// Force every fixture to `reps` repetitions (the `--reps` override);
    /// sizes are untouched, so medians stay comparable to un-overridden
    /// runs of the same mode — they are just noisier.
    fn override_reps(&mut self, reps: u64) {
        self.campaign_reps = reps;
        self.sampler_reps = reps;
        self.trials_reps = reps;
        self.sweep_reps = reps;
        self.lp_reps = reps;
        self.churn_reps = reps;
        self.serve_reps = reps;
    }
}

/// Run `f` `reps` times; return the median wall time and the folded
/// checksum of its outputs.
fn measure<F: FnMut() -> u64>(reps: u64, mut f: F) -> (u64, u64) {
    let mut times = Vec::with_capacity(reps as usize);
    let mut checksum = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        times.push(start.elapsed().as_nanos() as u64);
        checksum = checksum.wrapping_add(out);
    }
    times.sort_unstable();
    (times[times.len() / 2], checksum)
}

fn record(
    name: &str,
    reps: u64,
    tasks_per_iter: u64,
    assignments_per_iter: u64,
    measured: (u64, u64),
) -> BenchRecord {
    let (median_ns, checksum) = measured;
    let per_sec = |elems: u64| {
        if median_ns == 0 {
            0.0
        } else {
            elems as f64 * 1e9 / median_ns as f64
        }
    };
    BenchRecord {
        name: name.into(),
        reps,
        median_ns,
        tasks_per_sec: per_sec(tasks_per_iter),
        assignments_per_sec: per_sec(assignments_per_iter),
        checksum,
        clients_ladder: Vec::new(),
    }
}

/// The Fig. 1 empirical-detection setting: 10% assignment-fraction
/// adversary cheating on everything.
fn fig1_config() -> CampaignConfig {
    CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.1 },
        CheatStrategy::Always,
    )
}

/// The thread ladder the scaling fixtures exercise, capped by `--threads`
/// (0 keeps the full ladder; 1 remains so the speedup baseline exists).
fn thread_ladder(cap: usize) -> Vec<usize> {
    [1usize, 2, 4]
        .into_iter()
        .filter(|&t| cap == 0 || t <= cap)
        .collect()
}

/// Run every fixture and collect the report rows.
fn run_fixtures(
    smoke: bool,
    seed: u64,
    threads_cap: usize,
    chunk_size: u64,
    reps_override: Option<u64>,
) -> Result<Vec<BenchRecord>, CliError> {
    let mut sizes = Sizes::for_mode(smoke);
    if let Some(reps) = reps_override {
        sizes.override_reps(reps);
    }
    let cfg = fig1_config();
    let mut records = Vec::new();

    // Campaign kernel: the batched engine and its frozen per-task
    // reference over the same plan — the pair the ≥2x claim rests on.
    let plan = RealizedPlan::balanced(sizes.campaign_tasks, 0.6).map_err(CliError::Core)?;
    let tasks = expand_plan(&plan);
    let assignments = plan.total_assignments();
    {
        let mut rng = DeterministicRng::new(seed);
        let mut scratch = CampaignScratch::new();
        records.push(record(
            "campaign_batched",
            sizes.campaign_reps,
            sizes.campaign_tasks,
            assignments,
            measure(sizes.campaign_reps, || {
                let mut out = CampaignOutcome::default();
                run_campaign_with_scratch(&tasks, &cfg, &mut rng, &mut out, &mut scratch);
                out.total_detected()
            }),
        ));
    }
    // The same campaigns drawn through the fast-mode alias tables with the
    // SoA tally: not RNG-stream-compatible with campaign_batched, but its
    // checksum is the fast path's pinned determinism fingerprint — CI
    // asserts it is identical across runs and thread counts.
    {
        let mut rng = DeterministicRng::new(seed);
        let mut scratch = CampaignScratch::new().with_sampler_mode(SamplerMode::Fast);
        records.push(record(
            "campaign_fast",
            sizes.campaign_reps,
            sizes.campaign_tasks,
            assignments,
            measure(sizes.campaign_reps, || {
                let mut out = CampaignOutcome::default();
                run_campaign_with_scratch(&tasks, &cfg, &mut rng, &mut out, &mut scratch);
                out.total_detected()
            }),
        ));
    }
    {
        let mut rng = DeterministicRng::new(seed);
        records.push(record(
            "campaign_reference",
            sizes.campaign_reps,
            sizes.campaign_tasks,
            assignments,
            measure(sizes.campaign_reps, || {
                let mut out = CampaignOutcome::default();
                reference::run_campaign(&tasks, &cfg, &mut rng, &mut out);
                out.total_detected()
            }),
        ));
    }

    // Sampler microbenches: the cached inversion table against the
    // per-draw CDF walk on the hot (n, p) of the Fig. 1 plan head.
    {
        let mut rng = DeterministicRng::new(seed);
        let mut cache = BinomialCache::default();
        let id = cache.prepare(12, 0.1);
        records.push(record(
            "sampler_binomial_cached",
            sizes.sampler_reps,
            sizes.sampler_draws,
            0,
            measure(sizes.sampler_reps, || {
                let mut acc = 0u64;
                for _ in 0..sizes.sampler_draws {
                    acc = acc.wrapping_add(cache.sample_prepared(id, &mut rng));
                }
                acc
            }),
        ));
    }
    {
        let mut rng = DeterministicRng::new(seed);
        records.push(record(
            "sampler_binomial_walk",
            sizes.sampler_reps,
            sizes.sampler_draws,
            0,
            measure(sizes.sampler_reps, || {
                let mut acc = 0u64;
                for _ in 0..sizes.sampler_draws {
                    acc = acc.wrapping_add(sample_binomial(&mut rng, 12, 0.1));
                }
                acc
            }),
        ));
    }
    // The O(1) alias table on the same (n, p), drawn through the hoisted
    // handle exactly like the fast campaign kernel's inner loop.
    {
        let mut rng = DeterministicRng::new(seed);
        let mut cache = BinomialCache::default();
        let id = cache.prepare_mode(12, 0.1, SamplerMode::Fast);
        let table = cache
            .prepared(id)
            .as_alias()
            .expect("(12, 0.1) fits an alias table");
        records.push(record(
            "sampler_alias",
            sizes.sampler_reps,
            sizes.sampler_draws,
            0,
            measure(sizes.sampler_reps, || {
                let mut acc = 0u64;
                for _ in 0..sizes.sampler_draws {
                    acc = acc.wrapping_add(table.sample(&mut rng));
                }
                acc
            }),
        ));
    }

    // Monte-Carlo driver scaling: identical work at 1, 2, and 4 threads
    // (the outcome is thread-count invariant, so the checksums agree).
    let trials_plan = RealizedPlan::balanced(sizes.trials_tasks, 0.6).map_err(CliError::Core)?;
    let trials_tasks = expand_plan(&trials_plan);
    let trials_assignments = trials_plan.total_assignments() * sizes.trials_campaigns;
    for threads in thread_ladder(threads_cap) {
        let trial_cfg = TrialConfig {
            trials: sizes.trials_campaigns,
            chunk_size,
            threads,
            seed,
            sampler: Default::default(),
        };
        records.push(record(
            &format!("run_trials_t{threads}"),
            sizes.trials_reps,
            sizes.trials_tasks * sizes.trials_campaigns,
            trials_assignments,
            measure(sizes.trials_reps, || {
                let acc: CampaignAccumulator = run_trials(
                    &trial_cfg,
                    |rng, _i, acc: &mut CampaignAccumulator| {
                        run_campaign_with_scratch(
                            &trials_tasks,
                            &cfg,
                            rng,
                            &mut acc.outcome,
                            &mut acc.scratch,
                        )
                    },
                    |a, b| a.merge(b),
                );
                acc.outcome.total_detected()
            }),
        ));
    }

    // Sweep driver: the same grid of independent experiments evaluated on
    // a 1-wide and a 4-wide pool (the exhibits' outer-grid pattern).  Each
    // grid point runs its campaigns single-threaded, so the checksums of
    // the two fixtures are identical by construction.
    {
        let grid: Vec<u64> = (0..sizes.sweep_points as u64).collect();
        let sweep_tasks = sizes.trials_tasks * sizes.sweep_campaigns * sizes.sweep_points as u64;
        let sweep_assignments =
            trials_plan.total_assignments() * sizes.sweep_campaigns * sizes.sweep_points as u64;
        for width in thread_ladder(threads_cap) {
            if width != 1 && width != 4 {
                continue;
            }
            let name = if width == 1 {
                "sweep_serial"
            } else {
                "sweep_parallel"
            };
            records.push(record(
                name,
                sizes.sweep_reps,
                sweep_tasks,
                sweep_assignments,
                measure(sizes.sweep_reps, || {
                    let outs = parallel_sweep(width, &grid, |idx, _point| {
                        let trial_cfg = TrialConfig {
                            trials: sizes.sweep_campaigns,
                            chunk_size,
                            threads: 1,
                            seed: seed.wrapping_add(idx as u64),
                            sampler: Default::default(),
                        };
                        let acc: CampaignAccumulator = run_trials(
                            &trial_cfg,
                            |rng, _i, acc: &mut CampaignAccumulator| {
                                run_campaign_with_scratch(
                                    &trials_tasks,
                                    &cfg,
                                    rng,
                                    &mut acc.outcome,
                                    &mut acc.scratch,
                                )
                            },
                            |a, b| a.merge(b),
                        );
                        acc.outcome.total_detected()
                    });
                    outs.into_iter().fold(0u64, u64::wrapping_add)
                }),
            ));
        }
    }

    // Churn engine: one long discrete-event soak per repetition (full mode
    // is the 100k-node / 10M-event demonstration).  A pre-run learns the
    // event count so the throughput column reports events per second; the
    // checksum folds every outcome counter, so two same-seed reports
    // double as the soak determinism check.
    {
        let churn = redundancy_sim::ChurnModel::soak(sizes.churn_workers, sizes.churn_horizon);
        let probe = redundancy_sim::churn_soak(&churn, sizes.churn_tasks, seed);
        records.push(record(
            "churn_step",
            sizes.churn_reps,
            probe.events,
            probe.reassignments,
            measure(sizes.churn_reps, || {
                let report = redundancy_sim::churn_soak(&churn, sizes.churn_tasks, seed);
                debug_assert_eq!(report, probe);
                report.checksum
            }),
        ));
    }

    // Live supervisor: drain a serve session through the full framed
    // request→return protocol loop (`ServeSession::handle` parses every
    // request and formats every reply, exactly like `redundancy serve`).
    // The throughput column is sustained assignments per second; a probe
    // run pins the drained stats so every measured repetition is checked
    // bit-identical in debug builds.
    {
        let serve_plan = RealizedPlan::balanced(sizes.serve_tasks, 0.6).map_err(CliError::Core)?;
        let serve_tasks = expand_plan(&serve_plan);
        let drain = |tasks: &[redundancy_sim::task::TaskSpec]| -> ServeStats {
            let mut session = ServeSession::new(tasks, &cfg, &ServeConfig::new(2), seed)
                .expect("pinned serve fixture is valid");
            // One request buffer on the client side plus the session's own
            // reply buffer: the steady-state drain allocates nothing per
            // frame, so the fixture measures the protocol loop itself.
            let mut req = String::new();
            loop {
                let (reply, _) = session.handle_buffered("request-work");
                if reply == "drained" {
                    break;
                }
                let mut parts = reply.split_whitespace();
                let (Some("work"), Some(task), Some(copy)) = (
                    parts.next(),
                    parts.next().and_then(|t| t.parse::<u64>().ok()),
                    parts.next().and_then(|c| c.parse::<u32>().ok()),
                ) else {
                    unreachable!("single-client drain only sees work frames: {reply}");
                };
                req.clear();
                let _ = write!(req, "return-result {task} {copy}");
                let (ack, _) = session.handle_buffered(&req);
                debug_assert!(ack.starts_with("ok"), "{ack}");
            }
            session.store.stats()
        };
        let probe = drain(&serve_tasks);
        records.push(record(
            "serve_throughput",
            sizes.serve_reps,
            probe.total_tasks,
            probe.issued,
            measure(sizes.serve_reps, || {
                let stats = drain(&serve_tasks);
                debug_assert_eq!(stats, probe);
                stats.checksum()
            }),
        ));

        // The same framed drain with every state change appended to an
        // on-disk journal (`--sync off`, so the fixture measures record
        // encoding and buffered writes, not fsync).  The top-level
        // `journal_overhead` field divides this median by the bare loop
        // above; the acceptance bar keeps it at or under 2x.
        let journal_path =
            std::env::temp_dir().join(format!("bench_serve_journal_{}.bin", std::process::id()));
        let drain_journaled = || -> ServeStats {
            use redundancy_sim::serve::{
                handle_request, workload_fingerprint, JournalWriter, JournaledStore, Record,
                SessionHeader, StoreEnum, StreamMode, WorkStore as _,
            };
            let file = std::fs::File::create(&journal_path).expect("temp journal path is writable");
            let mut writer = JournalWriter::new(file, redundancy_sim::serve::SyncPolicy::Off);
            writer
                .append(&Record::Header(SessionHeader {
                    seed,
                    shards: 2,
                    mode: StreamMode::Single,
                    timeout: FaultModel::none().timeout,
                    max_retries: FaultModel::none().max_retries,
                    fingerprint: workload_fingerprint(&serve_tasks, &cfg),
                    total_tasks: serve_tasks.len() as u64,
                }))
                .expect("journal header append");
            let store = StoreEnum::new(
                &serve_tasks,
                &cfg,
                &ServeConfig::new(2),
                seed,
                StreamMode::Single,
            )
            .expect("pinned serve fixture is valid");
            let mut session = JournaledStore::new(store, Some(writer));
            let mut req = String::new();
            let mut reply = String::new();
            loop {
                handle_request(&mut session, "request-work", &mut reply);
                if reply == "drained" {
                    break;
                }
                let mut parts = reply.split_whitespace();
                let (Some("work"), Some(task), Some(copy)) = (
                    parts.next(),
                    parts.next().and_then(|t| t.parse::<u64>().ok()),
                    parts.next().and_then(|c| c.parse::<u32>().ok()),
                ) else {
                    unreachable!("single-client drain only sees work frames: {reply}");
                };
                req.clear();
                let _ = write!(req, "return-result {task} {copy}");
                handle_request(&mut session, &req, &mut reply);
                debug_assert!(reply.starts_with("ok"), "{reply}");
            }
            let stats = session.stats();
            session.finish().expect("temp journal append cannot fail");
            stats
        };
        let journaled_probe = drain_journaled();
        debug_assert_eq!(
            journaled_probe, probe,
            "journaling must not change the drain"
        );
        records.push(record(
            "serve_journal",
            sizes.serve_reps,
            journaled_probe.total_tasks,
            journaled_probe.issued,
            measure(sizes.serve_reps, || {
                let stats = drain_journaled();
                debug_assert_eq!(stats, journaled_probe);
                stats.checksum()
            }),
        ));
        std::fs::remove_file(&journal_path).ok();
    }

    // Concurrent supervisor: client threads hammer the per-shard-stream
    // ConcurrentStore through the same framed request→return text, one
    // ladder point per (shards, clients) pair.  At a fixed shard count the
    // drained state is a pure function of the seed, so every point of a
    // shard row must report the same checksum — the ladder doubles as the
    // concurrency determinism check.  It deliberately ignores the
    // --threads cap: t1 and t4 reports must agree on every checksum.
    {
        let serve_plan = RealizedPlan::balanced(sizes.serve_tasks, 0.6).map_err(CliError::Core)?;
        let serve_tasks = expand_plan(&serve_plan);
        let drain_concurrent = |shards: usize, clients: usize| -> (ServeStats, u64) {
            let patient = ServeConfig {
                faults: FaultModel {
                    timeout: 1 << 40,
                    ..FaultModel::none()
                },
                ..ServeConfig::new(shards)
            };
            let store = ConcurrentStore::new(&serve_tasks, &cfg, &patient, seed)
                .expect("pinned serve fixture is valid");
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    scope.spawn(|| {
                        let mut req = String::new();
                        let mut reply = String::new();
                        loop {
                            store.handle_into("request-work", &mut reply);
                            if reply == "drained" {
                                break;
                            }
                            if reply == "idle" {
                                std::thread::yield_now();
                                continue;
                            }
                            let mut parts = reply.split_whitespace();
                            let (Some("work"), Some(task), Some(copy)) = (
                                parts.next(),
                                parts.next().and_then(|t| t.parse::<u64>().ok()),
                                parts.next().and_then(|c| c.parse::<u32>().ok()),
                            ) else {
                                unreachable!("patient drain only sees work frames: {reply}");
                            };
                            req.clear();
                            let _ = write!(req, "return-result {task} {copy}");
                            store.handle_into(&req, &mut reply);
                            debug_assert!(reply.starts_with("ok"), "{reply}");
                        }
                    });
                }
            });
            let stats = store.stats();
            let fingerprint = stats
                .checksum()
                .rotate_left(17)
                .wrapping_add(store.stream_checksum());
            (stats, fingerprint)
        };
        let mut ladder = Vec::new();
        let mut fixture_checksum = 0u64;
        let mut top_stats: Option<ServeStats> = None;
        for &shards in &[1usize, 2, 4] {
            for &clients in &[1usize, 2, 8] {
                let (probe_stats, probe_sum) = drain_concurrent(shards, clients);
                let (median_ns, _) = measure(sizes.serve_reps, || {
                    let (stats, sum) = drain_concurrent(shards, clients);
                    debug_assert_eq!(stats, probe_stats);
                    debug_assert_eq!(sum, probe_sum);
                    sum
                });
                let assignments_per_sec = if median_ns == 0 {
                    0.0
                } else {
                    probe_stats.issued as f64 * 1e9 / median_ns as f64
                };
                fixture_checksum = fixture_checksum.rotate_left(7).wrapping_add(probe_sum);
                ladder.push(LadderPoint {
                    shards: shards as u64,
                    clients: clients as u64,
                    median_ns,
                    assignments_per_sec,
                    checksum: probe_sum,
                });
                top_stats = Some(probe_stats);
            }
        }
        // The headline row times the most-parallel point (4 shards, 8
        // clients); its checksum folds every ladder point so any drift
        // anywhere in the grid changes the fixture fingerprint.
        let top = ladder.last().expect("ladder is non-empty");
        let stats = top_stats.expect("ladder is non-empty");
        let mut rec = record(
            "serve_concurrent",
            sizes.serve_reps,
            stats.total_tasks,
            stats.issued,
            (top.median_ns, fixture_checksum),
        );
        rec.clients_ladder = ladder;
        records.push(rec);
    }

    // LP sweep: solve every S_m up to the mode's dimension cap.
    {
        let max_dim = sizes.lp_max_dim;
        records.push(record(
            "lp_sweep",
            sizes.lp_reps,
            (max_dim - 1) as u64,
            0,
            measure(sizes.lp_reps, || {
                let mut acc = 0u64;
                for dim in 2..=max_dim {
                    let sol = AssignmentMinimizing::solve(100_000, 0.5, dim)
                        .expect("pinned S_m fixture solves");
                    acc = acc.wrapping_add(sol.objective().to_bits());
                }
                acc
            }),
        ));
    }

    Ok(records)
}

/// Parallel efficiency of the `run_trials_t{n}` fixture against the
/// single-thread baseline (>1 means the extra threads helped).  `None`
/// when either side is missing (capped ladder) or has a zero median.
fn speedup(records: &[BenchRecord], threads: usize) -> Option<f64> {
    let median = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .filter(|&ns| ns > 0)
    };
    let t1 = median("run_trials_t1")?;
    let tn = median(&format!("run_trials_t{threads}"))?;
    Some(t1 as f64 / tn as f64)
}

/// Journal write overhead: the journaled serve drain's median over the
/// bare protocol loop's (1.0 = free).  The acceptance bar for the serve
/// journal keeps this at or under 2x with `--sync off`.
fn journal_overhead(records: &[BenchRecord]) -> Option<f64> {
    let median = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .filter(|&ns| ns > 0)
    };
    Some(median("serve_journal")? as f64 / median("serve_throughput")? as f64)
}

fn report_json(smoke: bool, seed: u64, records: &[BenchRecord]) -> Json {
    let mut fields = vec![
        ("schema", Json::Str("redundancy-bench/v1".into())),
        ("smoke", Json::Bool(smoke)),
        ("seed", num_u64(seed)),
    ];
    if let Some(s2) = speedup(records, 2) {
        fields.push(("speedup_t2", Json::Num(s2)));
    }
    if let Some(s4) = speedup(records, 4) {
        fields.push(("speedup_t4", Json::Num(s4)));
    }
    if let Some(j) = journal_overhead(records) {
        fields.push(("journal_overhead", Json::Num(j)));
    }
    fields.push((
        "benches",
        Json::Arr(
            records
                .iter()
                .map(|r| {
                    let mut members = vec![
                        ("name", Json::Str(r.name.clone())),
                        ("reps", num_u64(r.reps)),
                        ("median_ns", num_u64(r.median_ns)),
                        ("tasks_per_sec", Json::Num(r.tasks_per_sec)),
                        ("assignments_per_sec", Json::Num(r.assignments_per_sec)),
                        // Hex string: JSON numbers are f64 and cannot
                        // hold a full u64 exactly.
                        ("checksum", Json::Str(format!("{:016x}", r.checksum))),
                    ];
                    if !r.clients_ladder.is_empty() {
                        members.push((
                            "clients_ladder",
                            Json::Arr(
                                r.clients_ladder
                                    .iter()
                                    .map(|p| {
                                        obj(vec![
                                            ("shards", num_u64(p.shards)),
                                            ("clients", num_u64(p.clients)),
                                            ("median_ns", num_u64(p.median_ns)),
                                            (
                                                "assignments_per_sec",
                                                Json::Num(p.assignments_per_sec),
                                            ),
                                            ("checksum", Json::Str(format!("{:016x}", p.checksum))),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                    obj(members)
                })
                .collect(),
        ),
    ));
    obj(fields)
}

/// Compare a fresh report against a baseline document, returning the list
/// of fixtures whose median regressed beyond [`GATE_FACTOR`].
///
/// Fixtures present on only one side are ignored (benches may be added or
/// retired), but a smoke report can only be gated against a smoke
/// baseline — the sizes differ, so cross-mode medians are meaningless.
fn regressions(
    records: &[BenchRecord],
    smoke: bool,
    baseline: &Json,
) -> Result<Vec<String>, CliError> {
    let schema = baseline
        .field_str("schema")
        .map_err(|e| CliError::Invalid(format!("baseline: {e}")))?;
    if schema != "redundancy-bench/v1" {
        return Err(CliError::Invalid(format!(
            "baseline: unsupported schema `{schema}`"
        )));
    }
    let base_smoke = baseline
        .field("smoke")
        .ok()
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if base_smoke != smoke {
        return Err(CliError::Invalid(format!(
            "baseline was recorded in {} mode but this run is {} mode; \
             regenerate the baseline with matching flags",
            if base_smoke { "smoke" } else { "full" },
            if smoke { "smoke" } else { "full" },
        )));
    }
    let benches = baseline
        .field_arr("benches")
        .map_err(|e| CliError::Invalid(format!("baseline: {e}")))?;
    let mut failures = Vec::new();
    for entry in benches {
        let name = entry
            .field_str("name")
            .map_err(|e| CliError::Invalid(format!("baseline: {e}")))?;
        let base_ns = entry
            .field_u64("median_ns")
            .map_err(|e| CliError::Invalid(format!("baseline: {e}")))?;
        let Some(fresh) = records.iter().find(|r| r.name == name) else {
            continue;
        };
        if base_ns > 0 && fresh.median_ns as f64 > GATE_FACTOR * base_ns as f64 {
            failures.push(format!(
                "{name}: {} ns/iter vs baseline {} ns/iter ({:.2}x > {GATE_FACTOR}x)",
                inum(fresh.median_ns),
                inum(base_ns),
                fresh.median_ns as f64 / base_ns as f64
            ));
        }
    }
    Ok(failures)
}

/// Run the benchmark suite, write the JSON report, and gate against the
/// baseline if one was given.
pub fn bench(
    smoke: bool,
    seed: u64,
    out: &str,
    baseline: Option<&str>,
    threads: usize,
    chunk_size: u64,
    reps: Option<u64>,
) -> Result<String, CliError> {
    let records = run_fixtures(smoke, seed, threads, chunk_size, reps)?;
    let body = redundancy_json::to_string_pretty(&report_json(smoke, seed, &records));
    std::fs::write(out, &body).map_err(|e| CliError::Io(e.to_string()))?;

    let mut text = String::new();
    let _ = writeln!(
        text,
        "bench: {} mode, seed {seed}",
        if smoke { "smoke" } else { "full" }
    );
    let mut table = Table::new(&["fixture", "reps", "median ns/iter", "tasks/s", "assign/s"]);
    table.numeric();
    for r in &records {
        table.row(&[
            &r.name,
            &r.reps.to_string(),
            &inum(r.median_ns),
            &fnum(r.tasks_per_sec / 1e6, 1),
            &fnum(r.assignments_per_sec / 1e6, 1),
        ]);
    }
    text.push_str(&table.render());
    let _ = writeln!(text, "(throughput columns are in millions per second)");
    if let (Some(s2), Some(s4)) = (speedup(&records, 2), speedup(&records, 4)) {
        let _ = writeln!(
            text,
            "thread scaling: speedup_t2 {} / speedup_t4 {} vs 1 thread",
            fnum(s2, 2),
            fnum(s4, 2)
        );
    }
    if let Some(j) = journal_overhead(&records) {
        let _ = writeln!(
            text,
            "journal overhead: {}x the bare serve loop (sync off)",
            fnum(j, 2)
        );
    }
    let _ = writeln!(text, "[report written to {out}]");

    if let Some(path) = baseline {
        let doc = std::fs::read_to_string(path).map_err(|e| CliError::Io(e.to_string()))?;
        let parsed = redundancy_json::parse(&doc)
            .map_err(|e| CliError::Invalid(format!("baseline `{path}`: {e}")))?;
        let failures = regressions(&records, smoke, &parsed)?;
        if failures.is_empty() {
            let _ = writeln!(
                text,
                "baseline gate: ok (no fixture beyond {GATE_FACTOR}x of {path})"
            );
        } else {
            return Err(CliError::Invalid(format!(
                "benchmark regression vs {path}:\n  {}",
                failures.join("\n  ")
            )));
        }
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_records() -> Vec<BenchRecord> {
        vec![BenchRecord {
            name: "campaign_batched".into(),
            reps: 3,
            median_ns: 1_000,
            tasks_per_sec: 1e6,
            assignments_per_sec: 2e6,
            checksum: 42,
            clients_ladder: Vec::new(),
        }]
    }

    #[test]
    fn report_schema_fields() {
        let json = report_json(true, 7, &tiny_records());
        assert_eq!(json.field_str("schema").unwrap(), "redundancy-bench/v1");
        assert_eq!(json.field("smoke").unwrap().as_bool(), Some(true));
        assert_eq!(json.field_u64("seed").unwrap(), 7);
        let benches = json.field_arr("benches").unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].field_str("name").unwrap(), "campaign_batched");
        assert_eq!(benches[0].field_u64("median_ns").unwrap(), 1_000);
        // The document round-trips through the parser.
        let text = redundancy_json::to_string_pretty(&json);
        assert_eq!(redundancy_json::parse(&text).unwrap(), json);
    }

    #[test]
    fn gate_passes_within_factor_and_fails_beyond() {
        let records = tiny_records();
        let fine = report_json(
            true,
            7,
            &[BenchRecord {
                median_ns: 600,
                ..records[0].clone()
            }],
        );
        assert!(regressions(&records, true, &fine).unwrap().is_empty());
        let regressed = report_json(
            true,
            7,
            &[BenchRecord {
                median_ns: 400,
                ..records[0].clone()
            }],
        );
        let failures = regressions(&records, true, &regressed).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("campaign_batched"), "{failures:?}");
    }

    #[test]
    fn gate_ignores_unmatched_fixtures() {
        let baseline = report_json(
            true,
            7,
            &[BenchRecord {
                name: "retired_fixture".into(),
                reps: 3,
                median_ns: 1,
                tasks_per_sec: 0.0,
                assignments_per_sec: 0.0,
                checksum: 0,
                clients_ladder: Vec::new(),
            }],
        );
        assert!(regressions(&tiny_records(), true, &baseline)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn gate_refuses_mode_mismatch_and_bad_schema() {
        let records = tiny_records();
        let full_baseline = report_json(false, 7, &records);
        let err = regressions(&records, true, &full_baseline).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("smoke")),
            "{err:?}"
        );
        let bad = obj(vec![("schema", Json::Str("other/v9".into()))]);
        assert!(regressions(&records, true, &bad).is_err());
    }

    #[test]
    fn measure_reports_median_and_checksum() {
        let mut calls = 0u64;
        let (median, checksum) = measure(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(checksum, 1 + 2 + 3 + 4 + 5);
        // Median of five timings exists even if the clock is coarse.
        let _ = median;
    }

    #[test]
    fn smoke_bench_writes_valid_report() {
        let path = std::env::temp_dir().join("cli_bench_smoke_test.json");
        let p = path.to_string_lossy().into_owned();
        let text = bench(true, 7, &p, None, 0, 4, None).unwrap();
        assert!(text.contains("campaign_batched"), "{text}");
        assert!(text.contains("report written"), "{text}");
        assert!(text.contains("thread scaling: speedup_t2"), "{text}");
        let doc = std::fs::read_to_string(&path).unwrap();
        let json = redundancy_json::parse(&doc).unwrap();
        assert_eq!(json.field_str("schema").unwrap(), "redundancy-bench/v1");
        assert!(json.field_f64("speedup_t2").unwrap() > 0.0);
        assert!(json.field_f64("speedup_t4").unwrap() > 0.0);
        let benches = json.field_arr("benches").unwrap();
        let names: Vec<&str> = benches
            .iter()
            .map(|b| b.field_str("name").unwrap())
            .collect();
        for expected in [
            "campaign_batched",
            "campaign_fast",
            "campaign_reference",
            "sampler_binomial_cached",
            "sampler_binomial_walk",
            "sampler_alias",
            "run_trials_t1",
            "run_trials_t2",
            "run_trials_t4",
            "sweep_serial",
            "sweep_parallel",
            "churn_step",
            "serve_throughput",
            "serve_journal",
            "serve_concurrent",
            "lp_sweep",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert!(json.field_f64("journal_overhead").unwrap() > 0.0);
        // The concurrency ladder covers the full (shards, clients) grid,
        // and every client count of a shard row reports the same drained
        // fingerprint — the per-shard-stream determinism contract.
        let ladder = benches
            .iter()
            .find(|b| b.field_str("name").unwrap() == "serve_concurrent")
            .unwrap()
            .field_arr("clients_ladder")
            .unwrap();
        assert_eq!(ladder.len(), 9);
        for shards in [1u64, 2, 4] {
            let sums: Vec<&str> = ladder
                .iter()
                .filter(|p| p.field_u64("shards").unwrap() == shards)
                .map(|p| p.field_str("checksum").unwrap())
                .collect();
            assert_eq!(sums.len(), 3, "shards {shards}");
            assert!(
                sums.windows(2).all(|w| w[0] == w[1]),
                "shard row {shards} checksums differ: {sums:?}"
            );
        }
        // The sweep fixtures run identical work at different pool widths,
        // so their checksums must agree — same for the scaling ladder.
        let sum_of = |wanted: &str| {
            benches
                .iter()
                .find(|b| b.field_str("name").unwrap() == wanted)
                .map(|b| b.field_str("checksum").unwrap().to_owned())
                .unwrap()
        };
        assert_eq!(sum_of("sweep_serial"), sum_of("sweep_parallel"));
        assert_eq!(sum_of("run_trials_t1"), sum_of("run_trials_t4"));
        for b in benches {
            assert!(b.field_u64("median_ns").unwrap() > 0, "{b:?}");
            assert!(b.field_f64("tasks_per_sec").unwrap() > 0.0, "{b:?}");
            let _ = b.field_f64("assignments_per_sec").unwrap();
            assert_eq!(b.field_str("checksum").unwrap().len(), 16, "{b:?}");
        }
        // Gating a report against itself always passes.
        let text2 = bench(true, 7, &p, Some(&p), 0, 4, None).unwrap();
        assert!(text2.contains("baseline gate: ok"), "{text2}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn thread_cap_trims_the_ladder_and_the_speedup_fields() {
        assert_eq!(thread_ladder(0), vec![1, 2, 4]);
        assert_eq!(thread_ladder(2), vec![1, 2]);
        assert_eq!(thread_ladder(1), vec![1]);
        let records = run_fixtures(true, 7, 1, 4, None).unwrap();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"run_trials_t1"), "{names:?}");
        assert!(!names.contains(&"run_trials_t2"), "{names:?}");
        assert!(!names.contains(&"sweep_parallel"), "{names:?}");
        assert!(speedup(&records, 2).is_none());
        let json = report_json(true, 7, &records);
        assert!(json.field("speedup_t2").is_err());
    }

    #[test]
    fn bench_checksums_are_deterministic_for_a_seed() {
        let a = run_fixtures(true, 11, 0, 4, None).unwrap();
        let b = run_fixtures(true, 11, 0, 4, None).unwrap();
        let sums = |rs: &[BenchRecord]| {
            rs.iter()
                .map(|r| (r.name.clone(), r.checksum))
                .collect::<Vec<_>>()
        };
        assert_eq!(sums(&a), sums(&b));
    }

    #[test]
    fn reps_override_applies_to_every_fixture() {
        let records = run_fixtures(true, 7, 1, 4, Some(1)).unwrap();
        for r in &records {
            assert_eq!(r.reps, 1, "{} kept its default reps", r.name);
        }
    }
}
