//! Command implementations: each returns the report it would print.

use crate::args::{Command, IoMode, SchemeName};
use crate::USAGE;
use redundancy_core::{
    advise, certify_sweep, AssignmentMinimizing, CoreError, ExtendedBalanced, RealizedPlan,
    Requirements, Scheme,
};
use redundancy_sim::serve::{
    epoll, handle_request, parse_journal, read_frame, replay_with, workload_fingerprint,
    write_frame, Frame, JournalWriter, JournaledStore, Record, ReplayOptions, Reply, SessionEnd,
    SessionHeader, StoreEnum, SyncPolicy, WorkStore,
};
use redundancy_sim::task::TaskSpec;
use redundancy_sim::{
    churn_experiment, churn_soak, detection_experiment, drain_equivalence,
    faulty_detection_experiment, run_campaign_with_scratch, serve_connection, serve_readiness_loop,
    AdversaryModel, CampaignConfig, CampaignOutcome, CampaignScratch, CheatStrategy, ChurnModel,
    ConcurrentStore, DrainState, ExperimentConfig, FaultModel, LoopOptions, ServeConfig,
    ServeStats, StreamMode,
};
use redundancy_stats::table::{fnum, inum, Table};
use redundancy_stats::{
    parallel_sweep, sweep_thread_split, DeterministicRng, SamplerMode, TrialConfig,
};
use std::fmt::Write as _;

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// A domain error from the core library.
    Core(CoreError),
    /// An I/O failure writing an output file.
    Io(String),
    /// A semantic error detected at dispatch time.
    Invalid(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}

/// Build the plan a (scheme, parameters) combination describes.
fn build_plan(
    scheme: SchemeName,
    tasks: u64,
    epsilon: f64,
    min_multiplicity: Option<usize>,
    proportion: f64,
) -> Result<RealizedPlan, CliError> {
    // Boost ε so the guarantee survives the stated adversary share.
    let effective_eps = if proportion > 0.0 {
        1.0 - (1.0 - epsilon).powf(1.0 / (1.0 - proportion))
    } else {
        epsilon
    };
    if effective_eps >= 1.0 || effective_eps.is_nan() {
        return Err(CliError::Invalid(format!(
            "threshold {epsilon} is unreachable at adversary proportion {proportion}"
        )));
    }
    match scheme {
        SchemeName::Balanced => Ok(RealizedPlan::balanced(tasks, effective_eps)?),
        SchemeName::GolleStubblebine => Ok(RealizedPlan::golle_stubblebine(tasks, effective_eps)?),
        SchemeName::Simple => Ok(RealizedPlan::k_fold(tasks, 2, epsilon)?),
        SchemeName::Extended => {
            let m = min_multiplicity.unwrap_or(2);
            let ext = ExtendedBalanced::new(tasks, effective_eps, m)?;
            RealizedPlan::from_ideal_weights("extended-balanced", tasks, effective_eps, |i| {
                ext.ideal_weight(i)
            })
            .map_err(CliError::Core)
        }
    }
}

/// Dispatch a parsed command.
pub fn dispatch(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help { topic } => Ok(help(topic.as_deref())),
        Command::Plan {
            scheme,
            tasks,
            epsilon,
            min_multiplicity,
            proportion,
            json,
        } => plan(
            *scheme,
            *tasks,
            *epsilon,
            *min_multiplicity,
            *proportion,
            json.as_deref(),
        ),
        Command::Analyze {
            scheme,
            tasks,
            epsilon,
            proportion,
        } => analyze(*scheme, *tasks, *epsilon, *proportion),
        Command::Advise {
            tasks,
            epsilon,
            adversary,
            precompute_budget,
            min_multiplicity,
        } => advise_cmd(
            *tasks,
            *epsilon,
            *adversary,
            *precompute_budget,
            *min_multiplicity,
        ),
        Command::Simulate {
            scheme,
            tasks,
            epsilon,
            proportion,
            campaigns,
            seed,
            chunk_size,
            threads,
            sampler,
        } => simulate(
            *scheme,
            *tasks,
            *epsilon,
            *proportion,
            *campaigns,
            *seed,
            *chunk_size,
            *threads,
            *sampler,
        ),
        Command::SolveSm {
            tasks,
            epsilon,
            dim,
            min_precompute,
            mps,
        } => solve_sm(*tasks, *epsilon, *dim, *min_precompute, mps.as_deref()),
        Command::Faults {
            scheme,
            tasks,
            epsilon,
            proportion,
            campaigns,
            seed,
            drop_rate,
            straggler_rate,
            straggler_delay,
            timeout,
            retries,
            steps,
            chunk_size,
            threads,
        } => faults_sweep(
            *scheme,
            *tasks,
            *epsilon,
            *proportion,
            *campaigns,
            *seed,
            *drop_rate,
            *straggler_rate,
            *straggler_delay,
            *timeout,
            *retries,
            *steps,
            *chunk_size,
            *threads,
        ),
        Command::Churn {
            scheme,
            tasks,
            epsilon,
            proportion,
            campaigns,
            seed,
            enter_rate,
            leave_rate,
            fail_rate,
            workers,
            horizon,
            census_interval,
            steps,
            chunk_size,
            threads,
            soak,
        } => {
            if *soak {
                churn_soak_cmd(*workers, *horizon, *tasks, *seed)
            } else {
                churn_sweep(
                    *scheme,
                    *tasks,
                    *epsilon,
                    *proportion,
                    *campaigns,
                    *seed,
                    *enter_rate,
                    *leave_rate,
                    *fail_rate,
                    *workers,
                    *horizon,
                    *census_interval,
                    *steps,
                    *chunk_size,
                    *threads,
                )
            }
        }
        Command::Serve {
            scheme,
            tasks,
            epsilon,
            proportion,
            seed,
            shards,
            timeout,
            retries,
            port,
            clients,
            stdio,
            streams,
            io,
            json,
            journal,
            sync,
            recover,
        } => serve_cmd(
            *scheme,
            *tasks,
            *epsilon,
            *proportion,
            *seed,
            *shards,
            *timeout,
            *retries,
            *port,
            *clients,
            *stdio,
            *streams,
            *io,
            json.clone(),
            journal.clone(),
            *sync,
            *recover,
        ),
        Command::JournalInspect { journal } => journal_inspect(journal),
        Command::Certify {
            tasks,
            epsilon,
            max_dim,
        } => certify(*tasks, *epsilon, *max_dim),
        Command::Bench {
            smoke,
            seed,
            out,
            baseline,
            threads,
            chunk_size,
            reps,
        } => {
            check_trial_config(1, *seed, *chunk_size, *threads)?;
            crate::bench::bench(
                *smoke,
                *seed,
                out,
                baseline.as_deref(),
                *threads,
                *chunk_size,
                *reps,
            )
        }
        Command::Repro {
            exhibit,
            list,
            all,
            json,
            ctx,
        } => repro(exhibit.as_deref(), *list, *all, json.as_deref(), ctx),
    }
}

/// `redundancy repro`: the unified front door to the exhibit registry.
fn repro(
    exhibit: Option<&str>,
    list: bool,
    all: bool,
    json: Option<&str>,
    ctx: &redundancy_repro::ExhibitCtx,
) -> Result<String, CliError> {
    use redundancy_json::to_string_pretty;

    if list {
        return Ok(redundancy_repro::render_index());
    }
    if all && exhibit.is_some() {
        return Err(CliError::Invalid(
            "`repro --all` runs every exhibit; drop the exhibit name".into(),
        ));
    }
    if all {
        // Batch mode: one status line per exhibit on stdout; with --json,
        // one repro-report/v1 document per exhibit under the directory.
        if let Some(dir) = json {
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError::Io(format!("creating {dir}: {e}")))?;
        }
        let mut out = String::new();
        for entry in redundancy_repro::registry() {
            let report = entry.run(ctx);
            let status = if report.passed { "ok" } else { "FAILED" };
            let _ = writeln!(out, "[{status}] {}", entry.name());
            if let Some(dir) = json {
                let path = format!("{dir}/{}.json", entry.name());
                std::fs::write(&path, to_string_pretty(&report.to_json(ctx)))
                    .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
                let _ = writeln!(out, "  [json written to {path}]");
            }
            if !report.passed {
                return Err(CliError::Invalid(format!(
                    "exhibit `{}` reported failed self-checks:\n{out}",
                    entry.name()
                )));
            }
        }
        let _ = writeln!(
            out,
            "{} exhibits completed.",
            redundancy_repro::registry().len()
        );
        return Ok(out);
    }
    let Some(name) = exhibit else {
        return Err(CliError::Invalid(
            "`repro` needs an exhibit name (or --list / --all); try `redundancy repro --list`"
                .into(),
        ));
    };
    let Some(entry) = redundancy_repro::find(name) else {
        return Err(CliError::Invalid(format!(
            "unknown exhibit `{name}`; try `redundancy repro --list`"
        )));
    };
    let start = std::time::Instant::now();
    let report = entry.run(ctx);
    // Byte-identical to the standalone binary: the registry's shared
    // emitter renders the text and performs the --csv side effect.
    let mut out = redundancy_repro::emit_text(&report, ctx);
    if let Some(path) = json {
        std::fs::write(path, to_string_pretty(&report.to_json(ctx)))
            .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
        eprintln!("[json written to {path}]");
    }
    if report.tasks > 0 {
        redundancy_repro::throughput_footer(
            name,
            report.tasks,
            report.assignments,
            start.elapsed(),
        );
    }
    if !report.passed {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "exhibit `{name}` reported failed self-checks (see above)."
        );
    }
    Ok(out)
}

/// Reject CLI-supplied trial-runner parameters that `run_trials` would only
/// catch with a debug assertion, naming the flag so `main` can exit with
/// code 2.
fn check_trial_config(
    campaigns: u64,
    seed: u64,
    chunk_size: u64,
    threads: usize,
) -> Result<(), CliError> {
    TrialConfig {
        trials: campaigns,
        chunk_size,
        threads,
        seed,
        sampler: Default::default(),
    }
    .validate()
    .map_err(|e| CliError::Invalid(format!("--{}: {e}", e.field.replace('_', "-"))))
}

fn help(topic: Option<&str>) -> String {
    match topic {
        Some("plan") => "\
redundancy plan --tasks <N> --epsilon <E> [--scheme S] [--min-multiplicity M]
                [--proportion P] [--json PATH]

Builds a deployable integer plan (floored buckets, tail partition, ringers).
With --proportion, the threshold is boosted so the guarantee holds against an
adversary controlling that share of assignments (Proposition 3).
"
        .into(),
        Some("analyze") => "\
redundancy analyze --tasks <N> --epsilon <E> [--scheme S] [--proportion P]

Prints per-tuple-size detection probabilities and cost metrics.
"
        .into(),
        Some("advise") => "\
redundancy advise --tasks <N> --epsilon <E> [--adversary P]
                  [--precompute-budget B] [--min-multiplicity M]

Picks the cheapest scheme meeting the requirements and explains why.
"
        .into(),
        Some("simulate") => "\
redundancy simulate --tasks <N> --epsilon <E> [--scheme S] [--proportion P]
                    [--campaigns C] [--seed SEED] [--chunk-size K]
                    [--threads T] [--sampler bit-compat|fast]

Runs full Monte-Carlo campaigns (assignment, collusion, verification) and
reports empirical detection rates with Wilson 95% intervals.  --chunk-size
sets how many campaigns share one derived RNG seed (must be positive);
--threads pins the worker count (0 = auto).  Results are identical for any
thread count at a fixed chunk size.  --sampler picks the draw backend:
bit-compat (default) replays the snapshot-exact inversion walk; fast swaps
in O(1) Walker alias tables — same distributions and determinism, but a
different RNG stream, so rates match statistically rather than bit for bit.
"
        .into(),
        Some("faults") => "\
redundancy faults --tasks <N> --epsilon <E> [--scheme S] [--proportion P]
                  [--campaigns C] [--seed SEED] [--drop-rate R] [--steps K]
                  [--straggler-rate R] [--straggler-delay D]
                  [--timeout T] [--retries M] [--chunk-size K] [--threads T]

Sweeps per-assignment drop rates from 0 to --drop-rate in K steps and
reports how empirical detection, delivery rate, and effective multiplicity
degrade — and how much the retry/reassignment budget recovers.  The rows
run concurrently on one worker pool; --threads caps the total budget shared
by the pool and each row's campaigns (0 = auto).  All latency is abstract
ticks; results are deterministic for a fixed seed and identical across
thread counts.
"
        .into(),
        Some("churn") => "\
redundancy churn [--tasks <N>] [--epsilon <E>] [--scheme S] [--proportion P]
                 [--campaigns C] [--seed SEED] [--enter-rate R]
                 [--leave-rate R] [--fail-rate R] [--workers W]
                 [--horizon T] [--census-interval T] [--steps K]
                 [--chunk-size K] [--threads T]
redundancy churn --soak [--workers W] [--horizon T] [--tasks N] [--seed SEED]

Sweeps per-worker departure rates from 0 to --leave-rate in K steps under
the discrete-event population engine: workers arrive at --enter-rate per
tick, departures hand their copies to surviving workers, failures destroy
them, and census checkpoints rerun the campaign kernel over the degraded
live multiset.  Row 0 is the fully static pool, which degenerates to the
churn-free kernel bit for bit.  The rows run concurrently on one worker
pool; --threads caps the shared budget (omit for auto; an explicit 0 is
rejected).  Results are deterministic for a fixed seed and identical
across thread counts.

--soak instead runs one long single-trial stress of the event loop at the
canonical soak hazards (0.9 arrivals/tick; per-worker leave and failure
hazards scaled so the population stays near --workers) and prints event
counters plus a determinism checksum: two same-seed runs must print
identical bytes.
"
        .into(),
        Some("serve") => "\
redundancy serve [--tasks <N>] [--epsilon <E>] [--scheme S] [--proportion P]
                 [--seed SEED] [--shards K] [--timeout T] [--retries M]
                 [--streams single|per-shard] [--io auto|epoll|threads]
                 [--json PATH] [--journal PATH [--sync always|batch|off]
                 [--recover]]
                 [--stdio | --clients C [--port PORT] | --port PORT]

Runs the live supervisor: a sharded in-memory assignment store that deals
task copies on demand in the batched kernel's exact RNG order, tracks them
in flight with tick-based timeouts (the tick clock advances one per
request), judges returns incrementally, and answers the length-prefixed
protocol (`request-work`, `return-result <task> <copy>`, `stats`,
`shutdown`; see EXPERIMENTS.md for a transcript).

With no transport flag the store is drained in process and the stats dump
is printed along with the oracle verdict.  --stdio speaks the framed
protocol over stdin/stdout (deterministic, scriptable).  --clients C
drains the store through C concurrent TCP clients against a listener on
--port (OS-assigned when omitted) and prints the final stats dump —
byte-identical across runs of the same seed whenever no timeout fires
(pass a large --timeout to guarantee that).  --port alone runs the daemon
until a client sends `shutdown`.  --shards sets the store's shard count;
--timeout/--retries set the re-issue policy.

--streams single (default) serializes every client on one session RNG: a
drained session is bit-identical to `run_campaign` on the same seed at
any shard count (the batched-kernel oracle).  --streams per-shard gives
each shard its own lock and its own derived RNG stream, so clients on
different shards proceed in parallel; the drained outcome is then a pure
function of (seed, shard count) — invariant to the client count and
request interleaving — and is checked against a shard-by-shard drain (the
sharded-stream oracle).  --io picks the TCP transport: the Linux epoll
readiness loop or the portable thread-per-connection loop (auto prefers
epoll where available; both produce identical reports).  --json PATH
(per-shard only) writes a serve-report/v1 document with session totals
and per-shard stats cells.

--journal PATH appends every state-mutating event (issue, return, tick,
timeout-requeue, shutdown) to a checksummed append-only log; --sync picks
the fsync policy (always per record, batch every 8 KiB — the default —
or off).  After a crash, rerun the same command line with --recover: the
journal's verified prefix is replayed to a bit-identical store (a torn
trailing record is truncated away), surviving in-flight copies are
re-queued, and the session resumes appending — a recovered-then-drained
run prints the same stats and report as an uninterrupted one.  See
`redundancy help journal-inspect` for offline inspection.
"
        .into(),
        Some("journal-inspect") => "\
redundancy journal-inspect --journal <PATH>

Lists a serve journal's records (one line per record, decoded) and prints
an integrity verdict: `intact` when every record's checksum chain
verifies to the last byte, or `TORN` naming the structured error and the
number of unverified trailing bytes when the file ends in a torn write.
A journal whose verified prefix is unusable (bad magic, missing header,
mid-file corruption) is an error.  Inspection is workload-independent;
replay verification against the task set happens in `serve --recover`.
"
        .into(),
        Some("solve-sm") => "\
redundancy solve-sm --tasks <N> --epsilon <E> --dim <M>
                    [--min-precompute] [--mps PATH]

Solves the assignment-minimizing LP S_m; --min-precompute applies the
lexicographic refinement; --mps exports the LP in MPS format.
"
        .into(),
        Some("certify") => "\
redundancy certify [--tasks <N>] [--epsilon <E>] [--max-dim M]

Re-solves S_m for every m from 2 to M in exact rational arithmetic and
checks the four optimality conditions (primal and dual feasibility,
complementary slackness, strong duality) in \u{211a}, then cross-checks the
certified optimum against the f64 simplex.  Defaults reproduce the
Figure 2 setting (N = 100,000, eps = 0.5).
"
        .into(),
        Some("bench") => "\
redundancy bench [--smoke] [--seed SEED] [--out PATH] [--baseline PATH]
                 [--threads T] [--chunk-size K] [--reps N]

Runs the pinned performance fixtures (batched and alias-table campaign
kernels vs the frozen reference loop, cached/walking/alias samplers,
run_trials thread scaling, a parallel sweep, a discrete-event churn soak,
the live-serve protocol loop, an S_m LP sweep) and writes a
`redundancy-bench/v1` JSON
report (default BENCH_report.json) with per-fixture median wall time,
tasks/sec, assignments/sec, and a determinism checksum, plus top-level
speedup_t2/speedup_t4 parallel-efficiency fields.  --threads caps the
scaling ladder (0 = the full 1/2/4); --chunk-size sets the run_trials
fixtures' chunk size; --reps N overrides every fixture's repetition count
(must be positive — useful for quick one-rep sanity passes).  --smoke
shrinks the fixtures for CI; --baseline compares medians against a
previous report and exits with code 2 if any fixture regressed beyond 2x.
"
        .into(),
        Some("repro") => "\
redundancy repro <EXHIBIT> [--seed SEED] [--csv PATH] [--trials-scale K]
                 [--threads T] [--json PATH]
redundancy repro --list
redundancy repro --all [--json DIR] [shared flags]

Regenerates the paper's tables and figures from the exhibit registry.  A
single exhibit prints exactly what its legacy standalone binary prints
(byte-identical, pinned by the golden snapshots); --json additionally
writes a `repro-report/v1` JSON document (see docs/REPORTS.md).  --list
prints the registry index; --all runs every exhibit, writing one JSON
document per exhibit when --json names a directory.  --trials-scale
multiplies Monte-Carlo effort (must be positive); --threads caps the
worker budget (0 = auto) and never changes the output bytes.
"
        .into(),
        _ => USAGE.into(),
    }
}

fn plan(
    scheme: SchemeName,
    tasks: u64,
    epsilon: f64,
    min_multiplicity: Option<usize>,
    proportion: f64,
    json: Option<&str>,
) -> Result<String, CliError> {
    let plan = build_plan(scheme, tasks, epsilon, min_multiplicity, proportion)?;
    let mut out = String::new();
    let _ = writeln!(out, "plan: {} over {} tasks", plan.scheme(), inum(tasks));
    let _ = writeln!(
        out,
        "guarantee: detection >= {epsilon} for every tuple size{}",
        if proportion > 0.0 {
            format!(
                " up to adversary share {proportion} (threshold boosted to {:.4})",
                plan.epsilon()
            )
        } else {
            String::new()
        }
    );
    let mut table = Table::new(&["multiplicity", "tasks", "kind"]);
    table.numeric();
    for p in plan.partitions() {
        table.row(&[
            &p.multiplicity.to_string(),
            &inum(p.tasks),
            &format!("{:?}", p.kind),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "total assignments: {} (factor {:.4}); precomputed tasks: {}",
        inum(plan.total_assignments()),
        plan.redundancy_factor(),
        plan.precomputed_tasks()
    );
    let _ = writeln!(
        out,
        "effective detection at p = 0: {:.4}; at p = 0.1: {:.4}",
        plan.effective_detection(0.0)?,
        plan.effective_detection(0.1)?
    );
    if let Some(path) = json {
        let body = redundancy_json::to_string_pretty(&plan);
        std::fs::write(path, body).map_err(|e| CliError::Io(e.to_string()))?;
        let _ = writeln!(out, "[plan written to {path}]");
    }
    Ok(out)
}

fn analyze(
    scheme: SchemeName,
    tasks: u64,
    epsilon: f64,
    proportion: f64,
) -> Result<String, CliError> {
    let plan = build_plan(scheme, tasks, epsilon, None, 0.0)?;
    let profile = plan.detection_profile();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "analysis: {} at eps = {epsilon}, N = {}",
        plan.scheme(),
        inum(tasks)
    );
    let mut table = Table::new(&["k", "P_k (asymptotic)", &format!("P_k at p = {proportion}")]);
    table.numeric();
    let dim = profile.dimension().min(12);
    for k in 1..=dim {
        let asym = profile
            .p_asymptotic(k)
            .map(|v| fnum(v, 4))
            .unwrap_or_else(|| "-".into());
        let nonasym = profile
            .p_nonasymptotic(k, proportion)?
            .map(|v| fnum(v, 4))
            .unwrap_or_else(|| "-".into());
        table.row(&[&k.to_string(), &asym, &nonasym]);
    }
    out.push_str(&table.render());
    let (eff, waste) = redundancy_core::wasted_assignments(&profile)?;
    let _ = writeln!(
        out,
        "effective detection: {:.4} at p = 0, {:.4} at p = {proportion}",
        eff,
        profile.effective_detection(proportion)?
    );
    let _ = writeln!(
        out,
        "cost: {} assignments (factor {:.4}); wasted vs optimal-at-this-protection: {}",
        inum(plan.total_assignments()),
        plan.redundancy_factor(),
        inum(waste.round() as u64)
    );
    Ok(out)
}

fn advise_cmd(
    tasks: u64,
    epsilon: f64,
    adversary: f64,
    precompute_budget: u64,
    min_multiplicity: Option<usize>,
) -> Result<String, CliError> {
    let req = Requirements {
        n_tasks: tasks,
        epsilon,
        max_adversary_proportion: adversary,
        precompute_budget,
        min_multiplicity,
    };
    let advice = advise(&req)?;
    let mut out = String::new();
    let _ = writeln!(out, "recommendation: {:?}", advice.choice);
    let _ = writeln!(out, "  {}", advice.rationale);
    let _ = writeln!(
        out,
        "  cost: {:.0} assignments (factor {:.4}); precompute {:.0} tasks",
        advice.total_assignments, advice.redundancy_factor, advice.precompute
    );
    let _ = writeln!(
        out,
        "  delivers detection {:.4} up to adversary share {adversary}",
        advice.effective_detection
    );
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    scheme: SchemeName,
    tasks: u64,
    epsilon: f64,
    proportion: f64,
    campaigns: u64,
    seed: u64,
    chunk_size: u64,
    threads: usize,
    sampler: SamplerMode,
) -> Result<String, CliError> {
    check_trial_config(campaigns, seed, chunk_size, threads)?;
    let plan = build_plan(scheme, tasks, epsilon, None, 0.0)?;
    let config = ExperimentConfig {
        chunk_size,
        threads,
        sampler,
        ..ExperimentConfig::new(campaigns, seed)
    };
    let est = detection_experiment(
        &plan,
        AdversaryModel::AssignmentFraction { p: proportion },
        CheatStrategy::AtLeast { min_copies: 1 },
        &config,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} campaigns of {} ({} tasks each, adversary share {proportion}, seed {seed})",
        campaigns,
        plan.scheme(),
        inum(tasks)
    );
    if sampler == SamplerMode::Fast {
        // Only the non-default mode announces itself, so bit-compat output
        // stays byte-stable for scripts diffing against old runs.
        let _ = writeln!(
            out,
            "sampler: fast (alias method; same distributions, different RNG stream)"
        );
    }
    let mut table = Table::new(&["k", "attacks", "detected", "rate", "95% CI"]);
    table.numeric();
    let mut any = false;
    for k in 1..est.outcome.cheats_attempted.len() {
        let Some(prop) = est.at_tuple(k) else {
            continue;
        };
        any = true;
        let (lo, hi) = prop.wilson_interval(1.96);
        table.row(&[
            &k.to_string(),
            &prop.trials().to_string(),
            &prop.successes().to_string(),
            &fnum(prop.estimate(), 4),
            &format!("[{}, {}]", fnum(lo, 4), fnum(hi, 4)),
        ]);
    }
    if any {
        out.push_str(&table.render());
    } else {
        let _ = writeln!(out, "(no attacks occurred — adversary share too small)");
    }
    let _ = writeln!(
        out,
        "wrong results accepted: {}; false flags: {}",
        est.outcome.wrong_accepted, est.outcome.false_flags
    );
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn faults_sweep(
    scheme: SchemeName,
    tasks: u64,
    epsilon: f64,
    proportion: f64,
    campaigns: u64,
    seed: u64,
    drop_rate: f64,
    straggler_rate: f64,
    straggler_delay: f64,
    timeout: u64,
    retries: u32,
    steps: u32,
    chunk_size: u64,
    threads: usize,
) -> Result<String, CliError> {
    check_trial_config(campaigns, seed, chunk_size, threads)?;
    let plan = build_plan(scheme, tasks, epsilon, None, 0.0)?;
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: proportion },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault sweep: {} over {} tasks, {campaigns} campaigns/row, adversary share {proportion}, seed {seed}",
        plan.scheme(),
        inum(tasks)
    );
    let _ = writeln!(
        out,
        "timeout {timeout} ticks, {retries} retries, straggler rate {straggler_rate} (mean delay {straggler_delay})"
    );
    let expect = 1.0 - (1.0 - plan.epsilon()).powf(1.0 - proportion);
    let _ = writeln!(
        out,
        "closed-form detection with lossless delivery: {:.4}",
        expect
    );
    let mut table = Table::new(&[
        "drop rate",
        "detection",
        "95% CI",
        "delivered",
        "eff. mult",
        "retries",
        "unresolved",
    ]);
    table.numeric();
    // Validate every row's fault model up front, then run all rows on one
    // sweep pool; each row's experiment takes the leftover thread share.
    // Row seeds are fixed, so the table matches the serial loop exactly.
    let mut rows: Vec<(f64, FaultModel)> = Vec::new();
    for step in 0..=steps {
        let rate = drop_rate * f64::from(step) / f64::from(steps);
        let faults = FaultModel {
            drop_rate: rate,
            straggler_rate,
            straggler_mean_delay: straggler_delay,
            timeout,
            max_retries: retries,
            ..FaultModel::none()
        };
        faults.validate().map_err(CliError::Invalid)?;
        rows.push((rate, faults));
    }
    let (outer, inner) = sweep_thread_split(threads, rows.len());
    let config = ExperimentConfig {
        chunk_size,
        ..ExperimentConfig::new(campaigns, seed)
    }
    .with_threads(inner);
    let estimates = parallel_sweep(outer, &rows, |_i, (_rate, faults)| {
        faulty_detection_experiment(&plan, &campaign, faults, &config)
    });
    for ((rate, _), est) in rows.iter().zip(&estimates) {
        let rate = *rate;
        let overall = est.overall();
        let (lo, hi) = overall.wilson_interval(1.96);
        table.row(&[
            &fnum(rate, 2),
            &fnum(overall.estimate(), 4),
            &format!("[{}, {}]", fnum(lo, 4), fnum(hi, 4)),
            &est.outcome
                .delivery_rate()
                .map(|v| fnum(v, 4))
                .unwrap_or_else(|| "-".into()),
            &est.outcome
                .effective_multiplicity()
                .map(|v| fnum(v, 3))
                .unwrap_or_else(|| "-".into()),
            &est.outcome.retries.to_string(),
            &est.outcome.unresolved_tasks.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "(detection below the closed form means fault pressure ate into the guarantee; \
raise --retries or the timeout to recover it)"
    );
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn churn_sweep(
    scheme: SchemeName,
    tasks: u64,
    epsilon: f64,
    proportion: f64,
    campaigns: u64,
    seed: u64,
    enter_rate: f64,
    leave_rate: f64,
    fail_rate: f64,
    workers: u64,
    horizon: u64,
    census_interval: u64,
    steps: u32,
    chunk_size: u64,
    threads: usize,
) -> Result<String, CliError> {
    check_trial_config(campaigns, seed, chunk_size, threads)?;
    let plan = build_plan(scheme, tasks, epsilon, None, 0.0)?;
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: proportion },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "churn sweep: {} over {} tasks, {campaigns} campaigns/row, adversary share {proportion}, seed {seed}",
        plan.scheme(),
        inum(tasks)
    );
    let _ = writeln!(
        out,
        "{} initial workers, horizon {} ticks, census every {} ticks, arrival rate {enter_rate}, failure rate {fail_rate}",
        inum(workers),
        inum(horizon),
        inum(census_interval)
    );
    let expect = 1.0 - (1.0 - plan.epsilon()).powf(1.0 - proportion);
    let _ = writeln!(
        out,
        "closed-form detection with a static pool: {:.4}",
        expect
    );
    // Validate every row's churn model up front, then run all rows on one
    // sweep pool; each row's experiment takes the leftover thread share.
    // Row 0 is the fully static pool (all rates zero), so it exercises the
    // zero-churn delegation path and anchors the table at the closed form.
    let mut rows: Vec<(f64, ChurnModel)> = Vec::new();
    for step in 0..=steps {
        let rate = leave_rate * f64::from(step) / f64::from(steps);
        let churn = ChurnModel {
            enter_rate: if step == 0 { 0.0 } else { enter_rate },
            leave_rate: rate,
            fail_rate: if step == 0 { 0.0 } else { fail_rate },
            initial_workers: workers,
            horizon,
            census_interval,
        };
        churn.validate().map_err(CliError::Invalid)?;
        rows.push((rate, churn));
    }
    let (outer, inner) = sweep_thread_split(threads, rows.len());
    let config = ExperimentConfig {
        chunk_size,
        ..ExperimentConfig::new(campaigns, seed)
    }
    .with_threads(inner);
    let estimates = parallel_sweep(outer, &rows, |_i, (_rate, churn)| {
        churn_experiment(&plan, &campaign, churn, &config)
    });
    let mut table = Table::new(&[
        "leave rate",
        "detection",
        "95% CI",
        "realized factor",
        "live workers",
        "reassigned/trial",
        "lost/trial",
    ]);
    table.numeric();
    for ((rate, churn), est) in rows.iter().zip(&estimates) {
        let overall = est.overall();
        let (lo, hi) = overall.wilson_interval(1.96);
        let trials = est.outcome.trials.max(1);
        let factor = est
            .realized_redundancy()
            .unwrap_or_else(|| plan.redundancy_factor());
        let live = est
            .outcome
            .census
            .last()
            .map_or(churn.initial_workers as f64, |s| s.mean_live_workers());
        table.row(&[
            &fnum(*rate, 4),
            &fnum(overall.estimate(), 4),
            &format!("[{}, {}]", fnum(lo, 4), fnum(hi, 4)),
            &fnum(factor, 3),
            &fnum(live, 1),
            &fnum(est.outcome.reassignments as f64 / trials as f64, 1),
            &fnum(est.outcome.lost_copies as f64 / trials as f64, 1),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "(departures reassign their copies — detection holds but the realized factor \
inflates; failures destroy copies and eat into the detection guarantee)"
    );
    Ok(out)
}

/// `redundancy churn --soak`: a single-trial event-loop stress run at the
/// canonical soak hazards, printing the deterministic checksum so two
/// same-seed runs can be compared byte for byte.
fn churn_soak_cmd(workers: u64, horizon: u64, tasks: u64, seed: u64) -> Result<String, CliError> {
    let churn = ChurnModel::soak(workers, horizon);
    churn.validate().map_err(CliError::Invalid)?;
    let report = churn_soak(&churn, tasks, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "churn soak: {} initial workers, horizon {} ticks, {} tasks, seed {seed}",
        inum(workers),
        inum(horizon),
        inum(tasks)
    );
    let _ = writeln!(
        out,
        "events: {} (arrivals {}, departures {}, failures {})",
        inum(report.events),
        inum(report.arrivals),
        inum(report.departures),
        inum(report.failures)
    );
    let _ = writeln!(
        out,
        "reassigned copies: {}; lost copies: {}; census checkpoints: {}",
        inum(report.reassignments),
        inum(report.lost_copies),
        report.checkpoints
    );
    let _ = writeln!(out, "checksum: {:#018x}", report.checksum);
    Ok(out)
}

/// A drained serve backend: aggregate stats, the full drained-state
/// snapshot (outcome + final RNG streams) the oracles compare, the
/// [`ConcurrentStore`] itself when the session ran per-shard streams (the
/// JSON report and the sharded-stream oracle both need the store, not
/// just its counters), and the journal's closing summary when one was
/// written.
struct ServeRun {
    stats: ServeStats,
    state: DrainState,
    store: Option<ConcurrentStore>,
    journal: Option<JournalSummary>,
}

/// What a finished journal looked like, for the report tail and the JSON
/// `journal` member.
struct JournalSummary {
    path: String,
    policy: SyncPolicy,
    records: u64,
    bytes: u64,
    synced: u64,
    chain: u64,
}

/// How a session came back from `--recover`: what the replay consumed and
/// what the reset re-queued.
struct Recovery {
    records: u64,
    reverted: u64,
    torn_tail: bool,
}

/// The serve backend every transport drives through one generic surface.
///
/// Journaling serializes events, so a journaled session of either store
/// flavor runs behind one lock (`Locked`) — the journal's record order
/// *is* the call order, which is what makes replay deterministic.  The
/// single-stream session needs that lock anyway; the per-shard store
/// keeps its full per-shard concurrency only while unjournaled
/// (`Concurrent`).
// One backend exists per serve run; the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Backend {
    /// Either store flavor, serialized behind one lock, journaled or not.
    Locked(std::sync::Mutex<JournaledStore<StoreEnum>>),
    /// The per-shard store on its own per-shard locks (no journal).
    Concurrent(ConcurrentStore),
}

impl Backend {
    /// Answer one protocol request, formatting the reply into `reply`.
    /// Returns true when the request was `shutdown`.
    fn handle_into(&self, req: &str, reply: &mut String) -> bool {
        match self {
            Backend::Locked(m) => {
                let mut js = m.lock().expect("serve backend poisoned");
                handle_request(&mut *js, req, reply)
            }
            Backend::Concurrent(c) => c.handle_into(req, reply),
        }
    }

    /// Answer one protocol request into an owned [`Reply`].
    fn handle(&self, req: &str) -> Reply {
        let mut text = String::new();
        let shutdown = self.handle_into(req, &mut text);
        Reply { text, shutdown }
    }

    /// Drain the store to completion in process.
    fn drain(&self) {
        match self {
            Backend::Locked(m) => m.lock().expect("serve backend poisoned").drain(),
            Backend::Concurrent(c) => c.drain(),
        }
    }

    /// Tear down into the run summary: final stats, drained state, the
    /// concurrent store (per-shard sessions), and the journal summary.
    /// A journal append or flush failure surfaces here as an error — the
    /// session itself finished, but its log cannot be trusted.
    fn finish(self, journal_path: Option<&str>) -> Result<ServeRun, CliError> {
        match self {
            Backend::Locked(m) => {
                let js = m
                    .into_inner()
                    .map_err(|_| CliError::Io("serve backend poisoned".into()))?;
                let stats = js.stats();
                let state = DrainState::of(&js);
                let (store, writer) = js.finish().map_err(|e| {
                    CliError::Io(format!(
                        "journal {}: {e}",
                        journal_path.unwrap_or("<unset>")
                    ))
                })?;
                let journal = match (writer, journal_path) {
                    (Some(w), Some(path)) => Some(JournalSummary {
                        path: path.to_string(),
                        policy: w.policy(),
                        records: w.records(),
                        bytes: w.bytes(),
                        synced: w.synced(),
                        chain: w.chain(),
                    }),
                    _ => None,
                };
                Ok(ServeRun {
                    stats,
                    state,
                    store: store.into_concurrent(),
                    journal,
                })
            }
            Backend::Concurrent(c) => Ok(ServeRun {
                stats: c.stats(),
                state: DrainState::of(&&c),
                store: Some(c),
                journal: None,
            }),
        }
    }
}

/// Resolve `--io` to a concrete transport.  `Auto` prefers the epoll
/// readiness loop wherever it exists (Linux) and falls back to the
/// thread-per-connection loop elsewhere; asking for epoll explicitly on a
/// platform without it is a configuration error, not a silent downgrade.
fn resolve_io(io: IoMode) -> Result<bool, CliError> {
    match io {
        IoMode::Auto => Ok(epoll::available()),
        IoMode::Epoll => {
            if epoll::available() {
                Ok(true)
            } else {
                Err(CliError::Invalid(
                    "--io epoll is only available on linux; use --io threads".into(),
                ))
            }
        }
        IoMode::Threads => Ok(false),
    }
}

/// `redundancy serve`: the live supervisor.  Four transports share the
/// store: stdio frames (deterministic, scriptable), a TCP daemon, a
/// self-driving TCP drain with synthetic concurrent clients, and the
/// default in-process drain that also checks the matching oracle.  Both
/// TCP transports run on the epoll readiness loop where available (or the
/// threaded fallback, `--io threads`), and `--streams per-shard` swaps the
/// single-stream session for the per-shard-locked [`ConcurrentStore`].
#[allow(clippy::too_many_arguments)]
fn serve_cmd(
    scheme: SchemeName,
    tasks: u64,
    epsilon: f64,
    proportion: f64,
    seed: u64,
    shards: usize,
    timeout: u64,
    retries: u32,
    port: Option<u16>,
    clients: usize,
    stdio: bool,
    streams: StreamMode,
    io: IoMode,
    json: Option<String>,
    journal: Option<String>,
    sync: SyncPolicy,
    recover: bool,
) -> Result<String, CliError> {
    let plan = build_plan(scheme, tasks, epsilon, None, 0.0)?;
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: proportion },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    let serve = ServeConfig {
        faults: FaultModel {
            timeout,
            max_retries: retries,
            ..FaultModel::none()
        },
        ..ServeConfig::new(shards)
    };
    let use_epoll = resolve_io(io)?;
    if json.is_some() && streams != StreamMode::PerShard {
        return Err(CliError::Invalid(
            "--json requires --streams per-shard (the report's per_shard array \
             comes from the sharded store)"
                .into(),
        ));
    }
    let specs = redundancy_sim::task::expand_plan(&plan);
    let (backend, recovery) = make_backend(
        &specs,
        &campaign,
        &serve,
        seed,
        streams,
        journal.as_deref(),
        sync,
        recover,
    )?;
    if stdio {
        if json.is_some() {
            return Err(CliError::Invalid(
                "--json is not available with --stdio (the protocol owns stdout)".into(),
            ));
        }
        // The protocol owns stdout, so the report string stays empty.
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut r = stdin.lock();
        let mut w = stdout.lock();
        serve_connection(&mut r, &mut w, |req| backend.handle(req))
            .map_err(|e| CliError::Io(format!("stdio transport: {e}")))?;
        // A journal append failure still surfaces, even with no report.
        backend.finish(journal.as_deref())?;
        return Ok(String::new());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} over {} tasks, {shards} shard(s), adversary share {proportion}, seed {seed}",
        plan.scheme(),
        inum(tasks),
    );
    let _ = writeln!(out, "timeout {timeout} ticks, {retries} retries per copy");
    if streams == StreamMode::PerShard {
        // Deliberately silent about the io mode: epoll and threaded runs
        // of the same configuration must print byte-identical reports.
        let _ = writeln!(out, "streams per-shard: one derived RNG stream per shard");
    }
    let run = if clients > 0 {
        let backend = serve_tcp_drive(backend, port, clients, use_epoll)?;
        let _ = writeln!(out, "drained by {clients} concurrent TCP clients");
        let run = backend.finish(journal.as_deref())?;
        out.push_str(&run.stats.render());
        if let Some(store) = &run.store {
            append_sharded_oracle_verdict(&mut out, &specs, &campaign, &serve, seed, store);
            if let Some(path) = &json {
                write_serve_json(path, &plan, seed, clients, store, run.journal.as_ref())?;
            }
        }
        run
    } else if let Some(port) = port {
        let backend = serve_tcp_daemon(backend, port, use_epoll)?;
        let run = backend.finish(journal.as_deref())?;
        out.push_str(&run.stats.render());
        if let (Some(path), Some(store)) = (&json, &run.store) {
            write_serve_json(path, &plan, seed, 0, store, run.journal.as_ref())?;
        }
        run
    } else {
        // Default: drain in process and check the flavor's oracle.
        backend.drain();
        let run = backend.finish(journal.as_deref())?;
        out.push_str(&run.stats.render());
        match streams {
            StreamMode::Single => {
                // The batched-kernel oracle: the drained session must be
                // bit-identical to the batch kernel on the same seed.
                let mut batch_rng = DeterministicRng::new(seed);
                let mut batch_out = CampaignOutcome::default();
                let mut scratch = CampaignScratch::new();
                run_campaign_with_scratch(
                    &specs,
                    &campaign,
                    &mut batch_rng,
                    &mut batch_out,
                    &mut scratch,
                );
                let ok =
                    drain_equivalence(&DrainState::batch(batch_out, batch_rng), &run.state).is_ok();
                let _ = writeln!(
                    out,
                    "batched-kernel oracle: {}",
                    if ok { "bit-identical" } else { "DIVERGED" }
                );
            }
            StreamMode::PerShard => {
                // The shard-by-shard oracle (the per-shard determinism
                // contract).
                let store = run.store.as_ref().expect("per-shard run keeps its store");
                append_sharded_oracle_verdict(&mut out, &specs, &campaign, &serve, seed, store);
                if let Some(path) = &json {
                    write_serve_json(path, &plan, seed, 0, store, run.journal.as_ref())?;
                }
            }
        }
        run
    };
    append_journal_tail(&mut out, run.journal.as_ref(), recovery.as_ref());
    Ok(out)
}

/// Build the serve backend, creating or recovering the journal when
/// `--journal` is given.  Returns the backend plus the recovery notes
/// when `--recover` replayed an existing journal.
#[allow(clippy::too_many_arguments)]
fn make_backend(
    specs: &[TaskSpec],
    campaign: &CampaignConfig,
    serve: &ServeConfig,
    seed: u64,
    streams: StreamMode,
    journal: Option<&str>,
    sync: SyncPolicy,
    recover: bool,
) -> Result<(Backend, Option<Recovery>), CliError> {
    let Some(path) = journal else {
        // No journal: the single-stream session serializes on one lock
        // (as it always has); the per-shard store keeps its shard locks.
        let backend = match streams {
            StreamMode::Single => {
                let store = StoreEnum::new(specs, campaign, serve, seed, streams)
                    .map_err(CliError::Invalid)?;
                Backend::Locked(std::sync::Mutex::new(JournaledStore::new(store, None)))
            }
            StreamMode::PerShard => Backend::Concurrent(
                ConcurrentStore::new(specs, campaign, serve, seed).map_err(CliError::Invalid)?,
            ),
        };
        return Ok((backend, None));
    };
    if recover {
        return recover_backend(specs, campaign, serve, seed, streams, path, sync);
    }
    let file = std::fs::File::create(path)
        .map_err(|e| CliError::Invalid(format!("--journal {path}: {e}")))?;
    let mut writer = JournalWriter::new(file, sync);
    writer
        .append(&Record::Header(SessionHeader {
            seed,
            shards: serve.shards as u32,
            mode: streams,
            timeout: serve.faults.timeout,
            max_retries: serve.faults.max_retries,
            fingerprint: workload_fingerprint(specs, campaign),
            total_tasks: specs.len() as u64,
        }))
        .map_err(|e| CliError::Io(format!("journal {path}: {e}")))?;
    let store = StoreEnum::new(specs, campaign, serve, seed, streams).map_err(CliError::Invalid)?;
    Ok((
        Backend::Locked(std::sync::Mutex::new(JournaledStore::new(
            store,
            Some(writer),
        ))),
        None,
    ))
}

/// `--recover`: replay the journal (tolerating a torn tail), check its
/// header against the command line, truncate the tail away, and resume
/// both the store and the appender from the verified prefix.
fn recover_backend(
    specs: &[TaskSpec],
    campaign: &CampaignConfig,
    serve: &ServeConfig,
    seed: u64,
    streams: StreamMode,
    path: &str,
    sync: SyncPolicy,
) -> Result<(Backend, Option<Recovery>), CliError> {
    use std::io::Seek as _;
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Invalid(format!("--journal {path}: {e}")))?;
    let replayed = replay_with(
        &bytes,
        specs,
        campaign,
        ReplayOptions {
            allow_torn_tail: true,
        },
    )
    .map_err(|e| CliError::Invalid(format!("--recover: journal {path}: {e}")))?;
    let h = replayed.header;
    if (h.seed, h.shards, h.mode, h.timeout, h.max_retries)
        != (
            seed,
            serve.shards as u32,
            streams,
            serve.faults.timeout,
            serve.faults.max_retries,
        )
    {
        return Err(CliError::Invalid(format!(
            "--recover: journal {path} was written by a different session \
             (journal: seed {} shards {} streams {} timeout {} retries {}; \
             command line: seed {seed} shards {} streams {streams} timeout {} retries {})",
            h.seed,
            h.shards,
            h.mode,
            h.timeout,
            h.max_retries,
            serve.shards,
            serve.faults.timeout,
            serve.faults.max_retries,
        )));
    }
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| CliError::Invalid(format!("--journal {path}: {e}")))?;
    file.set_len(replayed.valid_len)
        .map_err(|e| CliError::Io(format!("truncating journal {path}: {e}")))?;
    file.seek(std::io::SeekFrom::End(0))
        .map_err(|e| CliError::Io(format!("journal {path}: {e}")))?;
    let writer = JournalWriter::resume(
        file,
        sync,
        replayed.chain,
        replayed.records,
        replayed.valid_len,
    );
    let mut js = JournaledStore::new(replayed.store, Some(writer));
    // The copies issued before the crash died with their clients: revert
    // them to pending (journaled as a reset record) so the resumed drain
    // ends exactly where an uninterrupted one would have.
    let reverted = js.reset_in_flight();
    if let Some(e) = js.error() {
        return Err(CliError::Io(format!("journal {path}: {e}")));
    }
    Ok((
        Backend::Locked(std::sync::Mutex::new(js)),
        Some(Recovery {
            records: replayed.records,
            reverted,
            torn_tail: replayed.torn_tail,
        }),
    ))
}

/// The journal's closing report lines — present only when `--journal`
/// was given, so journal-free reports stay byte-identical to previous
/// releases.
fn append_journal_tail(
    out: &mut String,
    journal: Option<&JournalSummary>,
    recovery: Option<&Recovery>,
) {
    let Some(j) = journal else { return };
    if let Some(r) = recovery {
        let _ = writeln!(
            out,
            "journal recovered: {} records replayed, {} copies re-queued{}",
            r.records,
            r.reverted,
            if r.torn_tail {
                ", torn tail truncated"
            } else {
                ""
            },
        );
    }
    let _ = writeln!(
        out,
        "journal: {} (sync {}): {} records, {} bytes, {} syncs, chain {:#018x}",
        j.path, j.policy, j.records, j.bytes, j.synced, j.chain
    );
}

/// Re-drain a fresh [`ConcurrentStore`] shard by shard and compare it to
/// the served store: merged outcome, per-shard final RNG states, and the
/// full stats snapshot must all match bit for bit regardless of how many
/// clients interleaved their requests.
fn append_sharded_oracle_verdict(
    out: &mut String,
    specs: &[TaskSpec],
    campaign: &CampaignConfig,
    serve: &ServeConfig,
    seed: u64,
    store: &ConcurrentStore,
) {
    let verdict = match ConcurrentStore::new(specs, campaign, serve, seed) {
        Ok(oracle) => {
            oracle.drain_shard_by_shard();
            let ok = store.merged_outcome() == oracle.merged_outcome()
                && store.final_rngs() == oracle.final_rngs()
                && store.stats() == oracle.stats();
            if ok {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        }
        Err(_) => "DIVERGED",
    };
    let _ = writeln!(out, "sharded-stream oracle: {verdict}");
}

/// The 16 counters of a [`ServeStats`] snapshot as JSON object members,
/// plus the FNV checksum rendered in hex (the same digits `render()`
/// prints, so shell pipelines can cross-check the two outputs).
fn stats_members(stats: &ServeStats) -> Vec<(&'static str, redundancy_json::Json)> {
    use redundancy_json::{num_u64, Json};
    vec![
        ("total_tasks", num_u64(stats.total_tasks)),
        ("activated_tasks", num_u64(stats.activated_tasks)),
        ("completed_tasks", num_u64(stats.completed_tasks)),
        ("total_copies", num_u64(stats.total_copies)),
        ("issued", num_u64(stats.issued)),
        ("returned", num_u64(stats.returned)),
        ("in_flight", num_u64(stats.in_flight)),
        ("requeued", num_u64(stats.requeued)),
        ("lost", num_u64(stats.lost)),
        ("timeouts", num_u64(stats.timeouts)),
        ("retries", num_u64(stats.retries)),
        ("cheats_attempted", num_u64(stats.cheats_attempted)),
        ("cheats_detected", num_u64(stats.cheats_detected)),
        ("wrong_accepted", num_u64(stats.wrong_accepted)),
        ("false_flags", num_u64(stats.false_flags)),
        ("unresolved_tasks", num_u64(stats.unresolved_tasks)),
        ("checksum", Json::Str(format!("{:#018x}", stats.checksum()))),
    ]
}

/// Write the `serve-report/v1` document for a drained per-shard store:
/// session totals plus one stats cell per shard, so consumers can verify
/// the cells sum to the totals.  A `journal` member is appended only when
/// the session was journaled, so journal-free reports are unchanged and
/// `jq 'del(.journal)'` compares a recovered run to an uninterrupted one.
fn write_serve_json(
    path: &str,
    plan: &RealizedPlan,
    seed: u64,
    clients: usize,
    store: &ConcurrentStore,
    journal: Option<&JournalSummary>,
) -> Result<(), CliError> {
    use redundancy_json::{num_u64, obj, Json};
    let per_shard: Vec<Json> = store
        .per_shard_stats()
        .iter()
        .enumerate()
        .map(|(s, cell)| {
            let mut members = vec![("shard", num_u64(s as u64))];
            members.extend(stats_members(cell));
            obj(members)
        })
        .collect();
    let mut members = vec![
        ("schema", Json::Str("serve-report/v1".into())),
        ("scheme", Json::Str(plan.scheme().to_string())),
        ("seed", num_u64(seed)),
        ("shards", num_u64(store.shard_count() as u64)),
        ("clients", num_u64(clients as u64)),
        ("streams", Json::Str("per-shard".into())),
        (
            "stream_checksum",
            Json::Str(format!("{:#018x}", store.stream_checksum())),
        ),
        ("totals", obj(stats_members(&store.stats()))),
        ("per_shard", Json::Arr(per_shard)),
    ];
    if let Some(j) = journal {
        members.push((
            "journal",
            obj(vec![
                ("path", Json::Str(j.path.clone())),
                ("sync", Json::Str(j.policy.to_string())),
                ("records", num_u64(j.records)),
                ("bytes", num_u64(j.bytes)),
                ("synced", num_u64(j.synced)),
                ("replay_checksum", Json::Str(format!("{:#018x}", j.chain))),
            ]),
        ));
    }
    let doc = obj(members);
    let mut body = redundancy_json::to_string_pretty(&doc);
    body.push('\n');
    std::fs::write(path, body).map_err(|e| CliError::Io(format!("writing {path}: {e}")))
}

/// `redundancy journal-inspect`: list a serve journal's records and
/// report an integrity verdict — `intact`, or `TORN` with the verified
/// prefix listed and the tail's structured error named.  Workload-level
/// checks (fingerprint, replay) need the task set and are done by
/// `serve --recover`; inspection only needs the bytes.
fn journal_inspect(path: &str) -> Result<String, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Invalid(format!("--journal {path}: {e}")))?;
    let strict_err = parse_journal(&bytes, ReplayOptions::default()).err();
    let parsed = parse_journal(
        &bytes,
        ReplayOptions {
            allow_torn_tail: true,
        },
    )
    .map_err(|e| CliError::Invalid(format!("journal {path}: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "journal {path}: {} bytes", bytes.len());
    for (i, rec) in parsed.records.iter().enumerate() {
        let _ = writeln!(out, "{i:>6}  {rec}");
    }
    let _ = writeln!(
        out,
        "{} records over {} verified bytes, chain {:#018x}",
        parsed.records.len(),
        parsed.valid_len,
        parsed.chain
    );
    match strict_err {
        None => {
            let _ = writeln!(out, "integrity: intact");
        }
        Some(e) => {
            let _ = writeln!(
                out,
                "integrity: TORN ({} trailing bytes unverified: {e})",
                bytes.len() as u64 - parsed.valid_len
            );
        }
    }
    Ok(out)
}

/// Accept exactly `clients` connections off a blocking listener and serve
/// each on its own thread through the shared handler (the portable
/// `--io threads` drive loop).
fn serve_threaded_conns<F>(
    listener: &std::net::TcpListener,
    clients: usize,
    handler: std::sync::Arc<F>,
) -> Result<(), CliError>
where
    F: Fn(&str) -> Reply + Send + Sync + 'static,
{
    let mut conns = Vec::new();
    for _ in 0..clients {
        let (stream, _) = listener
            .accept()
            .map_err(|e| CliError::Io(format!("accepting a client: {e}")))?;
        // One short frame per write: Nagle + delayed ACK would serialize
        // the request/response round trips at ~40ms each.
        stream
            .set_nodelay(true)
            .map_err(|e| CliError::Io(e.to_string()))?;
        let handler = std::sync::Arc::clone(&handler);
        conns.push(std::thread::spawn(move || -> std::io::Result<()> {
            let mut r = stream.try_clone()?;
            let mut w = stream;
            serve_connection(&mut r, &mut w, |req| handler(req))?;
            Ok(())
        }));
    }
    for c in conns {
        c.join()
            .map_err(|_| CliError::Io("a connection thread panicked".into()))?
            .map_err(|e| CliError::Io(format!("serving a connection: {e}")))?;
    }
    Ok(())
}

/// Join the synthetic driver threads, naming every client that failed so
/// a wedged or erroring drain exits nonzero with an actionable message
/// instead of a generic one.
fn join_drivers(
    drivers: Vec<(usize, std::thread::JoinHandle<std::io::Result<()>>)>,
) -> Result<(), CliError> {
    let mut failures = Vec::new();
    for (i, d) in drivers {
        match d.join() {
            Err(_) => failures.push(format!("client {i} panicked")),
            Ok(Err(e)) => failures.push(format!("client {i}: {e}")),
            Ok(Ok(())) => {}
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CliError::Io(failures.join("; ")))
    }
}

/// Self-driving TCP drain: bind (an ephemeral port unless `--port` pins
/// one), spawn `clients` synthetic client threads, and serve exactly that
/// many connections off the shared backend — on the epoll readiness loop
/// or a thread per connection.
fn serve_tcp_drive(
    backend: Backend,
    port: Option<u16>,
    clients: usize,
    use_epoll: bool,
) -> Result<Backend, CliError> {
    use std::net::TcpListener;
    use std::sync::Arc;
    let listener = TcpListener::bind(("127.0.0.1", port.unwrap_or(0)))
        .map_err(|e| CliError::Io(format!("binding the TCP listener: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Io(e.to_string()))?;
    eprintln!("[serving on {addr}]");
    let opts = LoopOptions {
        expected_clients: Some(clients),
    };
    if use_epoll {
        let drivers = spawn_drivers(addr, clients);
        serve_readiness_loop(listener, opts, |req, reply| backend.handle_into(req, reply))
            .map_err(|e| CliError::Io(format!("epoll transport: {e}")))?;
        join_drivers(drivers)?;
        Ok(backend)
    } else {
        let backend = Arc::new(backend);
        let handler = {
            let backend = Arc::clone(&backend);
            Arc::new(move |req: &str| backend.handle(req))
        };
        let drivers = spawn_drivers(addr, clients);
        serve_threaded_conns(&listener, clients, handler)?;
        join_drivers(drivers)?;
        Arc::try_unwrap(backend)
            .map_err(|_| CliError::Io("backend still shared after the drain".into()))
    }
}

/// Spawn the enumerated synthetic client threads for a self-driving drain.
fn spawn_drivers(
    addr: std::net::SocketAddr,
    clients: usize,
) -> Vec<(usize, std::thread::JoinHandle<std::io::Result<()>>)> {
    (0..clients)
        .map(|i| (i, std::thread::spawn(move || drive_client(addr))))
        .collect()
}

/// One synthetic client: request work, return it immediately, repeat until
/// the store reports `drained`, then hang up (a clean EOF).
fn drive_client(addr: std::net::SocketAddr) -> std::io::Result<()> {
    use std::io::Write as _;
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut r = stream.try_clone()?;
    let mut w = stream;
    let mut exchange = |req: &str| -> std::io::Result<Option<String>> {
        write_frame(&mut w, req)?;
        w.flush()?;
        match read_frame(&mut r)? {
            Frame::Message(bytes) => Ok(Some(String::from_utf8_lossy(&bytes).into_owned())),
            _ => Ok(None),
        }
    };
    loop {
        let Some(reply) = exchange("request-work")? else {
            return Ok(());
        };
        if let Some(rest) = reply.strip_prefix("work ") {
            let mut parts = rest.split_whitespace();
            let (Some(task), Some(copy)) = (parts.next(), parts.next()) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "malformed work frame",
                ));
            };
            // A return can race a timeout; the stale-return `err` frame is
            // an expected answer, not a failure.
            let _ = exchange(&format!("return-result {task} {copy}"))?;
        } else if reply == "idle" {
            std::thread::yield_now();
        } else {
            return Ok(()); // drained
        }
    }
}

/// Daemon mode: listen on a pinned port until a client sends `shutdown`.
fn serve_tcp_daemon(backend: Backend, port: u16, use_epoll: bool) -> Result<Backend, CliError> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| CliError::Io(format!("binding the TCP listener: {e}")))?;
    serve_daemon_on(listener, backend, use_epoll)
}

/// The daemon's serve loop, split from the bind so tests can listen on an
/// OS-assigned port.  `shutdown` from any client stops the loop: the epoll
/// loop stops accepting and drains its remaining connections itself, and
/// the threaded fallback polls a nonblocking listener against the stop
/// flag — no throwaway self-connection needed to unblock an `accept`.
fn serve_daemon_on(
    listener: std::net::TcpListener,
    backend: Backend,
    use_epoll: bool,
) -> Result<Backend, CliError> {
    use std::sync::Arc;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Io(e.to_string()))?;
    eprintln!("[serving on {addr}; send `shutdown` to stop]");
    let opts = LoopOptions {
        expected_clients: None,
    };
    if use_epoll {
        serve_readiness_loop(listener, opts, |req, reply| backend.handle_into(req, reply))
            .map_err(|e| CliError::Io(format!("epoll transport: {e}")))?;
        Ok(backend)
    } else {
        let backend = Arc::new(backend);
        let handler = {
            let backend = Arc::clone(&backend);
            Arc::new(move |req: &str| backend.handle(req))
        };
        serve_daemon_threads(&listener, handler)?;
        Arc::try_unwrap(backend)
            .map_err(|_| CliError::Io("backend still shared after shutdown".into()))
    }
}

/// The threaded daemon accept loop: poll a nonblocking listener, serve
/// each connection on its own thread, and stop accepting once any of them
/// sees `shutdown`.  In-flight connections are joined (drained), exactly
/// like the epoll loop's shutdown semantics.
fn serve_daemon_threads<F>(
    listener: &std::net::TcpListener,
    handler: std::sync::Arc<F>,
) -> Result<(), CliError>
where
    F: Fn(&str) -> Reply + Send + Sync + 'static,
{
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Io(e.to_string()))?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<std::io::Result<()>>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is nonblocking but each connection is served
                // by a blocking read loop on its own thread.
                stream
                    .set_nonblocking(false)
                    .map_err(|e| CliError::Io(e.to_string()))?;
                let _ = stream.set_nodelay(true);
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                conns.push(std::thread::spawn(move || -> std::io::Result<()> {
                    let mut r = stream.try_clone()?;
                    let mut w = stream;
                    let end = serve_connection(&mut r, &mut w, |req| handler(req))?;
                    if end == SessionEnd::Shutdown {
                        stop.store(true, Ordering::SeqCst);
                    }
                    Ok(())
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(CliError::Io(format!("accepting a client: {e}"))),
        }
    }
    for c in conns {
        c.join()
            .map_err(|_| CliError::Io("a connection thread panicked".into()))?
            .map_err(|e| CliError::Io(format!("serving a connection: {e}")))?;
    }
    Ok(())
}

fn solve_sm(
    tasks: u64,
    epsilon: f64,
    dim: usize,
    min_precompute: bool,
    mps: Option<&str>,
) -> Result<String, CliError> {
    let sol = if min_precompute {
        AssignmentMinimizing::solve_min_precompute(tasks, epsilon, dim)?
    } else {
        AssignmentMinimizing::solve(tasks, epsilon, dim)?
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "S_{dim} at N = {}, eps = {epsilon}{}",
        inum(tasks),
        if min_precompute {
            " (min-precompute refinement)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "objective: {:.1} assignments (factor {:.4}); precompute: {:.1} tasks; {} pivots",
        sol.objective(),
        sol.objective() / tasks as f64,
        sol.precompute_required(),
        sol.pivots()
    );
    let mut table = Table::new(&["multiplicity", "tasks"]);
    table.numeric();
    for (i, w) in sol.distribution().iter() {
        table.row(&[&i.to_string(), &fnum(w, 2)]);
    }
    out.push_str(&table.render());
    if let Some(path) = mps {
        // Rebuild the LP for export (the solver does not retain it).
        let mut lp = redundancy_lp::Problem::new(redundancy_lp::Sense::Minimize);
        let vars: Vec<_> = (1..=dim)
            .map(|i| lp.add_variable(format!("x{i}")))
            .collect();
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective(*v, (i + 1) as f64);
        }
        let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&cover, redundancy_lp::Relation::Ge, tasks as f64);
        for k in 1..dim {
            let mut terms = vec![(vars[k - 1], -epsilon)];
            for i in (k + 1)..=dim {
                terms.push((
                    vars[i - 1],
                    (1.0 - epsilon) * redundancy_stats::special::binomial(i as u64, k as u64),
                ));
            }
            lp.add_constraint(&terms, redundancy_lp::Relation::Ge, 0.0);
        }
        let doc = redundancy_lp::write_mps(&lp, &format!("S{dim}"));
        std::fs::write(path, doc).map_err(|e| CliError::Io(e.to_string()))?;
        let _ = writeln!(out, "[LP exported to {path}]");
    }
    Ok(out)
}

fn certify(tasks: u64, epsilon: f64, max_dim: usize) -> Result<String, CliError> {
    if max_dim < 2 {
        return Err(CliError::Invalid(format!(
            "--max-dim: S_m needs at least two multiplicities, got {max_dim}"
        )));
    }
    let certs = certify_sweep(tasks, epsilon, 2..=max_dim)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exact-rational certification of S_m, m = 2..={max_dim}, at N = {}, eps = {epsilon}",
        inum(tasks)
    );
    let mut table = Table::new(&[
        "m",
        "exact objective",
        "f64 objective",
        "rel. gap",
        "pivots",
    ]);
    table.numeric();
    for c in &certs {
        table.row(&[
            &c.dimension.to_string(),
            &format!("{}", c.objective),
            &fnum(c.f64_objective, 4),
            &format!("{:.2e}", c.relative_gap),
            &c.exact_pivots.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "every row passed the four-condition optimality certificate \
(primal + dual feasibility, complementary slackness, strong duality) in exact arithmetic"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn run(parts: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        dispatch(&parse_args(&argv).unwrap())
    }

    #[test]
    fn plan_balanced_reports_guarantee() {
        let out = run(&["plan", "--tasks", "10000", "--epsilon", "0.75"]).unwrap();
        assert!(out.contains("balanced"));
        assert!(out.contains("Tail") || out.contains("tail"));
        assert!(out.contains("effective detection"));
    }

    #[test]
    fn plan_with_proportion_boosts() {
        let out = run(&[
            "plan",
            "--tasks",
            "10000",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
        ])
        .unwrap();
        assert!(out.contains("boosted"), "{out}");
    }

    #[test]
    fn plan_json_round_trips() {
        let path = std::env::temp_dir().join("cli_plan_test.json");
        let p = path.to_string_lossy().into_owned();
        let out = run(&["plan", "--tasks", "5000", "--epsilon", "0.5", "--json", &p]).unwrap();
        assert!(out.contains("written"));
        let body = std::fs::read_to_string(&path).unwrap();
        let plan: RealizedPlan = redundancy_json::from_str(&body).unwrap();
        assert_eq!(plan.n_tasks(), 5000);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_all_schemes() {
        for scheme in ["balanced", "gs", "simple", "extended"] {
            let out = run(&[
                "analyze",
                "--scheme",
                scheme,
                "--tasks",
                "10000",
                "--epsilon",
                "0.5",
                "--proportion",
                "0.1",
            ])
            .unwrap();
            assert!(out.contains("effective detection"), "{scheme}: {out}");
        }
    }

    #[test]
    fn advise_prefers_balanced_under_adversary() {
        let out = run(&[
            "advise",
            "--tasks",
            "100000",
            "--epsilon",
            "0.5",
            "--adversary",
            "0.1",
        ])
        .unwrap();
        assert!(out.contains("Balanced"), "{out}");
    }

    #[test]
    fn simulate_reports_rates() {
        let out = run(&[
            "simulate",
            "--tasks",
            "2000",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.1",
            "--campaigns",
            "3",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("95% CI"), "{out}");
        assert!(out.contains("wrong results accepted"));
    }

    #[test]
    fn simulate_zero_adversary_notes_no_attacks() {
        let out = run(&[
            "simulate",
            "--tasks",
            "500",
            "--epsilon",
            "0.5",
            "--campaigns",
            "1",
        ])
        .unwrap();
        assert!(out.contains("no attacks"), "{out}");
    }

    #[test]
    fn solve_sm_and_mps_export() {
        let path = std::env::temp_dir().join("cli_sm_test.mps");
        let p = path.to_string_lossy().into_owned();
        let out = run(&[
            "solve-sm",
            "--tasks",
            "100000",
            "--epsilon",
            "0.5",
            "--dim",
            "5",
            "--mps",
            &p,
        ])
        .unwrap();
        assert!(out.contains("602"), "S_5 precompute anchor missing: {out}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("ENDATA"));
        // Round trip: the exported LP re-solves to the same objective.
        let reparsed = redundancy_lp::parse_mps(&doc).unwrap();
        let re_obj = reparsed.solve().unwrap().objective;
        assert!((re_obj - 138_554.2).abs() < 1.0, "{re_obj}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn solve_sm_min_precompute_flag() {
        let base = run(&[
            "solve-sm",
            "--tasks",
            "100000",
            "--epsilon",
            "0.5",
            "--dim",
            "6",
        ])
        .unwrap();
        let refined = run(&[
            "solve-sm",
            "--tasks",
            "100000",
            "--epsilon",
            "0.5",
            "--dim",
            "6",
            "--min-precompute",
        ])
        .unwrap();
        assert!(base.contains("1923"), "{base}");
        assert!(refined.contains("refinement"), "{refined}");
    }

    #[test]
    fn faults_sweep_reports_degradation() {
        let out = run(&[
            "faults",
            "--tasks",
            "2000",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.15",
            "--campaigns",
            "4",
            "--seed",
            "11",
            "--drop-rate",
            "0.6",
            "--steps",
            "2",
            "--retries",
            "0",
        ])
        .unwrap();
        assert!(out.contains("fault sweep"), "{out}");
        assert!(out.contains("closed-form detection"), "{out}");
        assert!(out.contains("drop rate"), "{out}");
        // The zero-fault row delivers everything.
        assert!(out.contains("1.0000"), "{out}");
    }

    #[test]
    fn faults_sweep_is_deterministic() {
        let argv = [
            "faults",
            "--tasks",
            "1000",
            "--epsilon",
            "0.5",
            "--campaigns",
            "3",
            "--seed",
            "5",
            "--steps",
            "2",
        ];
        assert_eq!(run(&argv).unwrap(), run(&argv).unwrap());
    }

    #[test]
    fn churn_sweep_reports_drift() {
        let out = run(&[
            "churn",
            "--tasks",
            "800",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.15",
            "--campaigns",
            "3",
            "--seed",
            "11",
            "--workers",
            "120",
            "--horizon",
            "600",
            "--census-interval",
            "200",
            "--steps",
            "2",
        ])
        .unwrap();
        assert!(out.contains("churn sweep"), "{out}");
        assert!(out.contains("closed-form detection"), "{out}");
        assert!(out.contains("leave rate"), "{out}");
        assert!(out.contains("realized factor"), "{out}");
    }

    #[test]
    fn churn_sweep_is_deterministic_and_thread_invariant() {
        let base = [
            "churn",
            "--tasks",
            "500",
            "--epsilon",
            "0.5",
            "--campaigns",
            "2",
            "--seed",
            "5",
            "--workers",
            "80",
            "--horizon",
            "400",
            "--census-interval",
            "200",
            "--steps",
            "2",
        ];
        let first = run(&base).unwrap();
        assert_eq!(first, run(&base).unwrap());
        let mut pinned: Vec<&str> = base.to_vec();
        pinned.extend_from_slice(&["--threads", "1"]);
        let mut wide: Vec<&str> = base.to_vec();
        wide.extend_from_slice(&["--threads", "4"]);
        assert_eq!(run(&pinned).unwrap(), run(&wide).unwrap());
    }

    #[test]
    fn churn_soak_prints_matching_checksums_for_equal_seeds() {
        let argv = [
            "churn",
            "--soak",
            "--workers",
            "300",
            "--horizon",
            "4000",
            "--tasks",
            "200",
            "--seed",
            "9",
        ];
        let a = run(&argv).unwrap();
        let b = run(&argv).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("checksum: 0x"), "{a}");
        assert!(a.contains("events:"), "{a}");
        let mut other: Vec<&str> = argv.to_vec();
        let last = other.len() - 1;
        other[last] = "10";
        assert_ne!(run(&other).unwrap(), a, "seed must change the checksum");
    }

    /// Pull one counter out of a stats dump embedded in a report.
    fn stat(out: &str, key: &str) -> u64 {
        out.lines()
            .find_map(|l| l.strip_prefix(&format!("{key} ")))
            .unwrap_or_else(|| panic!("no `{key}` line in {out}"))
            .parse()
            .unwrap()
    }

    #[test]
    fn serve_default_drain_reports_the_oracle_verdict() {
        let argv = [
            "serve",
            "--tasks",
            "600",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--seed",
            "9",
            "--shards",
            "2",
        ];
        let out = run(&argv).unwrap();
        assert!(out.contains("serve: balanced over 600 tasks"), "{out}");
        assert_eq!(stat(&out, "tasks-completed"), stat(&out, "tasks-total"));
        assert_eq!(stat(&out, "in-flight"), 0);
        assert!(
            out.contains("batched-kernel oracle: bit-identical"),
            "{out}"
        );
        assert!(out.contains("checksum 0x"), "{out}");
        // Deterministic: same seed, same bytes; shard count changes nothing.
        assert_eq!(out, run(&argv).unwrap());
        let mut resharded = argv;
        resharded[10] = "4";
        let a: Vec<&str> = out.lines().filter(|l| !l.contains("shard")).collect();
        let b_out = run(&resharded).unwrap();
        let b: Vec<&str> = b_out.lines().filter(|l| !l.contains("shard")).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn serve_concurrent_tcp_clients_drain_to_the_same_stats() {
        // A timeout that can never fire makes the concurrent drain's final
        // stats interleaving-invariant, hence byte-identical across runs.
        let argv = [
            "serve",
            "--tasks",
            "400",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--seed",
            "9",
            "--clients",
            "4",
            "--timeout",
            "1000000000",
        ];
        let a = run(&argv).unwrap();
        assert!(a.contains("drained by 4 concurrent TCP clients"), "{a}");
        assert_eq!(stat(&a, "tasks-completed"), stat(&a, "tasks-total"));
        assert_eq!(stat(&a, "in-flight"), 0);
        assert_eq!(stat(&a, "timeouts"), 0);
        assert_eq!(a, run(&argv).unwrap());
    }

    #[test]
    fn serve_daemon_serves_a_scripted_tcp_client_until_shutdown() {
        use redundancy_sim::serve::{decode_frames, script_frames};
        let mut combos = vec![(StreamMode::Single, false), (StreamMode::PerShard, false)];
        if epoll::available() {
            combos.push((StreamMode::Single, true));
            combos.push((StreamMode::PerShard, true));
        }
        for (streams, use_epoll) in combos {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let client = std::thread::spawn(move || {
                use std::io::{Read as _, Write as _};
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                stream
                    .write_all(&script_frames(&[
                        "request-work",
                        "stats",
                        "bogus-verb",
                        "shutdown",
                    ]))
                    .unwrap();
                let mut bytes = Vec::new();
                stream.read_to_end(&mut bytes).unwrap();
                decode_frames(&bytes)
            });
            let plan = build_plan(SchemeName::Balanced, 200, 0.5, None, 0.0).unwrap();
            let specs = redundancy_sim::task::expand_plan(&plan);
            let campaign = CampaignConfig::new(
                AdversaryModel::AssignmentFraction { p: 0.2 },
                CheatStrategy::AtLeast { min_copies: 1 },
            );
            let (backend, _) = make_backend(
                &specs,
                &campaign,
                &ServeConfig::new(2),
                7,
                streams,
                None,
                SyncPolicy::Batch,
                false,
            )
            .unwrap();
            let run = serve_daemon_on(listener, backend, use_epoll)
                .unwrap()
                .finish(None)
                .unwrap();
            let tag = format!("{streams:?} epoll={use_epoll}");
            let replies = client.join().unwrap();
            assert_eq!(replies.len(), 4, "{tag}: {replies:?}");
            assert!(replies[0].starts_with("work "), "{tag}: {replies:?}");
            assert!(replies[1].contains("tasks-total 201"), "{tag}: {replies:?}");
            assert_eq!(replies[2], "err unknown-verb bogus-verb", "{tag}");
            assert_eq!(replies[3], "bye", "{tag}");
            assert_eq!(run.stats.issued, 1, "{tag}");
            assert_eq!(run.stats.in_flight, 1, "{tag}");
            assert_eq!(
                run.store.is_some(),
                streams == StreamMode::PerShard,
                "{tag}"
            );
        }
    }

    #[test]
    fn serve_per_shard_default_drain_reports_the_sharded_oracle() {
        let argv = [
            "serve",
            "--tasks",
            "600",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--seed",
            "9",
            "--shards",
            "2",
            "--streams",
            "per-shard",
        ];
        let out = run(&argv).unwrap();
        assert!(out.contains("streams per-shard"), "{out}");
        assert!(
            out.contains("sharded-stream oracle: bit-identical"),
            "{out}"
        );
        assert_eq!(stat(&out, "tasks-completed"), stat(&out, "tasks-total"));
        assert_eq!(stat(&out, "in-flight"), 0);
        // Deterministic: same configuration, same bytes.
        assert_eq!(out, run(&argv).unwrap());
    }

    #[test]
    fn serve_per_shard_tcp_drive_is_invariant_to_clients_and_io() {
        // With per-shard streams and a timeout that can never fire, the
        // drained report is a pure function of (seed, shard count): the
        // client count and the io transport must not change a byte of it
        // beyond the `drained by N` line.
        let base = |clients: &'static str, io: &'static str| {
            vec![
                "serve",
                "--tasks",
                "300",
                "--epsilon",
                "0.5",
                "--proportion",
                "0.2",
                "--seed",
                "9",
                "--shards",
                "2",
                "--streams",
                "per-shard",
                "--timeout",
                "1000000000",
                "--clients",
                clients,
                "--io",
                io,
            ]
        };
        let strip = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| !l.starts_with("drained by "))
                .map(str::to_owned)
                .collect()
        };
        let two = run(&base("2", "threads")).unwrap();
        let eight = run(&base("8", "threads")).unwrap();
        assert!(
            two.contains("sharded-stream oracle: bit-identical"),
            "{two}"
        );
        assert_eq!(strip(&two), strip(&eight));
        // Byte-identical across reruns of the same ladder point.
        assert_eq!(eight, run(&base("8", "threads")).unwrap());
        if epoll::available() {
            let epolled = run(&base("8", "epoll")).unwrap();
            assert_eq!(epolled, eight, "epoll and threaded reports must agree");
        }
    }

    #[test]
    fn serve_json_report_sums_per_shard_cells() {
        let path = std::env::temp_dir().join(format!("serve_report_{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_owned();
        let argv = [
            "serve",
            "--tasks",
            "300",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--seed",
            "9",
            "--shards",
            "4",
            "--streams",
            "per-shard",
            "--timeout",
            "1000000000",
            "--clients",
            "4",
            "--json",
            &path_str,
        ];
        run(&argv).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let doc = redundancy_json::parse(&body).unwrap();
        assert_eq!(doc.field_str("schema").unwrap(), "serve-report/v1");
        assert_eq!(doc.field_u64("shards").unwrap(), 4);
        assert_eq!(doc.field_u64("clients").unwrap(), 4);
        assert_eq!(doc.field_str("streams").unwrap(), "per-shard");
        assert!(doc.field_str("stream_checksum").unwrap().starts_with("0x"));
        let totals = doc.field("totals").unwrap();
        let cells = doc.field_arr("per_shard").unwrap();
        assert_eq!(cells.len(), 4);
        for key in ["issued", "returned", "total_copies", "completed_tasks"] {
            let sum: u64 = cells.iter().map(|c| c.field_u64(key).unwrap()).sum();
            assert_eq!(totals.field_u64(key).unwrap(), sum, "{key}");
        }
        assert_eq!(
            totals.field_u64("issued").unwrap(),
            totals.field_u64("total_copies").unwrap(),
            "a full drain with an unreachable timeout issues every copy once"
        );
        for (s, cell) in cells.iter().enumerate() {
            assert_eq!(cell.field_u64("shard").unwrap(), s as u64);
            assert!(cell.field_str("checksum").unwrap().starts_with("0x"));
        }
    }

    #[test]
    fn serve_journal_roundtrip_inspect_and_recover() {
        let path = std::env::temp_dir().join(format!("serve_journal_{}.log", std::process::id()));
        let path_str = path.to_str().unwrap().to_owned();
        let base = [
            "serve",
            "--tasks",
            "400",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--seed",
            "11",
            "--shards",
            "2",
            "--timeout",
            "6",
            "--journal",
            &path_str,
        ];
        let journaled = run(&base).unwrap();
        assert!(
            journaled.contains("batched-kernel oracle: bit-identical"),
            "{journaled}"
        );
        assert!(
            journaled.lines().any(|l| l.starts_with("journal: ")),
            "{journaled}"
        );
        // The journal lines are a pure suffix: everything above them is
        // byte-identical to the journal-free report.
        let plain = run(&base[..base.len() - 2]).unwrap();
        let stripped: String = journaled
            .lines()
            .filter(|l| !l.starts_with("journal"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, plain);
        // The completed journal inspects as intact, records decoded.
        let inspect = run(&["journal-inspect", "--journal", &path_str]).unwrap();
        assert!(inspect.contains("integrity: intact"), "{inspect}");
        assert!(inspect.contains("header seed=11"), "{inspect}");
        assert!(inspect.contains("tick drained"), "{inspect}");
        // --recover replays it to the drained store: re-draining changes
        // nothing and the stats block matches the original run.
        let mut rec_argv: Vec<&str> = base.to_vec();
        rec_argv.push("--recover");
        let recovered = run(&rec_argv).unwrap();
        assert!(
            recovered
                .lines()
                .any(|l| l.starts_with("journal recovered: ")),
            "{recovered}"
        );
        let sans_journal = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| !l.starts_with("journal"))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(sans_journal(&recovered), sans_journal(&journaled));
        // Recovering under a different configuration is a named error.
        let mut wrong: Vec<&str> = rec_argv.clone();
        wrong[12] = "9"; // the --timeout value
        let err = run(&wrong).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("different session")),
            "{err:?}"
        );
        // A torn tail is detected and named by the inspector.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let inspect = run(&["journal-inspect", "--journal", &path_str]).unwrap();
        assert!(inspect.contains("integrity: TORN"), "{inspect}");
        // ...and --recover truncates it away and still drains to the
        // same stats.
        let retorn = run(&rec_argv).unwrap();
        assert!(retorn.contains("torn tail truncated"), "{retorn}");
        assert_eq!(sans_journal(&retorn), sans_journal(&journaled));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_journal_per_shard_report_carries_the_journal_member() {
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("serve_journal_ps_{}.log", std::process::id()));
        let report = dir.join(format!("serve_journal_ps_{}.json", std::process::id()));
        let (journal_str, report_str) = (
            journal.to_str().unwrap().to_owned(),
            report.to_str().unwrap().to_owned(),
        );
        let out = run(&[
            "serve",
            "--tasks",
            "300",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.2",
            "--seed",
            "9",
            "--shards",
            "2",
            "--streams",
            "per-shard",
            "--journal",
            &journal_str,
            "--sync",
            "off",
            "--json",
            &report_str,
        ])
        .unwrap();
        assert!(
            out.contains("sharded-stream oracle: bit-identical"),
            "{out}"
        );
        assert!(out.contains("(sync off)"), "{out}");
        let body = std::fs::read_to_string(&report).unwrap();
        let doc = redundancy_json::parse(&body).unwrap();
        let j = doc.field("journal").unwrap();
        assert_eq!(j.field_str("path").unwrap(), journal_str);
        assert_eq!(j.field_str("sync").unwrap(), "off");
        assert_eq!(j.field_u64("synced").unwrap(), 0);
        assert!(j.field_u64("records").unwrap() > 0);
        assert!(j.field_str("replay_checksum").unwrap().starts_with("0x"));
        std::fs::remove_file(&journal).ok();
        std::fs::remove_file(&report).ok();
    }

    #[test]
    fn serve_json_requires_per_shard_streams() {
        let err = run(&["serve", "--tasks", "100", "--json", "x.json"]).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("--json")),
            "{err:?}"
        );
        let err = run(&[
            "serve",
            "--tasks",
            "100",
            "--streams",
            "per-shard",
            "--stdio",
            "--json",
            "x.json",
        ])
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("--stdio")),
            "{err:?}"
        );
    }

    #[test]
    fn certify_reports_exact_objectives() {
        let out = run(&[
            "certify",
            "--tasks",
            "100000",
            "--epsilon",
            "0.5",
            "--max-dim",
            "3",
        ])
        .unwrap();
        // S₂ at ε = ½ has the exact optimum 4N/3 = 400000/3.
        assert!(out.contains("400000/3"), "{out}");
        assert!(out.contains("optimality certificate"), "{out}");
    }

    #[test]
    fn certify_rejects_tiny_dimension() {
        let err = run(&["certify", "--max-dim", "1"]).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("--max-dim")),
            "{err:?}"
        );
    }

    #[test]
    fn zero_chunk_size_is_invalid_and_names_the_flag() {
        for argv in [
            vec![
                "simulate",
                "--tasks",
                "100",
                "--epsilon",
                "0.5",
                "--chunk-size",
                "0",
            ],
            vec![
                "faults",
                "--tasks",
                "100",
                "--epsilon",
                "0.5",
                "--chunk-size",
                "0",
            ],
        ] {
            let err = run(&argv).unwrap_err();
            assert!(
                matches!(&err, CliError::Invalid(m) if m.contains("--chunk-size")),
                "{err:?}"
            );
        }
    }

    #[test]
    fn absurd_thread_count_is_invalid_and_names_the_flag() {
        for argv in [
            vec![
                "simulate",
                "--tasks",
                "100",
                "--epsilon",
                "0.5",
                "--threads",
                "99999",
            ],
            vec!["bench", "--smoke", "--threads", "99999"],
        ] {
            let err = run(&argv).unwrap_err();
            assert!(
                matches!(&err, CliError::Invalid(m) if m.contains("--threads")),
                "{err:?}"
            );
        }
    }

    #[test]
    fn faults_sweep_thread_budget_does_not_change_the_table() {
        let base = [
            "faults",
            "--tasks",
            "1000",
            "--epsilon",
            "0.5",
            "--campaigns",
            "3",
            "--seed",
            "5",
            "--steps",
            "2",
        ];
        let mut pinned: Vec<&str> = base.to_vec();
        pinned.extend_from_slice(&["--threads", "1"]);
        let mut wide: Vec<&str> = base.to_vec();
        wide.extend_from_slice(&["--threads", "8"]);
        assert_eq!(run(&pinned).unwrap(), run(&wide).unwrap());
    }

    #[test]
    fn custom_chunk_size_changes_chunking_not_semantics() {
        let base = [
            "simulate",
            "--tasks",
            "500",
            "--epsilon",
            "0.5",
            "--proportion",
            "0.1",
            "--campaigns",
            "4",
            "--seed",
            "7",
        ];
        let mut with_chunk: Vec<&str> = base.to_vec();
        with_chunk.extend_from_slice(&["--chunk-size", "1"]);
        // Both runs succeed; chunking changes seed granularity, so the
        // empirical numbers may differ, but the report shape is identical.
        let a = run(&base).unwrap();
        let b = run(&with_chunk).unwrap();
        assert!(a.contains("95% CI") && b.contains("95% CI"));
    }

    #[test]
    fn help_text_everywhere() {
        for topic in [
            None,
            Some("plan"),
            Some("analyze"),
            Some("advise"),
            Some("simulate"),
            Some("faults"),
            Some("churn"),
            Some("serve"),
            Some("solve-sm"),
            Some("certify"),
            Some("bench"),
            Some("repro"),
            Some("journal-inspect"),
            Some("unknown"),
        ] {
            let out = help(topic);
            assert!(out.contains("redundancy"), "{topic:?}");
        }
    }

    #[test]
    fn repro_list_names_every_registry_entry() {
        let out = run(&["repro", "--list"]).unwrap();
        for exhibit in redundancy_repro::registry() {
            assert!(out.contains(exhibit.name()), "{} missing", exhibit.name());
        }
    }

    #[test]
    fn repro_rejects_contradictory_and_unknown_requests() {
        let err = run(&["repro", "theory_checks", "--all"]).unwrap_err();
        assert!(err.to_string().contains("--all"), "{err}");
        let err = run(&["repro", "no_such_exhibit"]).unwrap_err();
        assert!(err.to_string().contains("unknown exhibit"), "{err}");
        let err = run(&["repro"]).unwrap_err();
        assert!(err.to_string().contains("repro --list"), "{err}");
    }

    #[test]
    fn repro_exhibit_output_matches_the_registry_emitter() {
        // fig4 is deterministic and cheap: no Monte Carlo, no LP sweep.
        let out = run(&["repro", "fig4_assignment_table"]).unwrap();
        let entry = redundancy_repro::find("fig4_assignment_table").unwrap();
        let ctx = redundancy_repro::ExhibitCtx::default();
        assert_eq!(out, entry.run(&ctx).render_text());
        assert!(out.starts_with("=== Figure 4 ===\n"));
    }

    #[test]
    fn unreachable_boost_is_an_error() {
        let argv: Vec<String> = [
            "plan",
            "--tasks",
            "100",
            "--epsilon",
            "0.9999999999999999",
            "--proportion",
            "0.99",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        // ε parses inside (0,1) but boosting pushes it to 1.
        let parsed = parse_args(&argv);
        if let Ok(cmd) = parsed {
            assert!(dispatch(&cmd).is_err());
        }
    }
}
