#![warn(missing_docs)]

//! # redundancy-cli — the `redundancy` command
//!
//! A supervisor-facing command-line tool over the whole workspace:
//!
//! ```text
//! redundancy plan     --scheme balanced --tasks 1000000 --epsilon 0.75 [--json plan.json]
//! redundancy analyze  --tasks 1000000 --epsilon 0.75 [--proportion 0.1] [--scheme gs]
//! redundancy advise   --tasks 200000 --epsilon 0.5 --adversary 0.1 --precompute-budget 100
//! redundancy simulate --tasks 20000 --epsilon 0.5 --proportion 0.1 --campaigns 30 [--seed 1]
//! redundancy faults   --tasks 10000 --epsilon 0.5 --drop-rate 0.5 --steps 5 [--retries 3]
//! redundancy churn    --tasks 2000 --epsilon 0.5 --leave-rate 0.004 --steps 4 [--soak]
//! redundancy serve    --tasks 2000 --epsilon 0.5 --proportion 0.2 [--stdio | --clients 8]
//! redundancy solve-sm --tasks 100000 --epsilon 0.5 --dim 16 [--mps out.mps] [--min-precompute]
//! redundancy certify  --tasks 100000 --epsilon 0.5 --max-dim 26
//! redundancy bench    --smoke --out BENCH_report.json [--baseline BENCH_baseline.json]
//! redundancy repro    fig2_minimizing_table [--json report.json] | --list | --all
//! ```
//!
//! Every command is a pure function from parsed arguments to a report
//! string (plus optional file side effects), so the whole surface is unit
//! tested without spawning processes.

pub mod args;
pub mod bench;
pub mod commands;

pub use args::{parse_args, ArgError, Command};

/// Entry point shared by `main` and the tests: parse and dispatch.
pub fn run(argv: &[String]) -> Result<String, String> {
    let command = parse_args(argv).map_err(|e| e.to_string())?;
    commands::dispatch(&command).map_err(|e| e.to_string())
}

/// The top-level usage text.
pub const USAGE: &str = "\
redundancy — optimal redundancy strategies for distributed computations
           (Szajda, Lawson, Owen; IEEE CLUSTER 2005)

USAGE:
    redundancy <COMMAND> [OPTIONS]

COMMANDS:
    plan       Build a deployable task-distribution plan
    analyze    Detection probabilities and costs for a scheme
    advise     Pick the cheapest scheme for operational requirements
    simulate   Monte-Carlo campaign simulation with a colluding adversary
    faults     Detection-probability sweep under drops, stragglers, retries
    churn      Detection/redundancy drift under a dynamic worker population
    serve      Live supervisor: serve assignments over the framed protocol
    solve-sm   Solve an assignment-minimizing LP system S_m
    certify    Certify S_m optima with the exact-rational LP oracle
    bench      Pinned performance fixtures with a BENCH JSON report
    repro      Regenerate the paper's tables and figures from the registry
    journal-inspect  List a serve journal's records and verify its integrity
    help       Show this message

COMMON OPTIONS:
    --tasks <N>            number of tasks (required by most commands)
    --epsilon <0..1>       detection threshold
    --scheme <NAME>        balanced | golle-stubblebine | simple | extended
    --proportion <0..1>    adversary's assignment share (default 0)
    --seed <U64>           RNG seed for randomized commands

Run `redundancy help <COMMAND>` for command-specific options.
";
