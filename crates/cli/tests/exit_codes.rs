//! Process-level contract of the `redundancy` binary: exit code 0 with the
//! report on stdout for valid invocations, exit code 2 with an `error:`
//! line on stderr for invalid ones.

use std::process::Command;

fn redundancy(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_redundancy"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn valid_faults_sweep_exits_zero() {
    let out = redundancy(&[
        "faults",
        "--tasks",
        "200",
        "--epsilon",
        "0.5",
        "--campaigns",
        "1",
        "--steps",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fault sweep"), "{stdout}");
    assert!(out.stderr.is_empty());
}

#[test]
fn drop_rate_above_one_exits_two() {
    let out = redundancy(&[
        "faults",
        "--tasks",
        "200",
        "--epsilon",
        "0.5",
        "--drop-rate",
        "1.5",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.starts_with("error:"), "{stderr}");
    assert!(stderr.contains("--drop-rate"), "{stderr}");
}

#[test]
fn zero_timeout_exits_two() {
    let out = redundancy(&[
        "faults",
        "--tasks",
        "200",
        "--epsilon",
        "0.5",
        "--timeout",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--timeout"), "{stderr}");
}

#[test]
fn zero_chunk_size_exits_two_naming_the_flag() {
    let out = redundancy(&[
        "simulate",
        "--tasks",
        "200",
        "--epsilon",
        "0.5",
        "--chunk-size",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.starts_with("error:"), "{stderr}");
    assert!(stderr.contains("--chunk-size"), "{stderr}");
}

#[test]
fn unknown_command_exits_two() {
    let out = redundancy(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"), "{stderr}");
}
