//! Normalization of a modeling-form [`Problem`] into standard equality form.
//!
//! Standard form here means
//!
//! ```text
//! min cᵀx   subject to   A·x = b,   x ≥ 0,   b ≥ 0,
//! ```
//!
//! obtained by
//!
//! * negating the objective of a maximization problem,
//! * splitting each free variable into a difference of two non-negative ones,
//! * adding a slack (`≤`) or surplus (`≥`) column per inequality, and
//! * scaling rows so every right-hand side is non-negative.
//!
//! [`StandardForm::recover`] maps a standard-form solution back onto the
//! original variables, objective sense, and constraint duals.

use crate::dense::Matrix;
use crate::problem::{Problem, Relation, Sense, VarKind};
use crate::simplex::RawSolution;
use crate::solution::{Solution, Status};

/// How one standard-form column maps back to the original problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnOrigin {
    /// The column is the original variable `index` (or its positive part).
    Positive(usize),
    /// The column is the negative part of free variable `index`.
    Negative(usize),
    /// Slack or surplus column for constraint `index`.
    Slack(usize),
}

/// A problem normalized to `min cᵀx, A·x = b, x ≥ 0, b ≥ 0`.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Constraint matrix (m × n).
    pub a: Matrix,
    /// Right-hand side, all entries ≥ 0.
    pub b: Vec<f64>,
    /// Objective coefficients (minimization sense).
    pub c: Vec<f64>,
    /// Provenance of each column.
    pub origins: Vec<ColumnOrigin>,
    /// `-1.0` for rows whose sign was flipped to make `b ≥ 0`, else `+1.0`.
    pub row_scale: Vec<f64>,
    /// Whether the original problem was a maximization.
    pub maximized: bool,
}

impl StandardForm {
    /// Normalize `problem` (assumed validated) into standard form.
    pub fn from_problem(problem: &Problem) -> Self {
        let mut origins = Vec::new();
        // Column index of each original variable's positive part; negative
        // parts (for free variables) live at `neg_col[i]`.
        let mut pos_col = Vec::with_capacity(problem.variables.len());
        let mut neg_col = vec![None; problem.variables.len()];
        for (i, v) in problem.variables.iter().enumerate() {
            pos_col.push(origins.len());
            origins.push(ColumnOrigin::Positive(i));
            if v.kind == VarKind::Free {
                neg_col[i] = Some(origins.len());
                origins.push(ColumnOrigin::Negative(i));
            }
        }
        let slack_base = origins.len();
        let mut n_slacks = 0usize;
        for (ci, cons) in problem.constraints.iter().enumerate() {
            if cons.relation != Relation::Eq {
                origins.push(ColumnOrigin::Slack(ci));
                n_slacks += 1;
            }
        }
        let n = origins.len();
        let m = problem.constraints.len();
        let mut a = Matrix::zeros(m, n);
        let mut b = vec![0.0; m];
        let mut row_scale = vec![1.0; m];
        let mut slack_cursor = slack_base;
        let _ = n_slacks;
        for (ri, cons) in problem.constraints.iter().enumerate() {
            for &(vi, coeff) in &cons.terms {
                a[(ri, pos_col[vi])] += coeff;
                if let Some(nc) = neg_col[vi] {
                    a[(ri, nc)] -= coeff;
                }
            }
            match cons.relation {
                Relation::Le => {
                    a[(ri, slack_cursor)] = 1.0;
                    slack_cursor += 1;
                }
                Relation::Ge => {
                    a[(ri, slack_cursor)] = -1.0;
                    slack_cursor += 1;
                }
                Relation::Eq => {}
            }
            b[ri] = cons.rhs;
            if b[ri] < 0.0 {
                row_scale[ri] = -1.0;
                b[ri] = -b[ri];
                for c in 0..n {
                    a[(ri, c)] = -a[(ri, c)];
                }
            }
        }
        let maximized = problem.sense == Sense::Maximize;
        let mut c = vec![0.0; n];
        for (i, v) in problem.variables.iter().enumerate() {
            let coeff = if maximized { -v.objective } else { v.objective };
            c[pos_col[i]] = coeff;
            if let Some(nc) = neg_col[i] {
                c[nc] = -coeff;
            }
        }
        StandardForm {
            a,
            b,
            c,
            origins,
            row_scale,
            maximized,
        }
    }

    /// Number of standard-form columns.
    pub fn num_columns(&self) -> usize {
        self.origins.len()
    }

    /// Number of rows (constraints).
    pub fn num_rows(&self) -> usize {
        self.b.len()
    }

    /// Map a raw standard-form solution back to the original problem space.
    pub fn recover(&self, problem: &Problem, raw: RawSolution) -> Solution {
        let mut values = vec![0.0; problem.num_variables()];
        for (col, origin) in self.origins.iter().enumerate() {
            match *origin {
                ColumnOrigin::Positive(i) => values[i] += raw.x[col],
                ColumnOrigin::Negative(i) => values[i] -= raw.x[col],
                ColumnOrigin::Slack(_) => {}
            }
        }
        // Recompute the objective from original coefficients: cheap, and it
        // sidesteps sign bookkeeping entirely.
        let objective = problem
            .variables
            .iter()
            .zip(&values)
            .map(|(v, &x)| v.objective * x)
            .sum();
        // Undo row scaling on duals; a maximization problem's duals are the
        // negation of the minimized surrogate's.
        let duals = raw
            .duals
            .iter()
            .zip(&self.row_scale)
            .map(|(&y, &s)| {
                let y = y * s;
                if self.maximized {
                    -y
                } else {
                    y
                }
            })
            .collect();
        Solution {
            status: Status::Optimal,
            objective,
            values,
            duals,
            pivots: raw.pivots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn toy() -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_free_variable("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, -1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, -2.0);
        p.add_constraint(&[(y, 2.0)], Relation::Eq, 1.0);
        p
    }

    #[test]
    fn column_layout_and_slacks() {
        let sf = StandardForm::from_problem(&toy());
        // Columns: x, y+, y-, slack(c0), surplus(c1). Eq row adds none.
        assert_eq!(sf.num_columns(), 5);
        assert_eq!(sf.num_rows(), 3);
        assert_eq!(
            sf.origins,
            vec![
                ColumnOrigin::Positive(0),
                ColumnOrigin::Positive(1),
                ColumnOrigin::Negative(1),
                ColumnOrigin::Slack(0),
                ColumnOrigin::Slack(1),
            ]
        );
        // Row 0 (≤): slack +1.
        assert_eq!(sf.a[(0, 3)], 1.0);
        // Row 1 (≥ with negative rhs): flipped, so surplus -1 became +1 and
        // the x coefficient flipped to -1 with rhs +2.
        assert_eq!(sf.row_scale[1], -1.0);
        assert_eq!(sf.b[1], 2.0);
        assert_eq!(sf.a[(1, 0)], -1.0);
        assert_eq!(sf.a[(1, 4)], 1.0);
        // Free variable split shows up with opposite signs.
        assert_eq!(sf.a[(2, 1)], 2.0);
        assert_eq!(sf.a[(2, 2)], -2.0);
        assert_eq!(sf.c, vec![2.0, -1.0, 1.0, 0.0, 0.0]);
        assert!(!sf.maximized);
    }

    #[test]
    fn maximization_negates_costs() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective(x, 3.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        let sf = StandardForm::from_problem(&p);
        assert_eq!(sf.c[0], -3.0);
        assert!(sf.maximized);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Eq, 6.0);
        let sf = StandardForm::from_problem(&p);
        assert_eq!(sf.a[(0, 0)], 3.0);
    }
}
