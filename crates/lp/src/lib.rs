#![warn(missing_docs)]

//! # redundancy-lp — a dense two-phase simplex solver
//!
//! The CLUSTER 2005 paper *Toward an Optimal Redundancy Strategy for
//! Distributed Computations* derives its *assignment-minimizing*
//! distributions as optima of small linear programs (the systems `S_m` of
//! Section 3.2).  The authors used an unspecified LP package; this crate is
//! the from-scratch substrate that replaces it.
//!
//! The solver is a classical dense, tableau-based, two-phase primal simplex:
//!
//! * arbitrary `≤` / `≥` / `=` constraints and free or non-negative
//!   variables are normalized into standard equality form
//!   (`min cᵀx  s.t.  Ax = b, x ≥ 0, b ≥ 0`) by [`standard::StandardForm`];
//! * phase I minimizes the sum of artificial variables to find a basic
//!   feasible solution (or proves infeasibility);
//! * phase II minimizes the true objective, detecting unboundedness;
//! * [Bland's rule] is available (and automatically engaged after prolonged
//!   degeneracy) so the method provably terminates on every input.
//!
//! The LPs in this workspace are tiny — at most a few dozen variables — so a
//! dense `O(m·n)`-per-pivot tableau is both simple and more than fast enough;
//! every solve in the paper's Figure 2 sweep completes in well under a
//! millisecond.  Solutions carry enough information ([`Solution`]) for the
//! independent optimality audit in [`verify`].
//!
//! [Bland's rule]: https://en.wikipedia.org/wiki/Bland%27s_rule
//!
//! ## Quick example
//!
//! ```
//! use redundancy_lp::{Problem, Relation, Sense};
//!
//! // min  x + 2y   s.t.  x + y >= 4,  y <= 3,  x,y >= 0
//! let mut p = Problem::new(Sense::Minimize);
//! let x = p.add_variable("x");
//! let y = p.add_variable("y");
//! p.set_objective(x, 1.0);
//! p.set_objective(y, 2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
//! p.add_constraint(&[(y, 1.0)], Relation::Le, 3.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 4.0).abs() < 1e-9); // x = 4, y = 0
//! ```

pub mod dense;
pub mod error;
pub mod exact;
pub mod mps;
pub mod presolve;
pub mod problem;
pub mod simplex;
pub mod solution;
pub mod standard;
pub mod verify;

pub use error::LpError;
pub use exact::{solve_exact, ExactCertificate, ExactSolution};
pub use mps::{parse_mps, write_mps};
pub use presolve::{presolve, solve_with_presolve, PresolveStats, Reduction};
pub use problem::{Problem, Relation, Sense, VarId, VarKind};
pub use simplex::{PivotRule, SimplexOptions};
pub use solution::{Solution, Status};
pub use verify::{verify_solution, VerifyReport};

/// Default numerical tolerance used throughout the solver.
///
/// Chosen for well-scaled double-precision problems; callers solving badly
/// scaled systems should scale their data rather than loosen this.
pub const DEFAULT_TOL: f64 = 1e-9;
