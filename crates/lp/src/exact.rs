//! Exact-rational simplex oracle for certifying f64 optima.
//!
//! The floating-point solver in [`crate::simplex`] answers "what is the
//! optimum" quickly; this module answers "is that really the optimum" with a
//! proof.  [`solve_exact`] re-normalizes the same [`Problem`] into standard
//! equality form over ℚ (every `f64` datum is a dyadic rational, recovered
//! exactly by [`Rational::from_f64`]), runs a two-phase primal simplex under
//! Bland's rule in exact arithmetic, and then **independently certifies** the
//! result: primal feasibility, dual feasibility, complementary slackness and
//! strong duality are all re-checked in ℚ against the standard form the
//! solver never mutated.  A passing [`ExactCertificate`] is a mathematical
//! proof of optimality — no tolerance anywhere.
//!
//! The oracle targets the paper's regime (the `S_m` systems of Section 3.2,
//! a few dozen variables).  Exact pivoting can grow numerators beyond
//! `i128`; when that happens the solve reports
//! [`LpError::ArithmeticOverflow`] rather than silently losing precision,
//! and the caller falls back to the f64 audit in [`crate::verify`].
//!
//! Dual extraction costs nothing extra: every row keeps its artificial
//! column frozen in the tableau through both phases, so after the final
//! pivot the objective-row entry of artificial `r` is `0 − y_r` and the
//! duals are read off directly — no basis factorization needed.

use crate::error::LpError;
use crate::problem::{Problem, Relation, Sense, VarKind};
use crate::standard::ColumnOrigin;
use redundancy_rational::{Rational, RationalError};

/// Iteration budget for the exact pivot loop.  Bland's rule guarantees
/// termination, so reaching this means a problem far outside the paper's
/// sizes (or a bug), never cycling.
const EXACT_MAX_ITERS: usize = 50_000;

/// Consecutive degenerate pivots tolerated under the Dantzig rule before the
/// exact solver falls back to Bland's rule for the rest of the solve.
const DEGENERACY_FALLBACK: usize = 32;

fn lift(e: RationalError, location: &str) -> LpError {
    match e {
        RationalError::NonFinite => LpError::NonFiniteData {
            location: location.to_string(),
        },
        _ => LpError::ArithmeticOverflow {
            location: format!("{location}: {e}"),
        },
    }
}

fn q(value: f64, location: &str) -> Result<Rational, LpError> {
    Rational::from_f64(value).map_err(|e| lift(e, location))
}

fn add(a: Rational, b: Rational) -> Result<Rational, LpError> {
    a.checked_add(b).map_err(|e| lift(e, "tableau addition"))
}

fn sub(a: Rational, b: Rational) -> Result<Rational, LpError> {
    a.checked_sub(b).map_err(|e| lift(e, "tableau subtraction"))
}

fn mul(a: Rational, b: Rational) -> Result<Rational, LpError> {
    a.checked_mul(b)
        .map_err(|e| lift(e, "tableau multiplication"))
}

fn div(a: Rational, b: Rational) -> Result<Rational, LpError> {
    a.checked_div(b).map_err(|e| lift(e, "tableau division"))
}

/// The four exact optimality conditions, each checked independently of the
/// solver's internal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactCertificate {
    /// `A·x = b` and `x ≥ 0` hold exactly in the standard form.
    pub primal_feasible: bool,
    /// Every reduced cost `c_j − yᵀA_j` is exactly non-negative.
    pub dual_feasible: bool,
    /// `x_j · (c_j − yᵀA_j) = 0` exactly for every column.
    pub complementary_slackness: bool,
    /// `cᵀx = bᵀy` exactly.
    pub strong_duality: bool,
}

impl ExactCertificate {
    /// True when all four conditions hold, i.e. `x` is provably optimal.
    pub fn optimal(&self) -> bool {
        self.primal_feasible
            && self.dual_feasible
            && self.complementary_slackness
            && self.strong_duality
    }
}

/// An exactly-certified optimum mapped back to the original problem.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Optimal objective value in the problem's own sense, exact.
    pub objective: Rational,
    /// Exact value of each original variable.
    pub values: Vec<Rational>,
    /// Exact dual multiplier per original constraint (problem sense).
    pub duals: Vec<Rational>,
    /// Outcome of the independent ℚ certification.
    pub certificate: ExactCertificate,
    /// Total pivots across both phases.
    pub pivots: usize,
}

/// The problem in exact standard equality form: `min cᵀx, A·x = b, x ≥ 0`
/// with `b ≥ 0`, mirroring [`crate::standard::StandardForm`] in ℚ.
struct ExactStandardForm {
    a: Vec<Vec<Rational>>,
    b: Vec<Rational>,
    c: Vec<Rational>,
    origins: Vec<ColumnOrigin>,
    row_negated: Vec<bool>,
    maximized: bool,
}

impl ExactStandardForm {
    /// Exact mirror of `StandardForm::from_problem`: free-variable split,
    /// slack/surplus columns, row flips for negative right-hand sides, and
    /// maximization-to-minimization cost negation are all exact in ℚ.
    fn from_problem(problem: &Problem) -> Result<Self, LpError> {
        let mut origins = Vec::new();
        let mut pos_col = Vec::with_capacity(problem.variables.len());
        let mut neg_col = vec![None; problem.variables.len()];
        for (i, v) in problem.variables.iter().enumerate() {
            pos_col.push(origins.len());
            origins.push(ColumnOrigin::Positive(i));
            if v.kind == VarKind::Free {
                neg_col[i] = Some(origins.len());
                origins.push(ColumnOrigin::Negative(i));
            }
        }
        for (ci, cons) in problem.constraints.iter().enumerate() {
            if cons.relation != Relation::Eq {
                origins.push(ColumnOrigin::Slack(ci));
            }
        }
        let n = origins.len();
        let m = problem.constraints.len();
        let mut a = vec![vec![Rational::ZERO; n]; m];
        let mut b = vec![Rational::ZERO; m];
        let mut row_negated = vec![false; m];
        let mut slack_cursor = n - origins
            .iter()
            .filter(|o| matches!(o, ColumnOrigin::Slack(_)))
            .count();
        for (ri, cons) in problem.constraints.iter().enumerate() {
            for &(vi, coeff) in &cons.terms {
                let qc = q(coeff, "constraint coefficient")?;
                a[ri][pos_col[vi]] = add(a[ri][pos_col[vi]], qc)?;
                if let Some(nc) = neg_col[vi] {
                    a[ri][nc] = sub(a[ri][nc], qc)?;
                }
            }
            match cons.relation {
                Relation::Le => {
                    a[ri][slack_cursor] = Rational::ONE;
                    slack_cursor += 1;
                }
                Relation::Ge => {
                    a[ri][slack_cursor] = -Rational::ONE;
                    slack_cursor += 1;
                }
                Relation::Eq => {}
            }
            b[ri] = q(cons.rhs, "constraint right-hand side")?;
            // Flip rows with negative rhs (as the f64 path does), and also
            // zero-rhs `≥` rows: flipping the latter turns their surplus
            // column into a `+1` slack that can serve as an initial basic
            // variable, sparing phase I an artificial.
            if b[ri].is_negative() || (b[ri].is_zero() && cons.relation == Relation::Ge) {
                row_negated[ri] = true;
                b[ri] = -b[ri];
                for entry in a[ri].iter_mut() {
                    *entry = -*entry;
                }
            }
        }
        let maximized = problem.sense == Sense::Maximize;
        let mut c = vec![Rational::ZERO; n];
        for (i, v) in problem.variables.iter().enumerate() {
            let coeff = q(v.objective, "objective coefficient")?;
            let coeff = if maximized { -coeff } else { coeff };
            c[pos_col[i]] = coeff;
            if let Some(nc) = neg_col[i] {
                c[nc] = -coeff;
            }
        }
        Ok(ExactStandardForm {
            a,
            b,
            c,
            origins,
            row_negated,
            maximized,
        })
    }
}

/// Dense exact tableau.  Columns `0..n` are structural/slack; columns
/// `n..n+m` are the per-row artificials, kept (frozen) through phase II so
/// the duals can be read from the objective row.
struct ExactTableau {
    /// Active rows, each of width `n + m` plus a separate rhs.
    rows: Vec<Vec<Rational>>,
    rhs: Vec<Rational>,
    /// Basic column of each active row.
    basis: Vec<usize>,
    /// Reduced-cost row for the current phase.
    obj: Vec<Rational>,
    /// Current objective value (of the phase's cost vector).
    value: Rational,
    /// Structural + slack column count; artificials start at `n`.
    n: usize,
    pivots: usize,
}

impl ExactTableau {
    fn new(sf: &ExactStandardForm) -> Result<Self, LpError> {
        let m = sf.b.len();
        let n = sf.c.len();
        let mut rows = Vec::with_capacity(m);
        for r in 0..m {
            let mut row = sf.a[r].clone();
            row.extend((0..m).map(|k| {
                if k == r {
                    Rational::ONE
                } else {
                    Rational::ZERO
                }
            }));
            rows.push(row);
        }
        let mut rhs = sf.b.clone();
        // Prefer an existing unit-ish column (positive here, zero in every
        // other row) as the initial basic variable of each row; only rows
        // with none get their artificial, which keeps phase I short.
        let mut basis: Vec<usize> = (n..n + m).collect();
        let mut used = vec![false; n];
        for r in 0..m {
            let candidate = (0..n).find(|&j| {
                !used[j]
                    && rows[r][j].is_positive()
                    && (0..m).all(|r2| r2 == r || rows[r2][j].is_zero())
            });
            if let Some(j) = candidate {
                let e = rows[r][j];
                if e != Rational::ONE {
                    for entry in rows[r].iter_mut() {
                        *entry = div(*entry, e)?;
                    }
                    rhs[r] = div(rhs[r], e)?;
                }
                basis[r] = j;
                used[j] = true;
            }
        }
        Ok(ExactTableau {
            rows,
            rhs,
            basis,
            obj: vec![Rational::ZERO; n + m],
            value: Rational::ZERO,
            n,
            pivots: 0,
        })
    }

    /// Recompute the reduced-cost row and objective value for `cost`
    /// (indexed over all `n + m` columns) from the current basis.
    fn load_costs(&mut self, cost: &[Rational]) -> Result<(), LpError> {
        let width = self.obj.len();
        let mut obj = cost.to_vec();
        let mut value = Rational::ZERO;
        for (r, row) in self.rows.iter().enumerate() {
            let cb = cost[self.basis[r]];
            if cb.is_zero() {
                continue;
            }
            for j in 0..width {
                if !row[j].is_zero() {
                    obj[j] = sub(obj[j], mul(cb, row[j])?)?;
                }
            }
            value = add(value, mul(cb, self.rhs[r])?)?;
        }
        self.obj = obj;
        self.value = value;
        Ok(())
    }

    /// Entering column among the non-artificials: most-negative reduced
    /// cost (Dantzig) normally — short pivot paths keep the exact
    /// subdeterminants small — or smallest index (Bland) once a degenerate
    /// streak triggers the anti-cycling fallback.
    fn entering(&self, bland: bool) -> Option<usize> {
        if bland {
            return (0..self.n).find(|&j| self.obj[j].is_negative());
        }
        let mut best: Option<usize> = None;
        for j in 0..self.n {
            if self.obj[j].is_negative() && best.is_none_or(|b| self.obj[j] < self.obj[b]) {
                best = Some(j);
            }
        }
        best
    }

    /// Exact ratio test; ties broken by smallest basic column (Bland).
    fn leaving(&self, col: usize) -> Result<Option<usize>, LpError> {
        let mut best: Option<(usize, Rational)> = None;
        for r in 0..self.rows.len() {
            let a = self.rows[r][col];
            if !a.is_positive() {
                continue;
            }
            let ratio = div(self.rhs[r], a)?;
            best = match best {
                None => Some((r, ratio)),
                Some((br, bratio)) => {
                    if ratio < bratio || (ratio == bratio && self.basis[r] < self.basis[br]) {
                        Some((r, ratio))
                    } else {
                        Some((br, bratio))
                    }
                }
            };
        }
        Ok(best.map(|(r, _)| r))
    }

    fn pivot(&mut self, row: usize, col: usize) -> Result<(), LpError> {
        let width = self.obj.len();
        let p = self.rows[row][col];
        for j in 0..width {
            self.rows[row][j] = div(self.rows[row][j], p)?;
        }
        self.rhs[row] = div(self.rhs[row], p)?;
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            if factor.is_zero() {
                continue;
            }
            for j in 0..width {
                if !self.rows[row][j].is_zero() {
                    let delta = mul(factor, self.rows[row][j])?;
                    self.rows[r][j] = sub(self.rows[r][j], delta)?;
                }
            }
            self.rhs[r] = sub(self.rhs[r], mul(factor, self.rhs[row])?)?;
        }
        let factor = self.obj[col];
        if !factor.is_zero() {
            for j in 0..width {
                if !self.rows[row][j].is_zero() {
                    let delta = mul(factor, self.rows[row][j])?;
                    self.obj[j] = sub(self.obj[j], delta)?;
                }
            }
            // Entering with reduced cost `factor` and step `rhs[row]` moves
            // the objective by their product (downhill: factor < 0).
            self.value = add(self.value, mul(factor, self.rhs[row])?)?;
        }
        self.basis[row] = col;
        self.pivots += 1;
        Ok(())
    }

    /// Pivot to optimality of the currently loaded costs.  Starts under the
    /// Dantzig rule and switches to Bland's rule permanently after
    /// [`DEGENERACY_FALLBACK`] consecutive degenerate pivots, so termination
    /// is guaranteed on every input.
    fn optimize(&mut self) -> Result<(), LpError> {
        let mut iters = 0usize;
        let mut degenerate_streak = 0usize;
        let mut bland = false;
        while let Some(col) = self.entering(bland) {
            iters += 1;
            if iters > EXACT_MAX_ITERS {
                return Err(LpError::IterationLimit {
                    limit: EXACT_MAX_ITERS,
                });
            }
            match self.leaving(col)? {
                Some(row) => {
                    if self.rhs[row].is_zero() {
                        degenerate_streak += 1;
                        if degenerate_streak >= DEGENERACY_FALLBACK {
                            bland = true;
                        }
                    } else {
                        degenerate_streak = 0;
                    }
                    self.pivot(row, col)?
                }
                None => return Err(LpError::Unbounded { ray_column: col }),
            }
        }
        Ok(())
    }
}

/// Run the exact two-phase simplex on the standard form.  Returns the
/// standard-form primal values `x`, the duals `y` for every original row
/// (zero for rows proved redundant in phase I), and the pivot count.
fn solve_standard_exact(
    sf: &ExactStandardForm,
) -> Result<(Vec<Rational>, Vec<Rational>, usize), LpError> {
    let m = sf.b.len();
    let n = sf.c.len();
    let mut t = ExactTableau::new(sf)?;

    // Phase I: minimize the sum of artificials.
    let mut phase1 = vec![Rational::ZERO; n + m];
    for c in phase1.iter_mut().skip(n) {
        *c = Rational::ONE;
    }
    t.load_costs(&phase1)?;
    t.optimize()?;
    if !t.value.is_zero() {
        return Err(LpError::Infeasible {
            infeasibility: t.value.to_f64(),
        });
    }

    // Drive basic artificials out; a row with no nonzero structural entry is
    // an exact `0 = 0` and gets dropped (its dual is fixed to zero below).
    let mut dropped_rows: Vec<usize> = Vec::new();
    let mut r = 0;
    while r < t.rows.len() {
        if t.basis[r] >= n {
            if let Some(col) = (0..n).find(|&j| !t.rows[r][j].is_zero()) {
                t.pivot(r, col)?;
            } else {
                dropped_rows.push(t.basis[r] - n);
                t.rows.remove(r);
                t.rhs.remove(r);
                t.basis.remove(r);
                continue;
            }
        }
        r += 1;
    }

    // Phase II: the true costs (zero on the frozen artificials).
    let mut phase2 = sf.c.clone();
    phase2.resize(n + m, Rational::ZERO);
    t.load_costs(&phase2)?;
    t.optimize()?;

    let mut x = vec![Rational::ZERO; n];
    for (r, &col) in t.basis.iter().enumerate() {
        if col < n {
            x[col] = t.rhs[r];
        }
    }
    // Artificial column `n + r` equals e_r in the original matrix and has
    // zero phase-II cost, so its reduced cost is exactly `−y_r`.
    let mut y = Vec::with_capacity(m);
    for row in 0..m {
        if dropped_rows.contains(&row) {
            y.push(Rational::ZERO);
        } else {
            y.push(-t.obj[n + row]);
        }
    }
    Ok((x, y, t.pivots))
}

/// Independently verify the four optimality conditions in ℚ against the
/// untouched standard form.  This shares no state with the solver: a bug in
/// the pivot loop cannot also hide here.
fn certify(
    sf: &ExactStandardForm,
    x: &[Rational],
    y: &[Rational],
) -> Result<ExactCertificate, LpError> {
    let mut primal = x.iter().all(|v| !v.is_negative());
    for (row, &br) in sf.a.iter().zip(&sf.b) {
        let mut lhs = Rational::ZERO;
        for (&arj, &xj) in row.iter().zip(x) {
            if !arj.is_zero() && !xj.is_zero() {
                lhs = add(lhs, mul(arj, xj)?)?;
            }
        }
        if lhs != br {
            primal = false;
        }
    }
    let mut dual = true;
    let mut slack = true;
    for (j, (&cj, &xj)) in sf.c.iter().zip(x).enumerate() {
        let mut ya = Rational::ZERO;
        for (row, &yr) in sf.a.iter().zip(y) {
            if !row[j].is_zero() && !yr.is_zero() {
                ya = add(ya, mul(row[j], yr)?)?;
            }
        }
        let reduced = sub(cj, ya)?;
        if reduced.is_negative() {
            dual = false;
        }
        if !mul(xj, reduced)?.is_zero() {
            slack = false;
        }
    }
    let mut primal_obj = Rational::ZERO;
    for (&cj, &xj) in sf.c.iter().zip(x) {
        if !cj.is_zero() && !xj.is_zero() {
            primal_obj = add(primal_obj, mul(cj, xj)?)?;
        }
    }
    let mut dual_obj = Rational::ZERO;
    for (&br, &yr) in sf.b.iter().zip(y) {
        if !br.is_zero() && !yr.is_zero() {
            dual_obj = add(dual_obj, mul(br, yr)?)?;
        }
    }
    Ok(ExactCertificate {
        primal_feasible: primal,
        dual_feasible: dual,
        complementary_slackness: slack,
        strong_duality: primal_obj == dual_obj,
    })
}

/// Solve `problem` in exact rational arithmetic and certify the optimum.
///
/// The returned [`ExactSolution`] carries exact values, duals, and the
/// outcome of the independent certification; callers should check
/// [`ExactCertificate::optimal`].  Infeasibility, unboundedness and data
/// errors use the same [`LpError`] variants as the f64 path; exact values
/// that outgrow `i128` surface as [`LpError::ArithmeticOverflow`].
///
/// ```
/// use redundancy_lp::{exact::solve_exact, Problem, Relation, Sense};
/// use redundancy_rational::Rational;
/// let mut p = Problem::new(Sense::Minimize);
/// let x = p.add_variable("x");
/// let y = p.add_variable("y");
/// p.set_objective(x, 1.0);
/// p.set_objective(y, 2.0);
/// p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
/// let sol = solve_exact(&p).unwrap();
/// assert!(sol.certificate.optimal());
/// assert_eq!(sol.objective, Rational::from_integer(4).unwrap());
/// ```
pub fn solve_exact(problem: &Problem) -> Result<ExactSolution, LpError> {
    problem.validate()?;
    let sf = ExactStandardForm::from_problem(problem)?;
    let (x, y, pivots) = solve_standard_exact(&sf)?;
    let certificate = certify(&sf, &x, &y)?;

    // Map back to the original problem space, exactly.
    let mut values = vec![Rational::ZERO; problem.num_variables()];
    for (col, origin) in sf.origins.iter().enumerate() {
        match *origin {
            ColumnOrigin::Positive(i) => values[i] = add(values[i], x[col])?,
            ColumnOrigin::Negative(i) => values[i] = sub(values[i], x[col])?,
            ColumnOrigin::Slack(_) => {}
        }
    }
    let mut objective = Rational::ZERO;
    for (i, v) in values.iter().enumerate() {
        let coeff = q(problem.objective_coefficient(i), "objective coefficient")?;
        objective = add(objective, mul(coeff, *v)?)?;
    }
    let mut duals = Vec::with_capacity(sf.b.len());
    for (r, &yr) in y.iter().enumerate() {
        let mut d = if sf.row_negated[r] { -yr } else { yr };
        if sf.maximized {
            d = -d;
        }
        duals.push(d);
    }
    Ok(ExactSolution {
        objective,
        values,
        duals,
        certificate,
        pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn rat(num: i128, den: i128) -> Rational {
        Rational::new(num, den).unwrap()
    }

    #[test]
    fn textbook_minimization_is_certified() {
        // min x + 2y s.t. x + y >= 4, y <= 3  → x = 4, y = 0, obj 4.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint(&[(y, 1.0)], Relation::Le, 3.0);
        let sol = solve_exact(&p).expect("textbook minimization fixture solves");
        assert!(sol.certificate.optimal());
        assert_eq!(sol.objective, rat(4, 1));
        assert_eq!(sol.values, vec![rat(4, 1), Rational::ZERO]);
        // Active `≥` row has dual 1 (min sense), inactive `≤` row dual 0.
        assert_eq!(sol.duals, vec![rat(1, 1), Rational::ZERO]);
    }

    #[test]
    fn maximization_with_fractional_optimum() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), obj 36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = solve_exact(&p).expect("maximization fixture solves");
        assert!(sol.certificate.optimal());
        assert_eq!(sol.objective, rat(36, 1));
        assert_eq!(sol.values, vec![rat(2, 1), rat(6, 1)]);
    }

    #[test]
    fn equality_and_free_variables() {
        // min x + y s.t. x - f = 1, f = 2 with f free → x = 3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        let f = p.add_free_variable("f");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (f, -1.0)], Relation::Eq, 1.0);
        p.add_constraint(&[(f, 1.0)], Relation::Eq, 2.0);
        let sol = solve_exact(&p).expect("equality/free fixture solves");
        assert!(sol.certificate.optimal());
        assert_eq!(sol.objective, rat(3, 1));
        assert_eq!(sol.values[0], rat(3, 1));
        assert_eq!(sol.values[2], rat(2, 1));
    }

    #[test]
    fn fractional_data_stays_exact() {
        // min x s.t. (1/2)x >= 1/4 → x = 1/2 exactly (0.25/0.5 are dyadic).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 0.5)], Relation::Ge, 0.25);
        let sol = solve_exact(&p).expect("dyadic fixture solves");
        assert!(sol.certificate.optimal());
        assert_eq!(sol.objective, rat(1, 2));
    }

    #[test]
    fn infeasible_is_detected_exactly() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        assert!(matches!(solve_exact(&p), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn unbounded_is_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0);
        assert!(matches!(solve_exact(&p), Err(LpError::Unbounded { .. })));
    }

    #[test]
    fn redundant_rows_get_zero_duals() {
        // Second row is exactly twice the first.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 4.0);
        let sol = solve_exact(&p).expect("redundant-rows fixture solves");
        assert!(sol.certificate.optimal());
        assert_eq!(sol.objective, rat(2, 1));
    }

    #[test]
    fn negative_rhs_row_flip_is_exact() {
        // min x s.t. -x <= -3  ⇔  x >= 3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0);
        let sol = solve_exact(&p).expect("negative-rhs fixture solves");
        assert!(sol.certificate.optimal());
        assert_eq!(sol.objective, rat(3, 1));
    }

    #[test]
    fn degenerate_vertex_terminates_under_bland() {
        // Multiple constraints meeting at the same vertex.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, -1.0);
        p.set_objective(y, -1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
        let sol = solve_exact(&p).expect("degenerate fixture solves");
        assert!(sol.certificate.optimal());
        assert_eq!(sol.objective, rat(-2, 1));
    }

    #[test]
    fn agrees_with_f64_simplex_on_a_small_covering_lp() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        let z = p.add_variable("z");
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.set_objective(z, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Ge, 3.0);
        p.add_constraint(&[(y, 1.0), (z, 4.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(x, 1.0), (z, 1.0)], Relation::Ge, 1.0);
        let approx = p.solve().expect("covering fixture solves in f64");
        let exact = solve_exact(&p).expect("covering fixture solves exactly");
        assert!(exact.certificate.optimal());
        assert!((approx.objective - exact.objective.to_f64()).abs() < 1e-9);
    }

    #[test]
    fn certificate_rejects_a_suboptimal_point() {
        // Hand-build a standard form and feed certify() a feasible but
        // suboptimal pair to prove the checker can say "no".
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let sf = ExactStandardForm::from_problem(&p).unwrap();
        // x = 2 (feasible, surplus 1) with y = 0: slack fails, duality fails.
        let x_bad = vec![rat(2, 1), rat(1, 1)];
        let y_bad = vec![Rational::ZERO];
        let cert = certify(&sf, &x_bad, &y_bad).unwrap();
        assert!(cert.primal_feasible);
        assert!(!cert.optimal());
        assert!(!cert.complementary_slackness || !cert.strong_duality);
    }
}
