//! Presolve: cheap problem reductions applied before the simplex.
//!
//! The reductions implemented are the classical safe ones:
//!
//! 1. **empty constraints** — rows with no (nonzero) coefficients are
//!    either trivially satisfiable (dropped) or prove infeasibility;
//! 2. **singleton constraints** — a row touching exactly one variable is a
//!    bound; `x ≤ b` with `b < 0` for a non-negative variable proves
//!    infeasibility, `x ≥ b` with `b ≤ 0` is redundant and dropped;
//! 3. **fixed variables** — `x = c` rows substitute the value through the
//!    problem and remove the variable;
//! 4. **duplicate rows** — identical (scaled) rows keep only the tightest.
//!
//! The driver returns a [`Reduction`] able to map a solution of the reduced
//! problem back to the original variable space.  Presolve is optional —
//! `Problem::solve` does not invoke it implicitly — but
//! [`solve_with_presolve`] bundles the pipeline, and the property tests
//! assert end-to-end equivalence with direct solves.

use crate::error::LpError;
use crate::problem::{Problem, Relation, VarKind};
use crate::solution::Solution;
use std::collections::HashMap;

/// Outcome of presolving: a reduced problem plus recovery data.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced problem (may have fewer variables and rows).
    pub reduced: Problem,
    /// For each original variable: either its fixed value or its index in
    /// the reduced problem.
    mapping: Vec<VarFate>,
    /// Constant contribution of fixed variables to the objective.
    objective_offset: f64,
    /// Original row index for each surviving reduced row.
    row_origin: Vec<usize>,
    /// Total number of original rows.
    original_rows: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarFate {
    Kept(usize),
    Fixed(f64),
}

/// Statistics about what presolve removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Rows dropped as trivially satisfied.
    pub empty_rows: usize,
    /// Redundant singleton bounds dropped.
    pub redundant_bounds: usize,
    /// Variables eliminated by `x = c` rows.
    pub fixed_variables: usize,
    /// Duplicate rows merged.
    pub duplicate_rows: usize,
}

impl Reduction {
    /// Map a solution of the reduced problem back to original coordinates.
    pub fn recover(&self, reduced_solution: &Solution) -> Solution {
        let mut values = Vec::with_capacity(self.mapping.len());
        for fate in &self.mapping {
            values.push(match *fate {
                VarFate::Kept(j) => reduced_solution.values[j],
                VarFate::Fixed(v) => v,
            });
        }
        let mut duals = vec![0.0; self.original_rows];
        for (new_r, &old_r) in self.row_origin.iter().enumerate() {
            duals[old_r] = reduced_solution.duals.get(new_r).copied().unwrap_or(0.0);
        }
        Solution {
            status: reduced_solution.status,
            objective: reduced_solution.objective + self.objective_offset,
            values,
            duals,
            pivots: reduced_solution.pivots,
        }
    }

    /// The constant objective contribution of eliminated variables.
    pub fn objective_offset(&self) -> f64 {
        self.objective_offset
    }
}

/// Run the presolve reductions on `problem`.
///
/// Returns the reduction (with statistics) or an infeasibility proof.
pub fn presolve(problem: &Problem) -> Result<(Reduction, PresolveStats), LpError> {
    problem.validate()?;
    let tol = crate::DEFAULT_TOL;
    let mut stats = PresolveStats::default();
    let n = problem.num_variables();

    // --- Pass 1: find variables fixed by singleton equality rows. -------
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    for cons in &problem.constraints {
        let nz: Vec<(usize, f64)> = cons
            .terms
            .iter()
            .fold(HashMap::<usize, f64>::new(), |mut acc, &(v, c)| {
                *acc.entry(v).or_default() += c;
                acc
            })
            .into_iter()
            .filter(|&(_, c)| c.abs() > tol)
            .collect();
        if nz.len() == 1 && cons.relation == Relation::Eq {
            let (v, c) = nz[0];
            let value = cons.rhs / c;
            if problem.variable_kind(v) == VarKind::NonNegative && value < -tol {
                return Err(LpError::Infeasible {
                    infeasibility: -value,
                });
            }
            if let Some(prev) = fixed[v] {
                if (prev - value).abs() > tol {
                    return Err(LpError::Infeasible {
                        infeasibility: (prev - value).abs(),
                    });
                }
            } else {
                fixed[v] = Some(value);
                stats.fixed_variables += 1;
            }
        }
    }

    // --- Build the reduced problem. --------------------------------------
    let mut reduced = Problem::new(problem.sense);
    let mut mapping = Vec::with_capacity(n);
    let mut objective_offset = 0.0;
    for (v, fate) in fixed.iter().enumerate() {
        match fate {
            Some(value) => {
                mapping.push(VarFate::Fixed(*value));
                let coeff = problem.objective_coefficient(v);
                objective_offset += coeff * value;
            }
            None => {
                let id = match problem.variable_kind(v) {
                    VarKind::Free => reduced.add_free_variable(problem.variable_name_at(v)),
                    VarKind::NonNegative => reduced.add_variable(problem.variable_name_at(v)),
                };
                reduced.set_objective(id, problem.objective_coefficient(v));
                mapping.push(VarFate::Kept(id.index()));
            }
        }
    }

    // --- Pass 2: rebuild rows, dropping trivial / duplicate ones. --------
    let mut row_origin = Vec::new();
    // signature → (reduced row index, relation, rhs) for duplicate folding
    let mut seen: HashMap<Vec<(usize, i64)>, usize> = HashMap::new();
    let quantize = |c: f64| (c / tol).round() as i64;

    for (ri, cons) in problem.constraints.iter().enumerate() {
        // Aggregate coefficients, substitute fixed variables.
        let mut rhs = cons.rhs;
        let mut terms: HashMap<usize, f64> = HashMap::new();
        for &(v, c) in &cons.terms {
            match mapping[v] {
                VarFate::Fixed(value) => rhs -= c * value,
                VarFate::Kept(j) => *terms.entry(j).or_default() += c,
            }
        }
        let mut nz: Vec<(usize, f64)> = terms.into_iter().filter(|&(_, c)| c.abs() > tol).collect();
        nz.sort_by_key(|&(j, _)| j);

        if nz.is_empty() {
            // 0 relation rhs: satisfied or infeasible.
            let violated = match cons.relation {
                Relation::Le => rhs < -tol,
                Relation::Ge => rhs > tol,
                Relation::Eq => rhs.abs() > tol,
            };
            if violated {
                return Err(LpError::Infeasible {
                    infeasibility: rhs.abs(),
                });
            }
            stats.empty_rows += 1;
            continue;
        }

        // Redundant singleton lower bounds on non-negative variables.
        if nz.len() == 1 && cons.relation == Relation::Ge {
            let (j, c) = nz[0];
            let kept_kind = reduced.variable_kind(j);
            if kept_kind == VarKind::NonNegative && c > 0.0 && rhs <= tol {
                stats.redundant_bounds += 1;
                continue;
            }
            // x ≤ b with b < 0 proves infeasibility (written as c·x ≥ rhs
            // with c < 0, rhs > 0).
            if kept_kind == VarKind::NonNegative && c < 0.0 && rhs > tol {
                return Err(LpError::Infeasible { infeasibility: rhs });
            }
        }
        if nz.len() == 1 && cons.relation == Relation::Le {
            let (j, c) = nz[0];
            if reduced.variable_kind(j) == VarKind::NonNegative && c > 0.0 && rhs < -tol {
                return Err(LpError::Infeasible {
                    infeasibility: -rhs,
                });
            }
            if reduced.variable_kind(j) == VarKind::NonNegative && c < 0.0 && rhs >= -tol {
                stats.redundant_bounds += 1;
                continue;
            }
        }

        // Duplicate detection: normalize by the first coefficient.
        let scale = nz[0].1;
        let mut signature: Vec<(usize, i64)> = Vec::with_capacity(nz.len() + 2);
        signature.push((usize::MAX, quantize(rhs / scale)));
        signature.push((
            usize::MAX - 1,
            match (cons.relation, scale > 0.0) {
                (Relation::Eq, _) => 0,
                (Relation::Le, true) | (Relation::Ge, false) => 1,
                (Relation::Ge, true) | (Relation::Le, false) => 2,
            },
        ));
        for &(j, c) in &nz {
            signature.push((j, quantize(c / scale)));
        }
        if seen.contains_key(&signature) {
            stats.duplicate_rows += 1;
            continue;
        }
        seen.insert(signature, row_origin.len());

        let id_terms: Vec<_> = nz
            .iter()
            .map(|&(j, c)| (reduced.variable_id(j), c))
            .collect();
        reduced.add_constraint(&id_terms, cons.relation, rhs);
        row_origin.push(ri);
    }

    Ok((
        Reduction {
            reduced,
            mapping,
            objective_offset,
            row_origin,
            original_rows: problem.num_constraints(),
        },
        stats,
    ))
}

/// Presolve, solve the reduced problem, and map the solution back.
pub fn solve_with_presolve(problem: &Problem) -> Result<(Solution, PresolveStats), LpError> {
    let (reduction, stats) = presolve(problem)?;
    if reduction.reduced.num_variables() == 0 {
        // Everything fixed: the solution is fully determined.
        let values: Vec<f64> = reduction
            .mapping
            .iter()
            .map(|f| match *f {
                VarFate::Fixed(v) => v,
                VarFate::Kept(_) => unreachable!("no kept variables"),
            })
            .collect();
        return Ok((
            Solution {
                status: crate::solution::Status::Optimal,
                objective: reduction.objective_offset,
                values,
                duals: vec![0.0; problem.num_constraints()],
                pivots: 0,
            },
            stats,
        ));
    }
    let inner = reduction.reduced.solve()?;
    Ok((reduction.recover(&inner), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn fixed_variables_are_substituted() {
        // min x + y s.t. y = 3, x + y >= 5  →  x = 2, obj = 5.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Eq, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let (sol, stats) = solve_with_presolve(&p).unwrap();
        assert_eq!(stats.fixed_variables, 1);
        assert!(close(sol.value(x), 2.0));
        assert!(close(sol.value(y), 3.0));
        assert!(close(sol.objective, 5.0));
    }

    #[test]
    fn conflicting_fixes_prove_infeasibility() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::Eq, 6.0);
        assert!(matches!(presolve(&p), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn negative_fix_of_nonnegative_variable_is_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], Relation::Eq, -2.0);
        assert!(matches!(presolve(&p), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn empty_rows_dropped_or_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 0.0)], Relation::Le, 5.0); // trivially true
        let (red, stats) = presolve(&p).unwrap();
        assert_eq!(stats.empty_rows, 1);
        assert_eq!(red.reduced.num_constraints(), 0);

        let mut q = Problem::new(Sense::Minimize);
        let y = q.add_variable("y");
        q.add_constraint(&[(y, 0.0)], Relation::Ge, 5.0); // 0 >= 5
        assert!(matches!(presolve(&q), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn redundant_lower_bounds_dropped() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0); // x >= 0: redundant
        p.add_constraint(&[(x, 1.0)], Relation::Ge, -3.0); // also redundant
        let (red, stats) = presolve(&p).unwrap();
        assert_eq!(stats.redundant_bounds, 2);
        assert_eq!(red.reduced.num_constraints(), 0);
    }

    #[test]
    fn singleton_upper_bound_conflict_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], Relation::Le, -1.0); // x <= -1, x >= 0
        assert!(matches!(presolve(&p), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn duplicate_rows_merged() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Ge, 8.0); // same row ×2
        let (red, stats) = presolve(&p).unwrap();
        assert_eq!(stats.duplicate_rows, 1);
        assert_eq!(red.reduced.num_constraints(), 1);
        let (sol, _) = solve_with_presolve(&p).unwrap();
        assert!(close(sol.objective, 4.0));
    }

    #[test]
    fn fully_fixed_problem_short_circuits() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 3.0);
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 2.0);
        let (sol, _) = solve_with_presolve(&p).unwrap();
        assert!(close(sol.objective, 6.0));
        assert!(close(sol.value(x), 2.0));
        assert_eq!(sol.pivots, 0);
    }

    #[test]
    fn presolved_matches_direct_solve_on_a_real_system() {
        // An S_m-flavoured problem with an extra fixed variable and
        // duplicated constraint thrown in.
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_variable("x1");
        let x2 = p.add_variable("x2");
        let x3 = p.add_variable("x3");
        let z = p.add_variable("z");
        p.set_objective(x1, 1.0);
        p.set_objective(x2, 2.0);
        p.set_objective(x3, 3.0);
        p.set_objective(z, 10.0);
        p.add_constraint(&[(x1, 1.0), (x2, 1.0), (x3, 1.0)], Relation::Ge, 100.0);
        p.add_constraint(&[(x1, -0.5), (x2, 1.0), (x3, 1.5)], Relation::Ge, 0.0);
        p.add_constraint(&[(x1, -1.0), (x2, 2.0), (x3, 3.0)], Relation::Ge, 0.0); // duplicate (×2)
        p.add_constraint(&[(z, 1.0)], Relation::Eq, 7.0);
        let direct = p.solve().unwrap();
        let (pre, stats) = solve_with_presolve(&p).unwrap();
        assert!(
            close(direct.objective, pre.objective),
            "{} vs {}",
            direct.objective,
            pre.objective
        );
        assert!(stats.duplicate_rows >= 1);
        assert!(stats.fixed_variables == 1);
        for (a, b) in direct.values.iter().zip(&pre.values) {
            assert!(close(*a, *b), "{direct:?} vs {pre:?}");
        }
        // Recovered duals keep original row positions.
        assert_eq!(pre.duals.len(), 4);
    }
}
