//! Independent certification of a claimed LP solution.
//!
//! [`verify_solution`] re-checks, from the original modeling-form data and
//! without trusting any solver internals:
//!
//! 1. **primal feasibility** — every constraint and sign restriction holds
//!    within tolerance;
//! 2. **dual sign feasibility** — duals carry the sign their relation
//!    requires for the problem's sense;
//! 3. **strong duality** — `bᵀy` matches the primal objective;
//! 4. **complementary slackness** — non-binding constraints have zero duals.
//!
//! The redundancy-core crate runs this audit on every assignment-minimizing
//! distribution it computes, so a simplex bug cannot silently corrupt the
//! paper's Figure 1/Figure 2 reproductions.

use crate::problem::{Problem, Relation, Sense, VarKind};
use crate::solution::Solution;

/// Outcome of auditing a solution, with worst-case violation magnitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Largest violation of any primal constraint (0 if all hold).
    pub primal_violation: f64,
    /// Largest violation of a variable sign restriction.
    pub sign_violation: f64,
    /// Largest dual with the wrong sign for its relation.
    pub dual_sign_violation: f64,
    /// `|bᵀy − cᵀx|`, the strong-duality gap.
    pub duality_gap: f64,
    /// Largest `|yᵢ·slackᵢ|` (complementary slackness residual).
    pub complementarity: f64,
}

impl VerifyReport {
    /// True if every audit passes at tolerance `tol` (the duality-style
    /// checks use a relative-scaled tolerance).
    pub fn is_ok(&self, tol: f64) -> bool {
        self.primal_violation <= tol
            && self.sign_violation <= tol
            && self.dual_sign_violation <= tol
            && self.duality_gap <= tol
            && self.complementarity <= tol
    }
}

/// Audit `solution` against `problem`. Tolerances scale with the magnitude
/// of the data so large-N problems (the paper uses N up to 10⁷) verify
/// cleanly.
pub fn verify_solution(problem: &Problem, solution: &Solution) -> VerifyReport {
    let x = &solution.values;
    let scale = 1.0_f64
        .max(solution.objective.abs())
        .max(x.iter().fold(0.0_f64, |m, v| m.max(v.abs())));

    let mut primal_violation = 0.0_f64;
    let mut complementarity = 0.0_f64;
    let mut dual_sign_violation = 0.0_f64;
    let mut dual_objective = 0.0_f64;

    for (ci, cons) in problem.constraints.iter().enumerate() {
        let lhs: f64 = cons.terms.iter().map(|&(vi, c)| c * x[vi]).sum();
        let slack = lhs - cons.rhs;
        let violation = match cons.relation {
            Relation::Le => slack.max(0.0),
            Relation::Ge => (-slack).max(0.0),
            Relation::Eq => slack.abs(),
        };
        primal_violation = primal_violation.max(violation / scale);

        let y = solution.duals.get(ci).copied().unwrap_or(0.0);
        dual_objective += y * cons.rhs;
        // Sign convention (minimization): y ≥ 0 for ≥ rows, y ≤ 0 for ≤ rows.
        // For maximization the convention flips.
        let signed = match (problem.sense, cons.relation) {
            (_, Relation::Eq) => 0.0,
            (Sense::Minimize, Relation::Ge) | (Sense::Maximize, Relation::Le) => (-y).max(0.0),
            (Sense::Minimize, Relation::Le) | (Sense::Maximize, Relation::Ge) => y.max(0.0),
        };
        dual_sign_violation = dual_sign_violation.max(signed / scale);
        complementarity = complementarity.max((y * slack).abs() / (scale * scale).max(scale));
    }

    let mut sign_violation = 0.0_f64;
    for (v, &val) in problem.variables.iter().zip(x) {
        if v.kind == VarKind::NonNegative {
            sign_violation = sign_violation.max((-val).max(0.0) / scale);
        }
    }

    let duality_gap = (dual_objective - solution.objective).abs() / scale;

    VerifyReport {
        primal_violation,
        sign_violation,
        dual_sign_violation,
        duality_gap,
        complementarity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};
    use crate::solution::Status;

    fn diet_problem() -> Problem {
        // min 0.6x + 1.0y s.t. 10x + 4y >= 20, 5x + 5y >= 20, x,y >= 0.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 0.6);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 10.0), (y, 4.0)], Relation::Ge, 20.0);
        p.add_constraint(&[(x, 5.0), (y, 5.0)], Relation::Ge, 20.0);
        p
    }

    #[test]
    fn solver_output_passes_audit() {
        let p = diet_problem();
        let s = p.solve().unwrap();
        let report = verify_solution(&p, &s);
        assert!(report.is_ok(1e-7), "{report:?}");
    }

    #[test]
    fn audit_catches_infeasible_point() {
        let p = diet_problem();
        let fake = Solution {
            status: Status::Optimal,
            objective: 0.0,
            values: vec![0.0, 0.0],
            duals: vec![0.0, 0.0],
            pivots: 0,
        };
        let report = verify_solution(&p, &fake);
        assert!(report.primal_violation > 1.0);
    }

    #[test]
    fn audit_catches_negative_variable() {
        let p = diet_problem();
        let fake = Solution {
            status: Status::Optimal,
            objective: 100.0,
            values: vec![100.0, -1.0],
            duals: vec![0.0, 0.0],
            pivots: 0,
        };
        let report = verify_solution(&p, &fake);
        assert!(report.sign_violation > 0.0);
    }

    #[test]
    fn audit_catches_wrong_duals() {
        let p = diet_problem();
        let mut s = p.solve().unwrap();
        s.duals = vec![-5.0, -5.0]; // wrong sign for ≥ rows under min
        let report = verify_solution(&p, &s);
        assert!(report.dual_sign_violation > 0.0 || report.duality_gap > 0.0);
    }

    #[test]
    fn audit_catches_duality_gap() {
        let p = diet_problem();
        let mut s = p.solve().unwrap();
        s.duals = vec![0.0, 0.0];
        let report = verify_solution(&p, &s);
        assert!(report.duality_gap > 0.1);
    }

    #[test]
    fn maximization_duals_verify() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        let report = verify_solution(&p, &s);
        assert!(report.is_ok(1e-7), "{report:?}");
    }
}
