//! MPS-format import/export for linear programs.
//!
//! [MPS] is the lingua franca of LP solvers; supporting it lets the `S_m`
//! systems this workspace generates be cross-checked against any external
//! solver (and lets externally authored models run through this one).
//!
//! The dialect implemented is the fixed-keyword free-format core used by
//! virtually every tool:
//!
//! * sections `NAME`, `ROWS`, `COLUMNS`, `RHS`, `BOUNDS` (only `FR` —
//!   everything else in this workspace is the default `x ≥ 0`), `ENDATA`;
//! * row types `N` (objective), `L` (≤), `G` (≥), `E` (=);
//! * one or two (column, value) pairs per COLUMNS/RHS line.
//!
//! MPS carries no optimization direction; by convention (and like most
//! tools) [`parse_mps`] produces a **minimization** problem, and
//! [`write_mps`] annotates maximization problems by negating the objective
//! into min-form with a `* OBJSENSE MAX (negated below)` comment so the
//! round trip preserves semantics.
//!
//! [MPS]: https://en.wikipedia.org/wiki/MPS_(format)

use crate::error::LpError;
use crate::problem::{Problem, Relation, Sense, VarKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Render `problem` in MPS format.
pub fn write_mps(problem: &Problem, name: &str) -> String {
    let mut out = String::new();
    let maximize = problem_sense(problem) == Sense::Maximize;
    if maximize {
        out.push_str("* OBJSENSE MAX (negated below)\n");
    }
    let _ = writeln!(out, "NAME          {name}");
    out.push_str("ROWS\n N  COST\n");
    for i in 0..problem.num_constraints() {
        let tag = match constraint_relation(problem, i) {
            Relation::Le => 'L',
            Relation::Ge => 'G',
            Relation::Eq => 'E',
        };
        let _ = writeln!(out, " {tag}  R{i}");
    }
    out.push_str("COLUMNS\n");
    for v in 0..problem.num_variables() {
        let col = sanitize(problem.variable_name_at(v), v);
        let obj = problem.objective_coefficient(v);
        let obj = if maximize { -obj } else { obj };
        if obj != 0.0 {
            let _ = writeln!(out, "    {col}  COST  {obj}");
        }
        for (ri, coeff) in column_entries(problem, v) {
            let _ = writeln!(out, "    {col}  R{ri}  {coeff}");
        }
    }
    out.push_str("RHS\n");
    for i in 0..problem.num_constraints() {
        let rhs = constraint_rhs(problem, i);
        if rhs != 0.0 {
            let _ = writeln!(out, "    RHS  R{i}  {rhs}");
        }
    }
    let free: Vec<usize> = (0..problem.num_variables())
        .filter(|&v| problem.variable_kind(v) == VarKind::Free)
        .collect();
    if !free.is_empty() {
        out.push_str("BOUNDS\n");
        for v in free {
            let col = sanitize(problem.variable_name_at(v), v);
            let _ = writeln!(out, " FR BND  {col}");
        }
    }
    out.push_str("ENDATA\n");
    out
}

/// Parse an MPS document into a minimization [`Problem`].
pub fn parse_mps(text: &str) -> Result<Problem, LpError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Rows,
        Columns,
        Rhs,
        Bounds,
        Done,
    }
    let mut section = Section::None;
    let mut problem = Problem::new(Sense::Minimize);
    let mut objective_row: Option<String> = None;
    /// Relation, accumulated (variable, coefficient) terms, right-hand side.
    type RowBody = (Relation, Vec<(usize, f64)>, f64);
    let mut row_order: Vec<String> = Vec::new();
    let mut rows: HashMap<String, RowBody> = HashMap::new();
    let mut obj_terms: Vec<(usize, f64)> = Vec::new();
    let mut columns: HashMap<String, usize> = HashMap::new();
    let mut free_vars: Vec<usize> = Vec::new();

    let bad = |line: &str| LpError::NonFiniteData {
        location: format!("MPS line: {line}"),
    };

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.trim_start().starts_with('*') || line.trim().is_empty() {
            continue;
        }
        let is_header = !line.starts_with(' ') && !line.starts_with('\t');
        if is_header {
            let mut parts = line.split_whitespace();
            match parts.next().unwrap_or("") {
                "NAME" => {}
                "ROWS" => section = Section::Rows,
                "COLUMNS" => section = Section::Columns,
                "RHS" => section = Section::Rhs,
                "RANGES" => {
                    return Err(LpError::NonFiniteData {
                        location: "MPS RANGES section is not supported".into(),
                    })
                }
                "BOUNDS" => section = Section::Bounds,
                "ENDATA" => {
                    section = Section::Done;
                    break;
                }
                other => {
                    return Err(LpError::NonFiniteData {
                        location: format!("unknown MPS section {other}"),
                    })
                }
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(bad(line));
                }
                match fields[0] {
                    "N" => {
                        if objective_row.is_none() {
                            objective_row = Some(fields[1].to_string());
                        }
                    }
                    tag @ ("L" | "G" | "E") => {
                        let rel = match tag {
                            "L" => Relation::Le,
                            "G" => Relation::Ge,
                            _ => Relation::Eq,
                        };
                        row_order.push(fields[1].to_string());
                        rows.insert(fields[1].to_string(), (rel, Vec::new(), 0.0));
                    }
                    _ => return Err(bad(line)),
                }
            }
            Section::Columns => {
                // col row val [row val]
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(bad(line));
                }
                let col = fields[0];
                let var = *columns
                    .entry(col.to_string())
                    .or_insert_with(|| problem.add_variable(col).index());
                for pair in fields[1..].chunks(2) {
                    let row = pair[0];
                    let value: f64 = pair[1].parse().map_err(|_| bad(line))?;
                    if Some(row) == objective_row.as_deref() {
                        obj_terms.push((var, value));
                    } else if let Some(entry) = rows.get_mut(row) {
                        entry.1.push((var, value));
                    } else {
                        return Err(LpError::NonFiniteData {
                            location: format!("MPS references unknown row {row}"),
                        });
                    }
                }
            }
            Section::Rhs => {
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(bad(line));
                }
                for pair in fields[1..].chunks(2) {
                    let row = pair[0];
                    let value: f64 = pair[1].parse().map_err(|_| bad(line))?;
                    if let Some(entry) = rows.get_mut(row) {
                        entry.2 = value;
                    } else if Some(row) != objective_row.as_deref() {
                        return Err(LpError::NonFiniteData {
                            location: format!("MPS RHS for unknown row {row}"),
                        });
                    }
                }
            }
            Section::Bounds => {
                // TYPE BNDNAME COL [VALUE]
                if fields.len() < 3 {
                    return Err(bad(line));
                }
                match fields[0] {
                    "FR" => {
                        let Some(&var) = columns.get(fields[2]) else {
                            return Err(LpError::NonFiniteData {
                                location: format!("MPS bound for unknown column {}", fields[2]),
                            });
                        };
                        free_vars.push(var);
                    }
                    other => {
                        return Err(LpError::NonFiniteData {
                            location: format!("unsupported MPS bound type {other}"),
                        })
                    }
                }
            }
            Section::None | Section::Done => return Err(bad(line)),
        }
    }
    if section != Section::Done {
        return Err(LpError::NonFiniteData {
            location: "MPS document missing ENDATA".into(),
        });
    }

    // Free variables must be re-declared; rebuild the problem preserving
    // column order (cheap and keeps Problem's invariants intact).
    let mut rebuilt = Problem::new(Sense::Minimize);
    let mut ids = Vec::with_capacity(problem.num_variables());
    for v in 0..problem.num_variables() {
        let name = problem.variable_name_at(v).to_string();
        let id = if free_vars.contains(&v) {
            rebuilt.add_free_variable(name)
        } else {
            rebuilt.add_variable(name)
        };
        ids.push(id);
    }
    for (v, c) in obj_terms {
        rebuilt.set_objective(ids[v], c);
    }
    for name in &row_order {
        let (rel, terms, rhs) = &rows[name];
        let id_terms: Vec<_> = terms.iter().map(|&(v, c)| (ids[v], c)).collect();
        rebuilt.add_constraint(&id_terms, *rel, *rhs);
    }
    rebuilt.validate()?;
    Ok(rebuilt)
}

fn sanitize(name: &str, index: usize) -> String {
    let clean: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if clean.is_empty() {
        format!("X{index}")
    } else {
        clean
    }
}

// --- Small read-only views over Problem internals (crate-private). -------

fn problem_sense(p: &Problem) -> Sense {
    p.sense
}

fn constraint_relation(p: &Problem, i: usize) -> Relation {
    p.constraints[i].relation
}

fn constraint_rhs(p: &Problem, i: usize) -> f64 {
    p.constraints[i].rhs
}

fn column_entries(p: &Problem, var: usize) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for (ri, cons) in p.constraints.iter().enumerate() {
        let coeff: f64 = cons
            .terms
            .iter()
            .filter(|&&(v, _)| v == var)
            .map(|&(_, c)| c)
            .sum();
        if coeff != 0.0 {
            out.push((ri, coeff));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn sample() -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x1");
        let y = p.add_variable("x2");
        let z = p.add_free_variable("z");
        p.set_objective(x, 1.0);
        p.set_objective(y, 2.0);
        p.set_objective(z, -0.5);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 3.0), (z, -1.0)], Relation::Le, 30.0);
        p.add_constraint(&[(y, 1.0), (z, 1.0)], Relation::Eq, 4.0);
        p
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let original = sample();
        let mps = write_mps(&original, "SAMPLE");
        let parsed = parse_mps(&mps).unwrap();
        let a = original.solve().unwrap();
        let b = parsed.solve().unwrap();
        assert!(
            (a.objective - b.objective).abs() < 1e-7,
            "{} vs {}",
            a.objective,
            b.objective
        );
        for (va, vb) in a.values.iter().zip(&b.values) {
            assert!((va - vb).abs() < 1e-7);
        }
    }

    #[test]
    fn maximization_round_trips_via_negation() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective(x, 3.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        let mps = write_mps(&p, "MAXCASE");
        assert!(mps.contains("OBJSENSE MAX"));
        let parsed = parse_mps(&mps).unwrap();
        // Parsed min-form optimum is the negation of the max optimum.
        let max_opt = p.solve().unwrap().objective;
        let min_opt = parsed.solve().unwrap().objective;
        assert!((max_opt + min_opt).abs() < 1e-9, "{max_opt} vs {min_opt}");
    }

    #[test]
    fn writer_emits_all_sections() {
        let mps = write_mps(&sample(), "SAMPLE");
        for needle in [
            "NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA", " G  R0", " L  R1", " E  R2",
            " FR BND",
        ] {
            assert!(mps.contains(needle), "missing {needle} in:\n{mps}");
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_mps("NAME X\nROWS\n N COST\nCOLUMNS\n").is_err()); // no ENDATA
        assert!(parse_mps("GARBAGE\nENDATA\n").is_err()); // unknown section
        let unknown_row = "NAME T\nROWS\n N  COST\n G  R0\nCOLUMNS\n    x  R9  1.0\nRHS\nENDATA\n";
        assert!(parse_mps(unknown_row).is_err());
        let bad_number = "NAME T\nROWS\n N  COST\n G  R0\nCOLUMNS\n    x  R0  abc\nRHS\nENDATA\n";
        assert!(parse_mps(bad_number).is_err());
        let ranges = "NAME T\nROWS\n N  COST\nRANGES\nENDATA\n";
        assert!(parse_mps(ranges).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let doc = "\
* a comment
NAME          T

ROWS
 N  COST
 G  R0
COLUMNS
    x  COST  1.0  R0  1.0
RHS
    RHS  R0  5.0
ENDATA
";
        let p = parse_mps(doc).unwrap();
        let s = p.solve().unwrap();
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_pair_column_lines_parse() {
        let doc = "\
NAME T
ROWS
 N  COST
 G  R0
 G  R1
COLUMNS
    x  R0  1.0  R1  2.0
    x  COST  1.0
RHS
    RHS  R0  3.0  R1  10.0
ENDATA
";
        let p = parse_mps(doc).unwrap();
        let s = p.solve().unwrap();
        // x >= 3 and 2x >= 10 → x = 5.
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn s_m_system_survives_the_round_trip() {
        // The real consumer: export an S_m LP, re-import, same optimum.
        use redundancy_stats_free::*;
        let mut lp = Problem::new(Sense::Minimize);
        let dim = 6usize;
        let vars: Vec<_> = (1..=dim)
            .map(|i| lp.add_variable(format!("x{i}")))
            .collect();
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective(*v, (i + 1) as f64);
        }
        let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&cover, Relation::Ge, 100_000.0);
        for k in 1..dim {
            let mut terms = vec![(vars[k - 1], -0.5)];
            for i in (k + 1)..=dim {
                terms.push((vars[i - 1], 0.5 * binom(i as u64, k as u64)));
            }
            lp.add_constraint(&terms, Relation::Ge, 0.0);
        }
        let direct = lp.solve().unwrap().objective;
        let round = parse_mps(&write_mps(&lp, "SM"))
            .unwrap()
            .solve()
            .unwrap()
            .objective;
        assert!(
            (direct - round).abs() < 1e-6 * direct,
            "{direct} vs {round}"
        );
    }

    /// Tiny local binomial so the test avoids a cyclic dev-dependency on
    /// redundancy-stats.
    mod redundancy_stats_free {
        pub fn binom(n: u64, k: u64) -> f64 {
            let k = k.min(n - k);
            let mut acc = 1.0f64;
            for j in 0..k {
                acc = acc * (n - j) as f64 / (j + 1) as f64;
            }
            acc
        }
    }
}
