//! A minimal dense row-major matrix used by the simplex tableau.
//!
//! The solver never needs BLAS-grade performance — the paper's LPs have at
//! most a few dozen rows — but it does need predictable layout and cheap row
//! operations, which a flat `Vec<f64>` provides.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "ragged rows passed to Matrix::from_rows"
        );
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// `row_to += factor * row_from` (the rows must be distinct).
    ///
    /// This is the single hot operation in the simplex pivot.
    #[inline]
    pub fn axpy_rows(&mut self, row_to: usize, row_from: usize, factor: f64) {
        assert_ne!(row_to, row_from, "axpy_rows requires distinct rows");
        if factor == 0.0 {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if row_to < row_from {
            (row_to, row_from)
        } else {
            (row_from, row_to)
        };
        // Split the backing storage so the two rows can be borrowed
        // simultaneously without copying.
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let lo_row = &mut head[lo * cols..lo * cols + cols];
        let hi_row = &mut tail[..cols];
        let (dst, src): (&mut [f64], &[f64]) = if row_to == hi {
            (hi_row, lo_row)
        } else {
            (lo_row, hi_row)
        };
        for (t, f) in dst.iter_mut().zip(src) {
            *t += factor * *f;
        }
    }

    /// Multiply row `r` by `factor`.
    #[inline]
    pub fn scale_row(&mut self, r: usize, factor: f64) {
        for v in self.row_mut(r) {
            *v *= factor;
        }
    }

    /// Matrix-vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// Transposed matrix-vector product `Aᵀ·y`.
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.rows,
            "dimension mismatch in mul_vec_transposed"
        );
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(r)) {
                *o += yr * a;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

/// Solve the square linear system `A·x = b` by Gaussian elimination with
/// partial pivoting, returning `None` if `A` is numerically singular.
///
/// Used by the simplex driver to recover dual values (`Bᵀy = c_B`) from the
/// optimal basis independently of the tableau, which keeps the duals immune
/// to accumulated pivot round-off.
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve_linear_system requires a square matrix");
    assert_eq!(b.len(), n, "rhs length must match matrix dimension");
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot: pick the largest magnitude entry in this column.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[(r, col)]))
            .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))?;
        if pivot_val.abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        for r in col + 1..n {
            let factor = m[(r, col)] / m[(col, col)];
            if factor != 0.0 {
                for c in col..n {
                    let v = m[(col, c)];
                    m[(r, c)] -= factor * v;
                }
                rhs[r] -= factor * rhs[col];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = rhs[col];
        for c in col + 1..n {
            acc -= m[(col, c)] * x[c];
        }
        x[col] = acc / m[(col, col)];
    }
    Some(x)
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Infinity norm of the elementwise difference of two vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn axpy_downward_and_upward() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        m.axpy_rows(1, 0, 2.0); // row1 += 2*row0
        assert_eq!(m.row(1), &[12.0, 24.0]);
        m.axpy_rows(0, 1, -1.0); // row0 -= row1
        assert_eq!(m.row(0), &[-11.0, -22.0]);
    }

    #[test]
    fn axpy_zero_factor_is_noop() {
        let mut m = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let before = m.clone();
        m.axpy_rows(1, 0, 0.0);
        assert_eq!(m, before);
    }

    #[test]
    fn scale_row_works() {
        let mut m = Matrix::from_rows(&[vec![1.0, -2.0]]);
        m.scale_row(0, -0.5);
        assert_eq!(m.row(0), &[-0.5, 1.0]);
    }

    #[test]
    fn mat_vec_products() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.mul_vec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn linear_solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = solve_linear_system(&a, &[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn linear_solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve_linear_system(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn linear_solve_requires_pivoting() {
        // Zero on the diagonal: naive elimination without pivoting would fail.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve_linear_system(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 5.0]), 0.5);
    }
}
