//! Error type for the LP solver.

use std::fmt;

/// Everything that can go wrong while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The feasible region is empty (proved by a positive phase-I optimum).
    Infeasible {
        /// Residual infeasibility measure (phase-I objective value).
        infeasibility: f64,
    },
    /// The objective is unbounded in the optimization direction.
    Unbounded {
        /// Index (in the standard form) of the column along which the
        /// objective can be improved indefinitely.
        ray_column: usize,
    },
    /// The pivot loop exceeded its iteration budget.
    ///
    /// With Bland's rule engaged this indicates a genuinely enormous problem
    /// (or a bug), never cycling.
    IterationLimit {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// A constraint or objective referenced a variable that does not exist.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// Number of variables actually declared.
        declared: usize,
    },
    /// The problem contains a non-finite coefficient, bound, or objective.
    NonFiniteData {
        /// Human-readable location of the bad datum.
        location: String,
    },
    /// The problem has no variables or no constraints where they are required.
    EmptyProblem,
    /// Exact rational arithmetic left the `i128` range.
    ///
    /// Only the exact oracle ([`crate::exact`]) reports this; it means the
    /// instance is too large for 128-bit exact certification, not that the
    /// f64 answer is wrong.
    ArithmeticOverflow {
        /// Human-readable location of the overflowing operation.
        location: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible { infeasibility } => write!(
                f,
                "linear program is infeasible (phase-I residual {infeasibility:.3e})"
            ),
            LpError::Unbounded { ray_column } => write!(
                f,
                "linear program is unbounded (improving ray along standard-form column {ray_column})"
            ),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            LpError::UnknownVariable { index, declared } => write!(
                f,
                "variable index {index} out of range ({declared} variables declared)"
            ),
            LpError::NonFiniteData { location } => {
                write!(f, "non-finite coefficient in {location}")
            }
            LpError::EmptyProblem => write!(f, "problem has no variables"),
            LpError::ArithmeticOverflow { location } => {
                write!(f, "exact arithmetic overflowed i128 in {location}")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            LpError::Infeasible { infeasibility: 1.0 }.to_string(),
            LpError::Unbounded { ray_column: 3 }.to_string(),
            LpError::IterationLimit { limit: 10 }.to_string(),
            LpError::UnknownVariable {
                index: 7,
                declared: 2,
            }
            .to_string(),
            LpError::NonFiniteData {
                location: "row 1".into(),
            }
            .to_string(),
            LpError::EmptyProblem.to_string(),
            LpError::ArithmeticOverflow {
                location: "pivot".into(),
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("infeasible"));
        assert!(msgs[1].contains("unbounded"));
        assert!(msgs[2].contains("limit"));
        assert!(msgs[3].contains("out of range"));
        assert!(msgs[4].contains("non-finite"));
        assert!(msgs[5].contains("no variables"));
        assert!(msgs[6].contains("overflow"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LpError::EmptyProblem);
        assert!(e.to_string().contains("no variables"));
    }
}
