//! User-facing linear program builder.
//!
//! A [`Problem`] collects variables, an objective, and constraints in the
//! natural "modeling" form; [`Problem::solve`] normalizes it to standard form
//! and runs the two-phase simplex.

use crate::error::LpError;
use crate::simplex::{self, SimplexOptions};
use crate::solution::Solution;
use crate::standard::StandardForm;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// Opaque handle to a variable of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Positional index of the variable (order of `add_variable` calls).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Sign restriction of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// `x ≥ 0` (the default, and the only kind the paper's LPs need).
    NonNegative,
    /// Unrestricted in sign; internally split into a difference of two
    /// non-negative variables.
    Free,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) kind: VarKind,
    pub(crate) objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse row: (variable index, coefficient).
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A linear program in modeling form.
///
/// ```
/// use redundancy_lp::{Problem, Relation, Sense};
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.add_variable("x");
/// p.set_objective(x, 3.0);
/// p.add_constraint(&[(x, 1.0)], Relation::Le, 2.0);
/// assert!((p.solve().unwrap().objective - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) variables: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Create an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            variables: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Declare a non-negative variable and return its handle.
    pub fn add_variable(&mut self, name: impl Into<String>) -> VarId {
        self.add_variable_kind(name, VarKind::NonNegative)
    }

    /// Declare a sign-unrestricted variable and return its handle.
    pub fn add_free_variable(&mut self, name: impl Into<String>) -> VarId {
        self.add_variable_kind(name, VarKind::Free)
    }

    fn add_variable_kind(&mut self, name: impl Into<String>, kind: VarKind) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            kind,
            objective: 0.0,
        });
        id
    }

    /// Set the objective coefficient of `var` (default 0).
    pub fn set_objective(&mut self, var: VarId, coeff: f64) {
        self.variables[var.0].objective = coeff;
    }

    /// Add the constraint `Σ coeff·var  relation  rhs`.
    ///
    /// Repeated variables in `terms` are summed.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], relation: Relation, rhs: f64) {
        self.constraints.push(Constraint {
            terms: terms.iter().map(|&(v, c)| (v.0, c)).collect(),
            relation,
            rhs,
        });
    }

    /// Number of declared variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn variable_name(&self, var: VarId) -> &str {
        &self.variables[var.0].name
    }

    /// Name of the variable at positional `index`.
    pub fn variable_name_at(&self, index: usize) -> &str {
        &self.variables[index].name
    }

    /// Sign restriction of the variable at positional `index`.
    pub fn variable_kind(&self, index: usize) -> VarKind {
        self.variables[index].kind
    }

    /// Objective coefficient of the variable at positional `index`.
    pub fn objective_coefficient(&self, index: usize) -> f64 {
        self.variables[index].objective
    }

    /// Handle for the variable at positional `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn variable_id(&self, index: usize) -> VarId {
        assert!(index < self.variables.len(), "variable index out of range");
        VarId(index)
    }

    /// Validate all data is finite and all indices are in range.
    pub fn validate(&self) -> Result<(), LpError> {
        if self.variables.is_empty() {
            return Err(LpError::EmptyProblem);
        }
        for v in &self.variables {
            if !v.objective.is_finite() {
                return Err(LpError::NonFiniteData {
                    location: format!("objective coefficient of variable {}", v.name),
                });
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(LpError::NonFiniteData {
                    location: format!("right-hand side of constraint {ci}"),
                });
            }
            for &(vi, coeff) in &c.terms {
                if vi >= self.variables.len() {
                    return Err(LpError::UnknownVariable {
                        index: vi,
                        declared: self.variables.len(),
                    });
                }
                if !coeff.is_finite() {
                    return Err(LpError::NonFiniteData {
                        location: format!("constraint {ci}, variable index {vi}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Solve with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solve with explicit simplex options.
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution, LpError> {
        self.validate()?;
        let sf = StandardForm::from_problem(self);
        let raw = simplex::solve_standard(&sf, options)?;
        Ok(sf.recover(self, raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_bookkeeping() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_free_variable("y");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        assert_eq!(p.num_variables(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.variable_name(x), "x");
        assert_eq!(p.variable_name(y), "y");
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        let p = Problem::new(Sense::Minimize);
        assert_eq!(p.validate(), Err(LpError::EmptyProblem));
    }

    #[test]
    fn validate_rejects_nan_objective() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, f64::NAN);
        assert!(matches!(p.validate(), Err(LpError::NonFiniteData { .. })));
    }

    #[test]
    fn validate_rejects_nan_rhs_and_coeff() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], Relation::Le, f64::INFINITY);
        assert!(matches!(p.validate(), Err(LpError::NonFiniteData { .. })));

        let mut p2 = Problem::new(Sense::Minimize);
        let x2 = p2.add_variable("x");
        p2.add_constraint(&[(x2, f64::NAN)], Relation::Le, 1.0);
        assert!(matches!(p2.validate(), Err(LpError::NonFiniteData { .. })));
    }

    #[test]
    fn validate_rejects_unknown_variable() {
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_variable("x");
        // Forge a constraint against a variable from another problem.
        p.constraints.push(Constraint {
            terms: vec![(5, 1.0)],
            relation: Relation::Le,
            rhs: 1.0,
        });
        assert!(matches!(p.validate(), Err(LpError::UnknownVariable { .. })));
    }
}
