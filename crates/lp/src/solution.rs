//! Solution types returned by the solver.

use crate::problem::VarId;

/// Termination status of a successful solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// An optimal solution to a [`crate::Problem`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status (always [`Status::Optimal`]; infeasible/unbounded
    /// outcomes are reported as [`crate::LpError`] instead).
    pub status: Status,
    /// Objective value in the problem's original sense.
    pub objective: f64,
    /// Primal values, indexed like the problem's variables.
    pub values: Vec<f64>,
    /// Dual values (one per constraint, in a `min` convention: for a
    /// minimization problem, `y_i ≥ 0` for `≥` rows and `y_i ≤ 0` for `≤`
    /// rows at optimality).
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub pivots: usize,
}

impl Solution {
    /// Value of one variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Indices of variables that are (numerically) nonzero.
    pub fn support(&self, tol: f64) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v.abs() > tol)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_filters_by_tolerance() {
        let s = Solution {
            status: Status::Optimal,
            objective: 0.0,
            values: vec![1.0, 1e-12, -2.0, 0.0],
            duals: vec![],
            pivots: 0,
        };
        assert_eq!(s.support(1e-9), vec![0, 2]);
        assert_eq!(s.value(VarId(2)), -2.0);
    }
}
