//! The two-phase primal simplex engine operating on a [`StandardForm`].
//!
//! The implementation keeps a full dense tableau: `m` constraint rows plus a
//! reduced-cost row, with a basis map from rows to columns.  Phase I
//! introduces artificial variables only for rows that do not already carry a
//! usable slack column, minimizes their sum to prove feasibility, pivots
//! residual artificials out of the basis (deleting linearly dependent rows),
//! and phase II then minimizes the true objective.
//!
//! Pivot selection defaults to Dantzig's rule (most negative reduced cost)
//! and switches to Bland's rule after a run of degenerate pivots, which makes
//! termination unconditional while keeping the common case fast.

use crate::dense::{self, Matrix};
use crate::error::LpError;
use crate::standard::StandardForm;
use crate::DEFAULT_TOL;

/// Column-selection rule for the entering variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotRule {
    /// Most negative reduced cost (fast in practice; can cycle in theory).
    Dantzig,
    /// Lowest-index negative reduced cost (provably terminating).
    Bland,
    /// Dantzig until `degenerate_limit` consecutive degenerate pivots occur,
    /// then Bland for the remainder of the phase.  The default.
    Adaptive {
        /// Number of consecutive zero-progress pivots tolerated before
        /// switching to Bland's rule.
        degenerate_limit: usize,
    },
}

impl Default for PivotRule {
    fn default() -> Self {
        PivotRule::Adaptive {
            degenerate_limit: 32,
        }
    }
}

/// Knobs for the simplex driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Numerical tolerance for feasibility, optimality, and pivot magnitude.
    pub tol: f64,
    /// Hard cap on pivots per phase.
    pub max_iters: usize,
    /// Entering-column selection rule.
    pub pivot_rule: PivotRule,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tol: DEFAULT_TOL,
            max_iters: 50_000,
            pivot_rule: PivotRule::default(),
        }
    }
}

/// Solution in standard-form coordinates, before mapping back to the
/// original problem.
#[derive(Debug, Clone)]
pub struct RawSolution {
    /// Values of the standard-form columns.
    pub x: Vec<f64>,
    /// Minimization-sense objective value.
    pub objective: f64,
    /// Dual value per standard-form row (0 for rows proved redundant).
    pub duals: Vec<f64>,
    /// Total pivots across both phases.
    pub pivots: usize,
}

/// Dense simplex tableau: constraint rows plus one reduced-cost row.
struct Tableau {
    /// `m × (ncols + 1)`; the final column is the right-hand side.
    t: Matrix,
    /// Reduced-cost row, length `ncols + 1`; the final entry is `-z`.
    obj: Vec<f64>,
    /// `basis[r]` = column currently basic in row `r`.
    basis: Vec<usize>,
    ncols: usize,
}

enum PhaseOutcome {
    Optimal,
    Unbounded { column: usize },
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.t[(r, self.ncols)]
    }

    /// Load the cost vector `c` and price out the current basis so the
    /// reduced-cost row is consistent.
    fn set_costs(&mut self, c: &[f64]) {
        self.obj = vec![0.0; self.ncols + 1];
        self.obj[..c.len()].copy_from_slice(c);
        for r in 0..self.basis.len() {
            let cb = self.obj[self.basis[r]];
            if cb != 0.0 {
                let row: Vec<f64> = self.t.row(r).to_vec();
                for (o, v) in self.obj.iter_mut().zip(&row) {
                    *o -= cb * v;
                }
            }
        }
    }

    /// Current objective value (the reduced-cost row stores `-z`).
    fn objective(&self) -> f64 {
        -self.obj[self.ncols]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.t[(row, col)];
        debug_assert!(p.abs() > 0.0, "pivot on zero element");
        self.t.scale_row(row, 1.0 / p);
        // Re-normalize the pivot position exactly to dampen round-off drift.
        self.t[(row, col)] = 1.0;
        for r in 0..self.t.rows() {
            if r != row {
                let f = self.t[(r, col)];
                if f != 0.0 {
                    self.t.axpy_rows(r, row, -f);
                    self.t[(r, col)] = 0.0;
                }
            }
        }
        let f = self.obj[col];
        if f != 0.0 {
            let row_vals: Vec<f64> = self.t.row(row).to_vec();
            for (o, v) in self.obj.iter_mut().zip(&row_vals) {
                *o -= f * v;
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Select the entering column under `rule`, considering only columns
    /// where `allowed` is true.
    fn entering(&self, rule: PivotRule, bland: bool, tol: f64, allowed: &[bool]) -> Option<usize> {
        let use_bland = bland || rule == PivotRule::Bland;
        let mut best: Option<(usize, f64)> = None;
        for (j, &ok) in allowed.iter().enumerate().take(self.ncols) {
            if !ok {
                continue;
            }
            let rj = self.obj[j];
            if rj < -tol {
                if use_bland {
                    return Some(j);
                }
                match best {
                    Some((_, b)) if rj >= b => {}
                    _ => best = Some((j, rj)),
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// Minimum-ratio test for entering column `col`.  Ties are broken by the
    /// smallest basis column index (lexicographic safeguard).
    fn leaving(&self, col: usize, tol: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.t.rows() {
            let a = self.t[(r, col)];
            if a > tol {
                let ratio = self.rhs(r) / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - tol
                            || ((ratio - bratio).abs() <= tol && self.basis[r] < self.basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Run pivots until optimality or unboundedness under the given costs.
    fn optimize(
        &mut self,
        opts: &SimplexOptions,
        allowed: &[bool],
        pivots: &mut usize,
    ) -> Result<PhaseOutcome, LpError> {
        let mut degenerate_run = 0usize;
        let mut bland = false;
        for _ in 0..opts.max_iters {
            let Some(col) = self.entering(opts.pivot_rule, bland, opts.tol, allowed) else {
                return Ok(PhaseOutcome::Optimal);
            };
            let Some(row) = self.leaving(col, opts.tol) else {
                return Ok(PhaseOutcome::Unbounded { column: col });
            };
            let progress = self.rhs(row) / self.t[(row, col)];
            if progress.abs() <= opts.tol {
                degenerate_run += 1;
                if let PivotRule::Adaptive { degenerate_limit } = opts.pivot_rule {
                    if degenerate_run >= degenerate_limit {
                        bland = true;
                    }
                }
            } else {
                degenerate_run = 0;
            }
            self.pivot(row, col);
            *pivots += 1;
        }
        Err(LpError::IterationLimit {
            limit: opts.max_iters,
        })
    }
}

/// Solve a standard-form LP, returning standard-form primal/dual values.
pub fn solve_standard(sf: &StandardForm, opts: &SimplexOptions) -> Result<RawSolution, LpError> {
    let m = sf.num_rows();
    let n = sf.num_columns();
    if m == 0 {
        // min cᵀx over x ≥ 0: unbounded along any negative cost direction,
        // otherwise x = 0.
        if let Some(j) = sf.c.iter().position(|&cj| cj < -opts.tol) {
            return Err(LpError::Unbounded { ray_column: j });
        }
        return Ok(RawSolution {
            x: vec![0.0; n],
            objective: 0.0,
            duals: vec![],
            pivots: 0,
        });
    }

    // --- Build tableau with artificials where no unit column exists. -----
    let mut basis = vec![usize::MAX; m];
    for j in 0..n {
        // A column usable as an initial basic column: exactly one +1 entry
        // and zeros elsewhere, in a row that still needs a basic variable.
        let mut unit_row = None;
        let mut ok = true;
        for r in 0..m {
            let v = sf.a[(r, j)];
            if v == 0.0 {
                continue;
            }
            if v == 1.0 && unit_row.is_none() {
                unit_row = Some(r);
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            if let Some(r) = unit_row {
                if basis[r] == usize::MAX {
                    basis[r] = j;
                }
            }
        }
    }
    let art_rows: Vec<usize> = (0..m).filter(|&r| basis[r] == usize::MAX).collect();
    let n_art = art_rows.len();
    let ncols = n + n_art;
    let mut t = Matrix::zeros(m, ncols + 1);
    for r in 0..m {
        for j in 0..n {
            t[(r, j)] = sf.a[(r, j)];
        }
        t[(r, ncols)] = sf.b[r];
    }
    for (k, &r) in art_rows.iter().enumerate() {
        t[(r, n + k)] = 1.0;
        basis[r] = n + k;
    }
    let mut tab = Tableau {
        t,
        obj: vec![0.0; ncols + 1],
        basis,
        ncols,
    };
    let mut pivots = 0usize;

    // --- Phase I -----------------------------------------------------------
    if n_art > 0 {
        let mut c1 = vec![0.0; ncols];
        for k in 0..n_art {
            c1[n + k] = 1.0;
        }
        tab.set_costs(&c1);
        let allowed = vec![true; ncols];
        match tab.optimize(opts, &allowed, &mut pivots)? {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded { .. } => {
                // The phase-I objective is bounded below by zero, so a
                // reported improving ray is round-off (a reduced cost just
                // past the tolerance with no usable pivot).  Stop here and
                // let the residual-infeasibility check below decide.
            }
        }
        let infeasibility = tab.objective();
        if infeasibility > opts.tol.max(1e-7) {
            return Err(LpError::Infeasible { infeasibility });
        }
        // Drive remaining artificials out of the basis; rows that cannot be
        // pivoted are linearly dependent and are dropped below.
        let mut drop_rows = Vec::new();
        for r in 0..m {
            if tab.basis[r] >= n {
                let mut pivoted = false;
                for j in 0..n {
                    if tab.t[(r, j)].abs() > opts.tol {
                        tab.pivot(r, j);
                        pivots += 1;
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    drop_rows.push(r);
                }
            }
        }
        if !drop_rows.is_empty() {
            return solve_after_dropping(sf, opts, &drop_rows, pivots);
        }
    }

    // --- Phase II ----------------------------------------------------------
    tab.set_costs(&sf.c);
    let mut allowed = vec![true; ncols];
    for a in allowed.iter_mut().skip(n) {
        *a = false; // artificial columns are frozen out
    }
    match tab.optimize(opts, &allowed, &mut pivots)? {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded { column } => {
            return Err(LpError::Unbounded { ray_column: column })
        }
    }

    // --- Extract primal and dual values ------------------------------------
    let mut x = vec![0.0; n];
    for r in 0..m {
        let j = tab.basis[r];
        if j < n {
            x[j] = tab.rhs(r).max(0.0);
        }
    }
    let objective = dense::dot(&sf.c, &x);
    let duals = recover_duals(sf, &tab.basis, &(0..m).collect::<Vec<_>>(), m);
    Ok(RawSolution {
        x,
        objective,
        duals,
        pivots,
    })
}

/// Re-solve after deleting linearly dependent rows discovered in phase I.
///
/// Rebuilding is simpler than surgically removing tableau rows and, because
/// redundancy is rare and the matrices tiny, costs nothing in practice.
fn solve_after_dropping(
    sf: &StandardForm,
    opts: &SimplexOptions,
    drop_rows: &[usize],
    prior_pivots: usize,
) -> Result<RawSolution, LpError> {
    let keep: Vec<usize> = (0..sf.num_rows())
        .filter(|r| !drop_rows.contains(r))
        .collect();
    let n = sf.num_columns();
    let mut a = Matrix::zeros(keep.len(), n);
    let mut b = Vec::with_capacity(keep.len());
    for (new_r, &old_r) in keep.iter().enumerate() {
        for j in 0..n {
            a[(new_r, j)] = sf.a[(old_r, j)];
        }
        b.push(sf.b[old_r]);
    }
    let reduced = StandardForm {
        a,
        b,
        c: sf.c.clone(),
        origins: sf.origins.clone(),
        row_scale: vec![1.0; keep.len()],
        maximized: sf.maximized,
    };
    let mut raw = solve_standard(&reduced, opts)?;
    raw.pivots += prior_pivots;
    // Scatter duals back to the original row positions; dropped (redundant)
    // rows take dual 0, which satisfies complementary slackness trivially.
    let mut duals = vec![0.0; sf.num_rows()];
    for (new_r, &old_r) in keep.iter().enumerate() {
        duals[old_r] = raw.duals[new_r];
    }
    raw.duals = duals;
    Ok(raw)
}

/// Recover duals by solving `Bᵀ·y = c_B` for the optimal basis `B`.
fn recover_duals(sf: &StandardForm, basis: &[usize], rows: &[usize], m: usize) -> Vec<f64> {
    let n = sf.num_columns();
    let k = rows.len();
    let mut bt = Matrix::zeros(k, k);
    let mut cb = vec![0.0; k];
    for (bi, (&row_set_idx, &col)) in rows.iter().zip(basis).enumerate() {
        let _ = row_set_idx;
        for (ri, &row) in rows.iter().enumerate() {
            // Bᵀ entry (bi, ri) = A[row, basis[bi]]
            bt[(bi, ri)] = if col < n { sf.a[(row, col)] } else { 0.0 };
        }
        cb[bi] = if col < n { sf.c[col] } else { 0.0 };
    }
    match dense::solve_linear_system(&bt, &cb) {
        Some(y) => {
            let mut duals = vec![0.0; m];
            for (ri, &row) in rows.iter().enumerate() {
                duals[row] = y[ri];
            }
            duals
        }
        // Singular basis matrix can only arise from severe degeneracy; fall
        // back to zero duals rather than failing the whole solve, since the
        // primal solution remains valid.
        None => vec![0.0; m],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  →  z = 36 at (2,6).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve().expect("textbook maximization fixture solves");
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase_one() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → (7,3), z = 23.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(y, 1.0)], Relation::Ge, 3.0);
        let s = p.solve().expect("phase-one minimization fixture solves");
        assert_close(s.objective, 23.0);
        assert_close(s.value(x), 7.0);
        assert_close(s.value(y), 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, 3x + y = 7 → x = 2, y = 1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(x, 3.0), (y, 1.0)], Relation::Eq, 7.0);
        let s = p.solve().expect("equality-constraints fixture solves");
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert!(matches!(p.solve(), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0);
        assert!(matches!(p.solve(), Err(LpError::Unbounded { .. })));
    }

    #[test]
    fn unconstrained_min_of_nonnegative_vars_is_zero() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 5.0);
        let s = p.solve().expect("unconstrained nonnegative fixture solves");
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn unconstrained_negative_cost_is_unbounded() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, -5.0);
        assert!(matches!(p.solve(), Err(LpError::Unbounded { .. })));
    }

    #[test]
    fn free_variable_goes_negative() {
        // min y s.t. y >= -5 with y free → y = -5.
        let mut p = Problem::new(Sense::Minimize);
        let y = p.add_free_variable("y");
        p.set_objective(y, 1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Ge, -5.0);
        let s = p.solve().expect("free-variable fixture solves");
        assert_close(s.value(y), -5.0);
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        // Same equality twice: phase I leaves a basic artificial on a
        // dependent row, exercising the row-dropping path.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 6.0);
        let s = p.solve().expect("redundant-rows fixture solves");
        assert_close(s.objective, 3.0);
        assert_close(s.value(x), 3.0);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale (1955): cycles under naive Dantzig with certain tie-breaks;
        // the adaptive Bland fallback must terminate at z = -0.05.
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_variable("x1");
        let x2 = p.add_variable("x2");
        let x3 = p.add_variable("x3");
        let x4 = p.add_variable("x4");
        p.set_objective(x1, -0.75);
        p.set_objective(x2, 150.0);
        p.set_objective(x3, -0.02);
        p.set_objective(x4, 6.0);
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let s = p.solve().expect("Beale cycling fixture terminates");
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn bland_rule_only_also_solves() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 3.0);
        let opts = SimplexOptions {
            pivot_rule: PivotRule::Bland,
            ..SimplexOptions::default()
        };
        let s = p.solve_with(&opts).expect("Bland-rule fixture solves");
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        let opts = SimplexOptions {
            max_iters: 0,
            ..SimplexOptions::default()
        };
        assert!(matches!(
            p.solve_with(&opts),
            Err(LpError::IterationLimit { limit: 0 })
        ));
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        // min 2x + 3y s.t. x + y >= 10, x - y <= 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0);
        let s = p.solve().expect("strong-duality fixture solves");
        // Optimal primal: minimize cost along x + y = 10 ⇒ prefer x (cost 2)
        // until x - y = 2 binds: x = 6, y = 4, z = 24.
        assert_close(s.objective, 24.0);
        // Strong duality: bᵀy = cᵀx.
        let dual_obj = 10.0 * s.duals[0] + 2.0 * s.duals[1];
        assert_close(dual_obj, s.objective);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x >= -3 written as -x <= 3 internally; optimum x = 0 for min x.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, 3.0);
        let s = p.solve().expect("negative-rhs fixture solves");
        assert_close(s.value(x), 0.0);
    }

    #[test]
    fn degenerate_problem_solves() {
        // Multiple constraints active at the optimum (degenerate vertex).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
        p.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 3.0);
        let s = p.solve().expect("degenerate-vertex fixture solves");
        assert_close(s.objective, 2.0);
    }
}
