//! Differential and metamorphic testing of the f64 simplex against the
//! exact-rational oracle.
//!
//! The generator produces random *covering* LPs — `min cᵀx` s.t. `Ax ≥ b`,
//! `x ≥ 0` with `c > 0`, `A ≥ 0`, `b ≥ 0` — which are feasible (scale any
//! point up) and bounded (nonnegative costs) by construction, so both
//! solvers must return `Ok` on every case.  All data is drawn from small
//! dyadic grids (halves and quarters), so the exact oracle's `i128`
//! rationals stay tiny and every coefficient converts to ℚ without
//! rounding.
//!
//! Two layers:
//!
//! * **differential** — the f64 objective must agree with the certified
//!   exact optimum on every generated instance (256 cases, zero tolerance
//!   for disagreement beyond f64 roundoff);
//! * **metamorphic** — transformations with a known effect on the optimum
//!   (variable permutation, positive row scaling, adding a dominated
//!   column) must leave the f64 solver's answer unchanged, without needing
//!   any oracle at all.

use proptest::prelude::*;
use redundancy_lp::exact::solve_exact;
use redundancy_lp::{Problem, Relation, Sense};

/// The generated instance data, after seed expansion: exact dyadic costs,
/// coefficient rows, and demands.
struct Covering {
    costs: Vec<f64>,
    rows: Vec<Vec<f64>>,
    demands: Vec<f64>,
}

impl Covering {
    /// Expand integer seeds into a covering LP on the dyadic grid.  Row `r`
    /// is guaranteed a positive coefficient on variable `r mod n`, so no
    /// row is vacuous.
    fn from_seeds(
        n: usize,
        m: usize,
        seed_costs: &[u32],
        seed_rows: &[Vec<u32>],
        seed_demands: &[u32],
    ) -> Self {
        let costs: Vec<f64> = seed_costs[..n].iter().map(|&c| c as f64 / 2.0).collect();
        let rows: Vec<Vec<f64>> = seed_rows[..m]
            .iter()
            .enumerate()
            .map(|(r, row)| {
                let mut coeffs: Vec<f64> = row[..n].iter().map(|&a| a as f64 / 4.0).collect();
                coeffs[r % n] += 1.0;
                coeffs
            })
            .collect();
        let demands: Vec<f64> = seed_demands[..m].iter().map(|&d| d as f64 / 2.0).collect();
        Covering {
            costs,
            rows,
            demands,
        }
    }

    fn build(&self) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..self.costs.len())
            .map(|i| p.add_variable(format!("x{i}")))
            .collect();
        for (v, &c) in vars.iter().zip(&self.costs) {
            p.set_objective(*v, c);
        }
        for (row, &d) in self.rows.iter().zip(&self.demands) {
            let terms: Vec<_> = vars.iter().copied().zip(row.iter().copied()).collect();
            p.add_constraint(&terms, Relation::Ge, d);
        }
        p
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential oracle: on every random covering LP the f64 simplex
    /// objective equals the exact-rational optimum (to f64 roundoff), and
    /// the exact solution passes its four-condition optimality certificate.
    #[test]
    fn exact_oracle_agrees_with_f64_simplex(
        n in 2usize..5,
        m in 1usize..4,
        seed_costs in proptest::collection::vec(1u32..=40, 4),
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0u32..=16, 4), 3),
        seed_demands in proptest::collection::vec(0u32..=40, 3),
    ) {
        let data = Covering::from_seeds(n, m, &seed_costs, &seed_rows, &seed_demands);
        let p = data.build();
        let f = p.solve().expect("covering LPs are feasible and bounded");
        let e = solve_exact(&p).expect("exact oracle solves every covering LP");
        prop_assert!(
            e.certificate.optimal(),
            "certificate failed: {:?}", e.certificate
        );
        let exact = e.objective.to_f64();
        prop_assert!(
            close(f.objective, exact),
            "f64 {} disagrees with certified exact optimum {}", f.objective, exact
        );
        // Primal values must be nonnegative in ℚ, not merely within epsilon.
        prop_assert!(e.values.iter().all(|v| !v.is_negative()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Metamorphic: relabeling the variables (a cyclic rotation of the
    /// columns) never changes the optimum.
    #[test]
    fn variable_permutation_preserves_the_optimum(
        n in 2usize..5,
        m in 1usize..4,
        rot in 1usize..4,
        seed_costs in proptest::collection::vec(1u32..=40, 4),
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0u32..=16, 4), 3),
        seed_demands in proptest::collection::vec(0u32..=40, 3),
    ) {
        let data = Covering::from_seeds(n, m, &seed_costs, &seed_rows, &seed_demands);
        let base = data.build().solve().expect("base solves").objective;
        let rotate = |v: &[f64]| -> Vec<f64> {
            (0..v.len()).map(|i| v[(i + rot) % v.len()]).collect()
        };
        let permuted = Covering {
            costs: rotate(&data.costs),
            rows: data.rows.iter().map(|r| rotate(r)).collect(),
            demands: data.demands.clone(),
        };
        let z = permuted.build().solve().expect("permuted solves").objective;
        prop_assert!(close(base, z), "rot {}: {} vs {}", rot, base, z);
    }

    /// Metamorphic: scaling one constraint row and its demand by the same
    /// positive factor describes the identical halfspace, so the optimum
    /// is untouched.
    #[test]
    fn positive_row_scaling_preserves_the_optimum(
        n in 2usize..5,
        m in 1usize..4,
        which in 0usize..3,
        scale_q in 1u32..=12,
        seed_costs in proptest::collection::vec(1u32..=40, 4),
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0u32..=16, 4), 3),
        seed_demands in proptest::collection::vec(0u32..=40, 3),
    ) {
        let mut data = Covering::from_seeds(n, m, &seed_costs, &seed_rows, &seed_demands);
        let base = data.build().solve().expect("base solves").objective;
        let s = scale_q as f64 / 4.0;
        let row = which % m;
        for a in &mut data.rows[row] {
            *a *= s;
        }
        data.demands[row] *= s;
        let z = data.build().solve().expect("scaled solves").objective;
        prop_assert!(close(base, z), "scale {}: {} vs {}", s, base, z);
    }

    /// Metamorphic: adjoining a *dominated* column — costlier than an
    /// existing variable while covering no more in any row — can never be
    /// part of an optimal basis, so the optimum is unchanged.
    #[test]
    fn dominated_column_never_changes_the_optimum(
        n in 2usize..5,
        m in 1usize..4,
        dom in 0usize..4,
        seed_costs in proptest::collection::vec(1u32..=40, 4),
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0u32..=16, 4), 3),
        seed_demands in proptest::collection::vec(0u32..=40, 3),
    ) {
        let mut data = Covering::from_seeds(n, m, &seed_costs, &seed_rows, &seed_demands);
        let base = data.build().solve().expect("base solves").objective;
        let k = dom % n;
        // Twice the cost of column k, half its coverage per row.
        data.costs.push(data.costs[k] * 2.0);
        for row in &mut data.rows {
            let half = row[k] / 2.0;
            row.push(half);
        }
        let z = data.build().solve().expect("augmented solves").objective;
        prop_assert!(close(base, z), "dominated col vs x{}: {} vs {}", k, base, z);
    }
}
