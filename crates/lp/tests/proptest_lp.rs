//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random bounded LPs, solve them, and check
//! (a) the independent audit in `redundancy_lp::verify` passes, and
//! (b) no randomly sampled feasible point beats the reported optimum.

use proptest::prelude::*;
use redundancy_lp::{verify_solution, Problem, Relation, Sense};

/// Build a bounded random minimization LP:
/// `min cᵀx  s.t.  Aᵢx ≥ bᵢ (coverage rows), x ≤ u (box), x ≥ 0`.
///
/// Non-negative costs plus box constraints guarantee the LP is feasible
/// (x = u is feasible when every row satisfies Aᵢu ≥ bᵢ, enforced by
/// construction) and bounded.
fn random_lp(
    n: usize,
    costs: Vec<f64>,
    rows: Vec<Vec<f64>>,
    demands: Vec<f64>,
    upper: f64,
) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (0..n).map(|i| p.add_variable(format!("x{i}"))).collect();
    for (v, c) in vars.iter().zip(&costs) {
        p.set_objective(*v, *c);
    }
    for (row, &d) in rows.iter().zip(&demands) {
        let lhs_at_upper: f64 = row.iter().sum::<f64>() * upper;
        // Clamp demand so the all-`upper` point stays feasible.
        let demand = d.min(lhs_at_upper * 0.9);
        let terms: Vec<_> = vars.iter().copied().zip(row.iter().copied()).collect();
        p.add_constraint(&terms, Relation::Ge, demand);
    }
    for v in &vars {
        p.add_constraint(&[(*v, 1.0)], Relation::Le, upper);
    }
    p
}

fn feasible(rows: &[Vec<f64>], demands: &[f64], upper: f64, x: &[f64]) -> bool {
    if x.iter().any(|&v| v < 0.0 || v > upper) {
        return false;
    }
    rows.iter().zip(demands).all(|(row, &d)| {
        let lhs: f64 = row.iter().zip(x).map(|(a, v)| a * v).sum();
        let lhs_at_upper: f64 = row.iter().sum::<f64>() * upper;
        lhs >= d.min(lhs_at_upper * 0.9) - 1e-9
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_beats_random_feasible_points(
        n in 2usize..5,
        seed_costs in proptest::collection::vec(0.1f64..10.0, 5),
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0.05f64..4.0, 5), 1..4),
        seed_demands in proptest::collection::vec(0.5f64..20.0, 4),
        samples in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 5), 16),
        upper in 2.0f64..20.0,
    ) {
        let costs: Vec<f64> = seed_costs[..n].to_vec();
        let rows: Vec<Vec<f64>> = seed_rows.iter().map(|r| r[..n].to_vec()).collect();
        let demands: Vec<f64> = seed_demands[..rows.len()].to_vec();
        let p = random_lp(n, costs.clone(), rows.clone(), demands.clone(), upper);
        let sol = p.solve().expect("bounded feasible LP must solve");

        // Independent audit: feasibility, duality gap, complementary slackness.
        let report = verify_solution(&p, &sol);
        prop_assert!(report.is_ok(1e-6), "audit failed: {report:?}");

        // The optimum must not be beaten by any sampled feasible point.
        for s in &samples {
            let x: Vec<f64> = s[..n].iter().map(|u| u * upper).collect();
            if feasible(&rows, &demands, upper, &x) {
                let obj: f64 = costs.iter().zip(&x).map(|(c, v)| c * v).sum();
                prop_assert!(
                    sol.objective <= obj + 1e-6,
                    "solver {:.6} beaten by sample {:.6}", sol.objective, obj
                );
            }
        }
    }

    #[test]
    fn equality_lps_solve_and_audit(
        a in 0.2f64..5.0,
        b in 0.2f64..5.0,
        rhs in 1.0f64..50.0,
        c1 in 0.1f64..10.0,
        c2 in 0.1f64..10.0,
    ) {
        // min c1·x + c2·y  s.t.  a·x + b·y = rhs — optimum picks the cheaper
        // cost-per-unit-of-constraint variable.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective(x, c1);
        p.set_objective(y, c2);
        p.add_constraint(&[(x, a), (y, b)], Relation::Eq, rhs);
        let sol = p.solve().expect("must solve");
        let expect = (c1 / a).min(c2 / b) * rhs;
        prop_assert!((sol.objective - expect).abs() < 1e-6 * expect.max(1.0),
            "got {} expected {}", sol.objective, expect);
        let report = verify_solution(&p, &sol);
        prop_assert!(report.is_ok(1e-6), "{report:?}");
    }

    #[test]
    fn presolve_preserves_the_optimum(
        n in 2usize..5,
        seed_costs in proptest::collection::vec(0.1f64..10.0, 5),
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0.05f64..4.0, 5), 1..4),
        seed_demands in proptest::collection::vec(0.5f64..20.0, 4),
        upper in 2.0f64..20.0,
        fix_value in 0.0f64..5.0,
    ) {
        let costs: Vec<f64> = seed_costs[..n].to_vec();
        let rows: Vec<Vec<f64>> = seed_rows.iter().map(|r| r[..n].to_vec()).collect();
        let demands: Vec<f64> = seed_demands[..rows.len()].to_vec();
        let mut p = random_lp(n, costs, rows.clone(), demands, upper);
        // Adjoin an extra fixed variable and a duplicated constraint so the
        // reductions actually fire.
        let extra = p.add_variable("extra");
        p.set_objective(extra, 1.0);
        p.add_constraint(&[(extra, 2.0)], Relation::Eq, 2.0 * fix_value);
        let direct = p.solve().expect("solvable");
        let (pre, _stats) = redundancy_lp::solve_with_presolve(&p).expect("solvable");
        prop_assert!(
            (direct.objective - pre.objective).abs() < 1e-6 * direct.objective.abs().max(1.0),
            "direct {} vs presolved {}", direct.objective, pre.objective
        );
        prop_assert!((pre.value(extra) - fix_value).abs() < 1e-9);
        let report = verify_solution(&p, &pre);
        prop_assert!(report.primal_violation < 1e-6 && report.sign_violation < 1e-6,
            "{report:?}");
    }

    #[test]
    fn mps_round_trip_preserves_optimum(
        n in 2usize..5,
        seed_costs in proptest::collection::vec(0.1f64..10.0, 5),
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0.05f64..4.0, 5), 1..4),
        seed_demands in proptest::collection::vec(0.5f64..20.0, 4),
        upper in 2.0f64..20.0,
    ) {
        let costs: Vec<f64> = seed_costs[..n].to_vec();
        let rows: Vec<Vec<f64>> = seed_rows.iter().map(|r| r[..n].to_vec()).collect();
        let demands: Vec<f64> = seed_demands[..rows.len()].to_vec();
        let p = random_lp(n, costs, rows, demands, upper);
        let direct = p.solve().expect("solvable");
        let doc = redundancy_lp::write_mps(&p, "PROP");
        let reparsed = redundancy_lp::parse_mps(&doc).expect("round trip parses");
        let re = reparsed.solve().expect("round trip solves");
        prop_assert!(
            (direct.objective - re.objective).abs()
                < 1e-6 * direct.objective.abs().max(1.0),
            "direct {} vs round-trip {}", direct.objective, re.objective
        );
    }

    #[test]
    fn infeasible_boxes_are_detected(lo in 1.0f64..10.0, gap in 0.5f64..5.0) {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], Relation::Ge, lo + gap);
        p.add_constraint(&[(x, 1.0)], Relation::Le, lo);
        let infeasible = matches!(
            p.solve(),
            Err(redundancy_lp::LpError::Infeasible { .. })
        );
        prop_assert!(infeasible);
    }
}
