//! Streaming estimators for the Monte-Carlo experiments.
//!
//! The empirical-detection experiments need three things: running means with
//! honest standard errors (Welford's algorithm), binomial proportion
//! estimates with confidence intervals that behave near 0 and 1 (Wilson),
//! and cheap integer histograms for multiplicity spectra.

/// Welford streaming mean/variance accumulator.
///
/// ```
/// use redundancy_stats::RunningMoments;
/// let mut m = RunningMoments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { m.push(x); }
/// assert_eq!(m.mean(), 2.5);
/// assert!((m.sample_variance() - 5.0/3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// New empty accumulator.
    pub fn new() -> Self {
        RunningMoments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (Chan's parallel update), so per-thread
    /// accumulators combine exactly.
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Binomial proportion estimator with Wilson score intervals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// New empty estimator.
    pub fn new() -> Self {
        Proportion::default()
    }

    /// Record one Bernoulli outcome.
    pub fn push(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Record a batch.
    pub fn push_batch(&mut self, successes: u64, trials: u64) {
        assert!(successes <= trials, "successes exceed trials");
        self.successes += successes;
        self.trials += trials;
    }

    /// Merge another estimator.
    pub fn merge(&mut self, other: &Proportion) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate `successes / trials` (0 when empty).
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval at `z` standard deviations (z = 1.96 ≈ 95 %).
    ///
    /// Well-behaved at the boundaries, unlike the normal-approximation
    /// interval — important here because detection probabilities near 1 are
    /// exactly where the paper's guarantees live.
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let phat = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (phat + z2 / (2.0 * n)) / denom;
        let half = z * ((phat * (1.0 - phat) + z2 / (4.0 * n)) / n).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// True if `value` lies within the Wilson interval at `z`.
    pub fn consistent_with(&self, value: f64, z: f64) -> bool {
        let (lo, hi) = self.wilson_interval(z);
        (lo..=hi).contains(&value)
    }
}

/// Fixed-bin histogram over small non-negative integers (e.g. task
/// multiplicities or copies-held counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record an observation of `value`, growing bins as needed.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Record `weight` observations of `value`.
    pub fn record_n(&mut self, value: usize, weight: u64) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += weight;
        self.total += weight;
    }

    /// Count in bin `value` (0 if never observed).
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical frequency of `value`.
    pub fn frequency(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Merge another histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_basic() {
        let mut m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.standard_error(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn moments_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningMoments::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn moments_merge_with_empty() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 3.0);
        let empty = RunningMoments::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn proportion_estimate_and_interval() {
        let mut p = Proportion::new();
        for i in 0..100 {
            p.push(i < 30);
        }
        assert_eq!(p.successes(), 30);
        assert_eq!(p.trials(), 100);
        assert!((p.estimate() - 0.3).abs() < 1e-12);
        let (lo, hi) = p.wilson_interval(1.96);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(lo > 0.2 && hi < 0.41, "({lo},{hi})");
        assert!(p.consistent_with(0.3, 1.96));
        assert!(!p.consistent_with(0.6, 1.96));
    }

    #[test]
    fn proportion_boundaries() {
        let mut p = Proportion::new();
        assert_eq!(p.wilson_interval(1.96), (0.0, 1.0));
        p.push_batch(10, 10);
        let (lo, hi) = p.wilson_interval(1.96);
        assert!(hi <= 1.0 && lo > 0.6);
        let mut q = Proportion::new();
        q.push_batch(0, 10);
        let (lo2, hi2) = q.wilson_interval(1.96);
        assert!(lo2 >= 0.0 && hi2 < 0.35);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn proportion_batch_validates() {
        Proportion::new().push_batch(5, 3);
    }

    #[test]
    fn proportion_merge() {
        let mut a = Proportion::new();
        a.push_batch(3, 10);
        let mut b = Proportion::new();
        b.push_batch(7, 10);
        a.merge(&b);
        assert_eq!(a.estimate(), 0.5);
    }

    #[test]
    fn histogram_counts_and_stats() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(3);
        h.record_n(0, 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.frequency(1), 0.4);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_and_empty() {
        let empty = Histogram::new();
        assert_eq!(empty.max_value(), None);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.frequency(0), 0.0);
        let mut a = Histogram::new();
        a.record(2);
        let mut b = Histogram::new();
        b.record(5);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(5), 1);
    }
}
