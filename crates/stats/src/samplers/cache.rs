//! Cached CDF-inversion samplers.
//!
//! The campaign kernel draws one binomial (or hypergeometric) per task, but a
//! plan has only a handful of distinct multiplicities (Balanced: head, tail,
//! ringers), so the same `(n, p)` walk is recomputed hundreds of thousands of
//! times.  [`BinomialCache`] and [`HypergeometricCache`] precompute the
//! inversion CDF table once per distinct parameter set, turning each draw
//! into one uniform plus one binary search.
//!
//! **Bit-for-bit contract:** for every parameter set and every RNG state, a
//! cached draw returns the same value *and consumes the same number of
//! uniforms* as the corresponding free function ([`sample_binomial`] /
//! [`sample_hypergeometric`]).  The tables are built with the identical
//! floating-point recurrence, in the identical order, so each partial CDF sum
//! is the same `f64` the per-draw walk would have computed; parameter sets
//! the walk handles specially (no-draw edge cases, the normal-approximation
//! underflow fallback) are captured as dedicated plan variants or delegated
//! to the free function verbatim.  This is what lets the batched engine keep
//! the golden snapshots byte-identical.
//!
//! ```
//! use redundancy_stats::{BinomialCache, DeterministicRng};
//! let mut cache = BinomialCache::default();
//! let id = cache.prepare(40, 0.3); // hoisted out of the hot loop
//! let mut rng = DeterministicRng::new(7);
//! let x = cache.sample_prepared(id, &mut rng);
//! assert!(x <= 40);
//! ```

use std::collections::HashMap;

use super::alias::DiscreteAlias;
use super::{binomial_pmf_zero, sample_binomial, sample_hypergeometric, SamplerMode};
use crate::rng::DeterministicRng;
use crate::special::ln_binomial;

/// Largest inversion table a cache will materialise.  Campaign multiplicities
/// are ≤ ~80; anything beyond this bound is not a hot-loop parameter set and
/// is delegated to the exact free function instead.
const MAX_TABLE_LEN: usize = 4096;

/// Tables at most this long are searched with a forward linear scan (the
/// expected stop index is tiny); longer ones use binary search.
const LINEAR_SCAN_MAX: usize = 128;

/// One prepared sampling strategy for a distinct parameter set.
#[derive(Debug, Clone)]
enum Plan {
    /// Degenerate: return this value without consuming any randomness
    /// (binomial `n == 0 || p == 0` → 0, `p == 1` → n; hypergeometric
    /// `draws == 0 || successes == 0` → 0).
    Certain(u64),
    /// One uniform + binary search over the precomputed partial CDF sums.
    /// Entry `i` is the CDF at `base + i`; `mirror == Some(n)` means the
    /// table was built at `1 − p` and the draw is reflected to `n − k`,
    /// matching [`sample_binomial`]'s `p > ½` recursion.
    Table {
        base: u64,
        cdf: Box<[f64]>,
        mirror: Option<u64>,
    },
    /// Parameter sets the walk handles via fallback (pmf(0) underflow) or
    /// that exceed [`MAX_TABLE_LEN`]: call the free function so the RNG
    /// consumption stays identical.
    DelegateBinomial { n: u64, p: f64 },
    DelegateHypergeometric {
        total: u64,
        successes: u64,
        draws: u64,
    },
    /// [`SamplerMode::Fast`] only: a Walker/Vose alias table — one uniform
    /// and two array reads per draw, *not* RNG-stream-compatible with the
    /// inversion walk (see [`super::alias`]).
    Alias(DiscreteAlias),
}

impl Plan {
    #[inline]
    fn sample(&self, rng: &mut DeterministicRng) -> u64 {
        match self {
            Plan::Certain(value) => *value,
            Plan::Table { base, cdf, mirror } => {
                let u = rng.uniform();
                // The inversion walk returns the first `k` with `cdf_k ≥ u`,
                // clamped to the end of the support — exactly
                // `partition_point` (first index not `< u`) with the same
                // clamp.  At campaign parameters the CDF mass is
                // front-loaded, so most draws stop within the first couple
                // of entries: a predictable linear scan beats binary
                // search there; big tables keep the binary search.
                let idx = if cdf.len() <= LINEAR_SCAN_MAX {
                    let mut i = 0usize;
                    while i + 1 < cdf.len() && cdf[i] < u {
                        i += 1;
                    }
                    i
                } else {
                    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
                };
                let k = base + idx as u64;
                match mirror {
                    Some(n) => n - k,
                    None => k,
                }
            }
            Plan::DelegateBinomial { n, p } => sample_binomial(rng, *n, *p),
            Plan::DelegateHypergeometric {
                total,
                successes,
                draws,
            } => sample_hypergeometric(rng, *total, *successes, *draws),
            Plan::Alias(table) => table.sample(rng),
        }
    }
}

/// A resolved plan handle: the id-to-plan lookup hoisted out of the draw
/// loop.
///
/// Obtained from [`BinomialCache::prepared`] / [`HypergeometricCache::prepared`];
/// drawing through it skips the per-draw indexing that
/// [`BinomialCache::sample_prepared`] pays, which matters in loops that
/// draw hundreds of thousands of times from one parameter set.
#[derive(Debug, Clone, Copy)]
pub struct PreparedSampler<'a> {
    plan: &'a Plan,
}

impl<'a> PreparedSampler<'a> {
    /// Draw one value (same contract as `sample_prepared`).
    #[inline]
    pub fn sample(&self, rng: &mut DeterministicRng) -> u64 {
        self.plan.sample(rng)
    }

    /// The underlying alias table, when this plan is a
    /// [`SamplerMode::Fast`] table.
    ///
    /// Hot loops that draw many times from one prepared sampler use this
    /// to hoist the plan dispatch out of the loop entirely: the alias
    /// draw then inlines to one uniform and two array reads.  Returns
    /// `None` for every bit-compat plan and for the fast-mode parameter
    /// sets that delegate (degenerate, oversize, underflow).
    #[inline]
    pub fn as_alias(&self) -> Option<&'a DiscreteAlias> {
        match self.plan {
            Plan::Alias(table) => Some(table),
            _ => None,
        }
    }
}

/// Cached binomial sampler keyed by `(n, p)`.
///
/// [`prepare`](Self::prepare) resolves a parameter set to a stable plan id
/// (building the CDF table on first sight); [`sample_prepared`](Self::sample_prepared)
/// draws through that id with no hashing on the hot path.
#[derive(Debug, Clone, Default)]
pub struct BinomialCache {
    plans: Vec<Plan>,
    index: HashMap<(u64, u64, SamplerMode), usize>,
    hits: u64,
    misses: u64,
}

impl BinomialCache {
    /// Resolve `(n, p)` to a bit-compat plan id, building the plan on
    /// first use.
    ///
    /// Panics (like [`sample_binomial`]) if `p` is not a probability.
    pub fn prepare(&mut self, n: u64, p: f64) -> usize {
        self.prepare_mode(n, p, SamplerMode::BitCompat)
    }

    /// Resolve `(n, p)` under a [`SamplerMode`] to a plan id, building the
    /// plan on first use.  One cache holds both modes' plans side by side
    /// (distinct ids), so a worker switching modes between campaigns keeps
    /// all its tables.
    pub fn prepare_mode(&mut self, n: u64, p: f64, mode: SamplerMode) -> usize {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        if let Some(&id) = self.index.get(&(n, p.to_bits(), mode)) {
            self.hits += 1;
            return id;
        }
        self.misses += 1;
        let plan = match mode {
            SamplerMode::BitCompat => Self::build_plan(n, p),
            // Parameter sets the alias method cannot carry (degenerate,
            // oversize, underflow) fall back to the bit-compat plan: the
            // degenerate ones consume no RNG either way and the rest are
            // off the hot path by construction.
            SamplerMode::Fast => match DiscreteAlias::binomial(n, p) {
                Some(table) => Plan::Alias(table),
                None => Self::build_plan(n, p),
            },
        };
        let id = self.plans.len();
        self.plans.push(plan);
        self.index.insert((n, p.to_bits(), mode), id);
        id
    }

    fn build_plan(n: u64, p: f64) -> Plan {
        if n == 0 || p == 0.0 {
            return Plan::Certain(0);
        }
        if p == 1.0 {
            return Plan::Certain(n);
        }
        // Mirror exactly like the walk: table at q ≤ ½, reflect the draw.
        let (q, mirror) = if p > 0.5 {
            (1.0 - p, Some(n))
        } else {
            (p, None)
        };
        if n as u128 + 1 > MAX_TABLE_LEN as u128 {
            return Plan::DelegateBinomial { n, p };
        }
        let mut pmf = binomial_pmf_zero(n, q);
        if pmf == 0.0 {
            // The walk takes the normal-approximation fallback here, which
            // consumes a different number of uniforms; delegate verbatim.
            return Plan::DelegateBinomial { n, p };
        }
        // Identical recurrence and summation order as `sample_binomial`, so
        // every partial sum is bit-equal to the walk's running `cdf`.
        let odds = q / (1.0 - q);
        let mut cdf = Vec::with_capacity(n as usize + 1);
        let mut acc = pmf;
        cdf.push(acc);
        for k in 0..n {
            pmf *= (n - k) as f64 / (k + 1) as f64 * odds;
            acc += pmf;
            cdf.push(acc);
        }
        Plan::Table {
            base: 0,
            cdf: cdf.into_boxed_slice(),
            mirror,
        }
    }

    /// Draw through a plan id returned by [`prepare`](Self::prepare).
    #[inline]
    pub fn sample_prepared(&self, id: usize, rng: &mut DeterministicRng) -> u64 {
        self.plans[id].sample(rng)
    }

    /// Borrow the plan behind `id` for repeated hot-loop draws.
    pub fn prepared(&self, id: usize) -> PreparedSampler<'_> {
        PreparedSampler {
            plan: &self.plans[id],
        }
    }

    /// Convenience: prepare-and-draw in one call (hashes per draw; hot loops
    /// should hoist [`prepare`](Self::prepare) instead).
    pub fn sample(&mut self, rng: &mut DeterministicRng, n: u64, p: f64) -> u64 {
        let id = self.prepare(n, p);
        self.sample_prepared(id, rng)
    }

    /// Number of distinct parameter sets prepared so far.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True if no parameter set has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// `prepare` calls answered from the index.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// `prepare` calls that built a new plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Cached hypergeometric sampler keyed by `(total, successes, draws)`.
///
/// Same contract as [`BinomialCache`]: bit-identical draws and RNG
/// consumption versus [`sample_hypergeometric`].
#[derive(Debug, Clone, Default)]
pub struct HypergeometricCache {
    plans: Vec<Plan>,
    index: HashMap<(u64, u64, u64, SamplerMode), usize>,
    hits: u64,
    misses: u64,
}

impl HypergeometricCache {
    /// Resolve `(total, successes, draws)` to a bit-compat plan id,
    /// building the CDF table on first use.
    ///
    /// Panics (like [`sample_hypergeometric`]) if `successes > total` or
    /// `draws > total`.
    pub fn prepare(&mut self, total: u64, successes: u64, draws: u64) -> usize {
        self.prepare_mode(total, successes, draws, SamplerMode::BitCompat)
    }

    /// Resolve `(total, successes, draws)` under a [`SamplerMode`]; same
    /// contract as [`BinomialCache::prepare_mode`].
    pub fn prepare_mode(
        &mut self,
        total: u64,
        successes: u64,
        draws: u64,
        mode: SamplerMode,
    ) -> usize {
        assert!(successes <= total, "successes {successes} > total {total}");
        assert!(draws <= total, "draws {draws} > total {total}");
        if let Some(&id) = self.index.get(&(total, successes, draws, mode)) {
            self.hits += 1;
            return id;
        }
        self.misses += 1;
        let plan = match mode {
            SamplerMode::BitCompat => Self::build_plan(total, successes, draws),
            SamplerMode::Fast => match DiscreteAlias::hypergeometric(total, successes, draws) {
                Some(table) => Plan::Alias(table),
                None => Self::build_plan(total, successes, draws),
            },
        };
        let id = self.plans.len();
        self.plans.push(plan);
        self.index.insert((total, successes, draws, mode), id);
        id
    }

    fn build_plan(total: u64, successes: u64, draws: u64) -> Plan {
        if draws == 0 || successes == 0 {
            return Plan::Certain(0);
        }
        let k_min = draws.saturating_sub(total - successes);
        let k_max = successes.min(draws);
        if (k_max - k_min) as u128 + 1 > MAX_TABLE_LEN as u128 {
            return Plan::DelegateHypergeometric {
                total,
                successes,
                draws,
            };
        }
        // Same pmf seed and ratio recurrence as `sample_hypergeometric`.
        let mut pmf = (ln_binomial(successes, k_min)
            + ln_binomial(total - successes, draws - k_min)
            - ln_binomial(total, draws))
        .exp();
        let mut cdf = Vec::with_capacity((k_max - k_min) as usize + 1);
        let mut acc = pmf;
        cdf.push(acc);
        for k in k_min..k_max {
            let remaining_failures = (total - successes + k + 1) - draws;
            let ratio = (successes - k) as f64 * (draws - k) as f64
                / ((k + 1) as f64 * remaining_failures as f64);
            pmf *= ratio;
            acc += pmf;
            cdf.push(acc);
        }
        Plan::Table {
            base: k_min,
            cdf: cdf.into_boxed_slice(),
            mirror: None,
        }
    }

    /// Draw through a plan id returned by [`prepare`](Self::prepare).
    #[inline]
    pub fn sample_prepared(&self, id: usize, rng: &mut DeterministicRng) -> u64 {
        self.plans[id].sample(rng)
    }

    /// Borrow the plan behind `id` for repeated hot-loop draws.
    pub fn prepared(&self, id: usize) -> PreparedSampler<'_> {
        PreparedSampler {
            plan: &self.plans[id],
        }
    }

    /// Convenience: prepare-and-draw in one call.
    pub fn sample(
        &mut self,
        rng: &mut DeterministicRng,
        total: u64,
        successes: u64,
        draws: u64,
    ) -> u64 {
        let id = self.prepare(total, successes, draws);
        self.sample_prepared(id, rng)
    }

    /// Number of distinct parameter sets prepared so far.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True if no parameter set has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// `prepare` calls answered from the index.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// `prepare` calls that built a new plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Draw `draws` times from both the free function and the cache on
    /// clones of the same RNG, asserting value-for-value equality and that
    /// both streams end in the same state (same uniforms consumed).
    fn assert_binomial_matches(n: u64, p: f64, draws: usize, seed: u64) {
        let mut walk_rng = DeterministicRng::new(seed);
        let mut cache_rng = walk_rng.clone();
        let mut cache = BinomialCache::default();
        let id = cache.prepare(n, p);
        for i in 0..draws {
            let want = sample_binomial(&mut walk_rng, n, p);
            let got = cache.sample_prepared(id, &mut cache_rng);
            assert_eq!(want, got, "n={n} p={p} draw {i}");
        }
        assert_eq!(
            walk_rng, cache_rng,
            "RNG streams diverged for n={n} p={p}: cached draw consumed a \
             different number of uniforms"
        );
    }

    fn assert_hypergeometric_matches(
        total: u64,
        successes: u64,
        draws: u64,
        reps: usize,
        seed: u64,
    ) {
        let mut walk_rng = DeterministicRng::new(seed);
        let mut cache_rng = walk_rng.clone();
        let mut cache = HypergeometricCache::default();
        let id = cache.prepare(total, successes, draws);
        for i in 0..reps {
            let want = sample_hypergeometric(&mut walk_rng, total, successes, draws);
            let got = cache.sample_prepared(id, &mut cache_rng);
            assert_eq!(want, got, "({total},{successes},{draws}) draw {i}");
        }
        assert_eq!(
            walk_rng, cache_rng,
            "RNG streams diverged for ({total},{successes},{draws})"
        );
    }

    #[test]
    fn binomial_matches_walk_on_grid() {
        let mut seed = 100;
        for &n in &[1u64, 2, 3, 7, 20, 40, 80] {
            for &p in &[0.01, 0.1, 0.3, 0.5, 0.55, 0.7, 0.9, 0.99] {
                seed += 1;
                assert_binomial_matches(n, p, 400, seed);
            }
        }
    }

    #[test]
    fn binomial_matches_walk_on_edges() {
        assert_binomial_matches(0, 0.5, 50, 1);
        assert_binomial_matches(10, 0.0, 50, 2);
        assert_binomial_matches(10, 1.0, 50, 3);
        assert_binomial_matches(1, 0.5, 200, 4);
    }

    #[test]
    fn binomial_matches_walk_through_underflow_fallback() {
        // 0.5^4000 underflows: the walk takes the clamped-normal fallback
        // (three uniforms per draw) and the cache must delegate to it.
        assert_binomial_matches(4000, 0.5, 60, 5);
        // Mirrored underflow: table would be built at q = 1 − p.
        assert_binomial_matches(4000, 0.50001, 60, 6);
    }

    #[test]
    fn binomial_delegates_oversize_tables() {
        assert_binomial_matches(MAX_TABLE_LEN as u64 + 1, 0.3, 60, 7);
        assert_binomial_matches(1 << 40, 0.25, 10, 8);
    }

    #[test]
    fn binomial_prepare_is_idempotent_and_counts() {
        let mut cache = BinomialCache::default();
        assert!(cache.is_empty());
        let a = cache.prepare(40, 0.3);
        let b = cache.prepare(40, 0.3);
        let c = cache.prepare(40, 0.31);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn binomial_convenience_sample_matches_prepared() {
        let mut one = DeterministicRng::new(9);
        let mut two = one.clone();
        let mut cache = BinomialCache::default();
        let id = cache.prepare(20, 0.4);
        let mut cache2 = BinomialCache::default();
        for _ in 0..100 {
            assert_eq!(
                cache.sample_prepared(id, &mut one),
                cache2.sample(&mut two, 20, 0.4)
            );
        }
    }

    #[test]
    fn hypergeometric_matches_walk_on_grid() {
        let mut seed = 500;
        for &(t, s, d) in &[
            (1u64, 1u64, 1u64),
            (10, 4, 5),
            (20, 8, 15), // k_min = 3 > 0
            (50, 50, 7),
            (100, 30, 12),
            (100, 1, 99),
            (200, 120, 200),
        ] {
            seed += 1;
            assert_hypergeometric_matches(t, s, d, 400, seed);
        }
    }

    #[test]
    fn hypergeometric_matches_walk_on_edges() {
        assert_hypergeometric_matches(10, 0, 5, 50, 600);
        assert_hypergeometric_matches(10, 4, 0, 50, 601);
        assert_hypergeometric_matches(5, 5, 5, 50, 602);
    }

    #[test]
    fn hypergeometric_delegates_oversize_tables() {
        let span = MAX_TABLE_LEN as u64 + 10;
        assert_hypergeometric_matches(4 * span, 2 * span, 2 * span, 20, 603);
    }

    #[test]
    fn hypergeometric_prepare_counts() {
        let mut cache = HypergeometricCache::default();
        let a = cache.prepare(100, 30, 12);
        let b = cache.prepare(100, 30, 12);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(!cache.is_empty());
    }

    #[test]
    fn fast_mode_plans_are_distinct_and_expose_alias_tables() {
        let mut cache = BinomialCache::default();
        let compat = cache.prepare_mode(12, 0.1, SamplerMode::BitCompat);
        let fast = cache.prepare_mode(12, 0.1, SamplerMode::Fast);
        assert_ne!(compat, fast, "modes must not share plan ids");
        assert_eq!(cache.prepare(12, 0.1), compat, "prepare == bit-compat");
        assert_eq!(cache.prepare_mode(12, 0.1, SamplerMode::Fast), fast);
        assert!(cache.prepared(compat).as_alias().is_none());
        let table = cache.prepared(fast).as_alias().expect("fast plan is alias");
        assert_eq!(table.len(), 13);

        let mut hyper = HypergeometricCache::default();
        let h_compat = hyper.prepare_mode(100, 30, 12, SamplerMode::BitCompat);
        let h_fast = hyper.prepare_mode(100, 30, 12, SamplerMode::Fast);
        assert_ne!(h_compat, h_fast);
        assert!(hyper.prepared(h_fast).as_alias().is_some());
    }

    #[test]
    fn fast_mode_draws_stay_in_support_and_replay() {
        let mut cache = BinomialCache::default();
        let id = cache.prepare_mode(40, 0.3, SamplerMode::Fast);
        let mut one = DeterministicRng::new(21);
        let mut two = one.clone();
        for _ in 0..2_000 {
            let x = cache.sample_prepared(id, &mut one);
            assert!(x <= 40);
            assert_eq!(x, cache.sample_prepared(id, &mut two), "fast draws replay");
        }
    }

    #[test]
    fn fast_mode_falls_back_where_alias_cannot() {
        let mut cache = BinomialCache::default();
        // Degenerate: no RNG either way.
        let certain = cache.prepare_mode(10, 0.0, SamplerMode::Fast);
        assert!(cache.prepared(certain).as_alias().is_none());
        let mut rng = DeterministicRng::new(5);
        let before = rng.clone();
        assert_eq!(cache.sample_prepared(certain, &mut rng), 0);
        assert_eq!(rng, before, "degenerate fast plan consumes no RNG");
        // Underflow fallback delegates to the exact free function.
        let delegated = cache.prepare_mode(4000, 0.5, SamplerMode::Fast);
        assert!(cache.prepared(delegated).as_alias().is_none());
        let mut a = DeterministicRng::new(6);
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(
                cache.sample_prepared(delegated, &mut a),
                sample_binomial(&mut b, 4000, 0.5)
            );
        }
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn binomial_prepare_rejects_bad_p() {
        BinomialCache::default().prepare(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "successes")]
    fn hypergeometric_prepare_rejects_bad_params() {
        HypergeometricCache::default().prepare(10, 11, 5);
    }
}
