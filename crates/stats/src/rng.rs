//! Deterministic, splittable random number generation.
//!
//! Every experiment in this workspace must be exactly replayable from a
//! 64-bit seed, independent of platform, `rand` version quirks, or thread
//! count.  We therefore implement the generators ourselves:
//!
//! * [`SeedSequence`] — a SplitMix64-based seed deriver, used both to expand
//!   a user seed into xoshiro state and to mint independent child seeds for
//!   parallel workers (`derive(child_index)`);
//! * [`DeterministicRng`] — xoshiro256++ (Blackman & Vigna), a small, fast,
//!   well-tested generator with 2²⁵⁶−1 period.  All distribution helpers the
//!   workspace needs (`uniform`, `bernoulli`, `below`, `shuffle`, …) are
//!   inherent methods, so no external RNG ecosystem is required.

/// SplitMix64 step: the standard 64-bit finalizer-based generator used to
/// expand seeds (Steele, Lea & Flood 2014).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives arbitrarily many independent seeds from one root seed.
///
/// ```
/// use redundancy_stats::SeedSequence;
/// let seq = SeedSequence::new(42);
/// assert_ne!(seq.derive(0), seq.derive(1));
/// assert_eq!(seq.derive(7), SeedSequence::new(42).derive(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedSequence { root: seed }
    }

    /// Deterministically derive the `index`-th child seed.
    ///
    /// Children are pairwise independent for all practical purposes: the
    /// root and index are mixed through two SplitMix64 finalizer rounds.
    pub fn derive(&self, index: u64) -> u64 {
        let mut s = self
            .root
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(index.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        let a = splitmix64(&mut s);
        splitmix64(&mut s).wrapping_add(a.rotate_left(17))
    }
}

/// xoshiro256++ generator with SplitMix64 seeding.
///
/// ```
/// use redundancy_stats::DeterministicRng;
/// let mut rng = DeterministicRng::new(7);
/// let x = rng.uniform();
/// assert!((0.0..1.0).contains(&x));
/// // Same seed, same stream:
/// let mut rng2 = DeterministicRng::new(7);
/// assert_eq!(rng2.uniform(), x);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    s: [u64; 4],
}

impl DeterministicRng {
    /// Seed via SplitMix64 expansion (never produces the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DeterministicRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased; rejects at most a vanishing fraction of draws).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_raw();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: accept unless in the biased residue class.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (uniformly, without
    /// replacement) using Floyd's algorithm; output is sorted.
    pub fn sample_indices(&mut self, n: u64, k: u64) -> Vec<u64> {
        assert!(k <= n, "cannot sample {k} of {n} without replacement");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// Next 32-bit output (upper half of the 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    /// Next 64-bit output (alias of [`Self::next_raw`]).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    /// Fill a byte buffer with generator output.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256pp() {
        // State {1,2,3,4} must produce the published xoshiro256++ outputs.
        let mut rng = DeterministicRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_raw(), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(123);
        let mut b = DeterministicRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..32).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DeterministicRng::new(9);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = DeterministicRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = DeterministicRng::new(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        DeterministicRng::new(0).below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DeterministicRng::new(77);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = DeterministicRng::new(3);
        for _ in 0..100 {
            let s = rng.sample_indices(20, 7);
            assert_eq!(s.len(), 7);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_and_empty() {
        let mut rng = DeterministicRng::new(3);
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(rng.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn sample_indices_is_uniform_ish() {
        // Each index of 0..10 should appear in a 3-sample with prob 0.3.
        let mut rng = DeterministicRng::new(8);
        let mut counts = [0u32; 10];
        let trials = 30_000;
        for _ in 0..trials {
            for i in rng.sample_indices(10, 3) {
                counts[i as usize] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.3).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn seed_sequence_children_are_stable_and_distinct() {
        let seq = SeedSequence::new(0xDEADBEEF);
        let children: Vec<u64> = (0..64).map(|i| seq.derive(i)).collect();
        let unique: std::collections::HashSet<_> = children.iter().collect();
        assert_eq!(unique.len(), children.len());
        assert_eq!(children[5], SeedSequence::new(0xDEADBEEF).derive(5));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DeterministicRng::new(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_next_u32_works() {
        let mut rng = DeterministicRng::new(4);
        let a = rng.next_u32();
        let b = rng.next_u32();
        // Just exercise the path and confirm progression.
        assert!(a != b || rng.next_u32() != b);
    }
}
