//! Log-factorials and binomial coefficients.
//!
//! The detection-probability formulas of the paper are built from binomial
//! coefficients `C(i, k)` with `i` up to the largest task multiplicity
//! (≤ ~80 in every experiment) and from Poisson weights `γ^i / i!`.  Exact
//! `u128` arithmetic covers the full multiplicity range; a Stirling-series
//! `ln Γ` covers everything beyond the precomputed table.

/// Factorials 0!..20! are exactly representable in `u64`.
const FACTORIALS: [u64; 21] = [
    1,
    1,
    2,
    6,
    24,
    120,
    720,
    5040,
    40320,
    362880,
    3628800,
    39916800,
    479001600,
    6227020800,
    87178291200,
    1307674368000,
    20922789888000,
    355687428096000,
    6402373705728000,
    121645100408832000,
    2432902008176640000,
];

/// Size of the precomputed `ln(n!)` table.
const LN_FACT_TABLE_SIZE: usize = 256;

fn ln_fact_table() -> &'static [f64; LN_FACT_TABLE_SIZE] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; LN_FACT_TABLE_SIZE]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0; LN_FACT_TABLE_SIZE];
        for n in 2..LN_FACT_TABLE_SIZE {
            t[n] = t[n - 1] + (n as f64).ln();
        }
        t
    })
}

/// `ln(n!)`, exact summation below 256, Stirling's series above.
///
/// ```
/// use redundancy_stats::ln_factorial;
/// assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    if (n as usize) < LN_FACT_TABLE_SIZE {
        return ln_fact_table()[n as usize];
    }
    // Stirling series: ln n! ≈ n ln n − n + ½ln(2πn) + 1/(12n) − 1/(360n³).
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// `ln C(n, k)`; returns `f64::NEG_INFINITY` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial coefficient `C(n, k)` as `f64`.
///
/// Exact (via `u128`) whenever the intermediate products fit, which covers
/// every multiplicity the paper's distributions produce; falls back to the
/// log-space evaluation otherwise.
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 1.0;
    }
    // Multiplicative formula in u128; abort to log-space on overflow risk.
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for j in 0..k {
        let next_num = num.checked_mul((n - j) as u128);
        let next_den = den.checked_mul((j + 1) as u128);
        match (next_num, next_den) {
            (Some(nn), Some(dd)) => {
                num = nn;
                den = dd;
                // Keep the fraction reduced to delay overflow.
                let g = gcd(num, den);
                num /= g;
                den /= g;
            }
            _ => return ln_binomial(n, k).exp(),
        }
    }
    debug_assert_eq!(den, 1);
    if num <= (1u128 << 100) {
        num as f64 / den as f64
    } else {
        ln_binomial(n, k).exp()
    }
}

/// Exact factorial for `n ≤ 20`.
pub fn factorial_u64(n: u64) -> Option<u64> {
    FACTORIALS.get(n as usize).copied()
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Poisson probability mass `e^{−λ} λ^k / k!`, computed in log space for
/// stability at large `k`.
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    (-lambda + k as f64 * lambda.ln() - ln_factorial(k)).exp()
}

/// Binomial probability mass `C(n, k) p^k (1−p)^{n−k}`, computed in log
/// space for stability at large `n`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if k > n {
        return 0.0;
    }
    // Degenerate edges exactly: log space would evaluate `0 · ln 0`.
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_binomial(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Hypergeometric probability mass `C(K, k)·C(N−K, n−k) / C(N, n)` for
/// drawing `draws` items without replacement from a population of `total`
/// containing `successes` marked ones.
///
/// Returns 0 outside the support
/// `max(0, draws − (total − successes)) ≤ k ≤ min(successes, draws)`.
///
/// # Panics
/// Panics if `successes` or `draws` exceeds `total`.
pub fn hypergeometric_pmf(total: u64, successes: u64, draws: u64, k: u64) -> f64 {
    assert!(
        successes <= total && draws <= total,
        "successes ({successes}) and draws ({draws}) must not exceed the population ({total})"
    );
    if k > successes || k > draws || draws - k > total - successes {
        return 0.0;
    }
    (ln_binomial(successes, k) + ln_binomial(total - successes, draws - k)
        - ln_binomial(total, draws))
    .exp()
}

/// Zero-truncated Poisson mass `λ^k / (k! (e^λ − 1))` for `k ≥ 1`.
///
/// This is exactly the shape of the paper's Balanced distribution
/// (Theorem 1's proof identifies `a_i / N` with this law at
/// `λ = ln(1/(1−ε))`).
pub fn zero_truncated_poisson_pmf(lambda: f64, k: u64) -> f64 {
    if k == 0 || lambda <= 0.0 {
        return 0.0;
    }
    poisson_pmf(lambda, k) / (1.0 - (-lambda).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_exact_small() {
        for n in 0..21u64 {
            let exact = (FACTORIALS[n as usize] as f64).ln();
            assert!(
                (ln_factorial(n) - exact).abs() < 1e-10,
                "n={n}: {} vs {exact}",
                ln_factorial(n)
            );
        }
    }

    #[test]
    fn ln_factorial_stirling_region_is_accurate() {
        // Compare table value at 255 with Stirling at 256 via the recurrence.
        let lhs = ln_factorial(256);
        let rhs = ln_factorial(255) + 256f64.ln();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        // Recurrence deep in the Stirling region too.
        let lhs2 = ln_factorial(10_000);
        let rhs2 = ln_factorial(9_999) + 10_000f64.ln();
        assert!((lhs2 - rhs2).abs() < 1e-8);
    }

    #[test]
    fn binomial_exact_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(10, 11), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }

    #[test]
    fn binomial_large_values_match_log_space() {
        for (n, k) in [(80u64, 40u64), (64, 20), (100, 3), (70, 35)] {
            let direct = binomial(n, k);
            let logged = ln_binomial(n, k).exp();
            let rel = (direct - logged).abs() / logged;
            assert!(rel < 1e-9, "C({n},{k}): {direct} vs {logged}");
        }
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in 1..60u64 {
            for k in 0..=n {
                let lhs = binomial(n, k);
                assert_eq!(lhs, binomial(n, n - k), "symmetry at ({n},{k})");
                if k >= 1 {
                    let pascal = binomial(n - 1, k - 1) + binomial(n - 1, k);
                    let rel = (lhs - pascal).abs() / lhs.max(1.0);
                    assert!(rel < 1e-12, "pascal at ({n},{k})");
                }
            }
        }
    }

    #[test]
    fn factorial_u64_bounds() {
        assert_eq!(factorial_u64(0), Some(1));
        assert_eq!(factorial_u64(20), Some(2432902008176640000));
        assert_eq!(factorial_u64(21), None);
    }

    #[test]
    fn binomial_pmf_reference_and_boundaries() {
        // Bin(4, 1/2) masses are 1/16, 4/16, 6/16, 4/16, 1/16.
        for (k, expect) in [(0, 1.0), (1, 4.0), (2, 6.0), (3, 4.0), (4, 1.0)] {
            assert!(
                (binomial_pmf(4, 0.5, k) - expect / 16.0).abs() < 1e-14,
                "k={k}"
            );
        }
        assert_eq!(binomial_pmf(4, 0.5, 5), 0.0);
        // Degenerate p is a point mass, not NaN.
        assert_eq!(binomial_pmf(9, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(9, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(9, 1.0, 9), 1.0);
        assert_eq!(binomial_pmf(9, 1.0, 8), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for (n, p) in [(1u64, 0.3), (17, 0.05), (40, 0.5), (80, 0.99)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn hypergeometric_pmf_reference_and_support() {
        // Drawing 2 from {3 marked, 2 plain}: P(k marked) = C(3,k)C(2,2−k)/C(5,2).
        for (k, expect) in [(0u64, 1.0 / 10.0), (1, 6.0 / 10.0), (2, 3.0 / 10.0)] {
            assert!(
                (hypergeometric_pmf(5, 3, 2, k) - expect).abs() < 1e-14,
                "k={k}"
            );
        }
        // Outside the support on either side.
        assert_eq!(hypergeometric_pmf(5, 3, 2, 3), 0.0);
        assert_eq!(hypergeometric_pmf(10, 8, 5, 2), 0.0); // needs ≥ 3 marked
                                                          // Drawing the whole population takes every marked item.
        assert_eq!(hypergeometric_pmf(7, 4, 7, 4), 1.0);
        assert_eq!(hypergeometric_pmf(7, 4, 7, 3), 0.0);
    }

    #[test]
    fn hypergeometric_pmf_sums_to_one() {
        for (total, successes, draws) in [(10u64, 4u64, 3u64), (50, 25, 25), (200, 7, 180)] {
            let sum: f64 = (0..=draws)
                .map(|k| hypergeometric_pmf(total, successes, draws, k))
                .sum();
            assert!(
                (sum - 1.0).abs() < 1e-12,
                "({total},{successes},{draws}): {sum}"
            );
        }
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for lambda in [
            0.1,
            std::f64::consts::LN_2,
            2.0 * std::f64::consts::LN_2,
            100f64.ln(),
        ] {
            let total: f64 = (0..200).map(|k| poisson_pmf(lambda, k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "λ={lambda}: {total}");
        }
    }

    #[test]
    fn poisson_pmf_degenerate_lambda() {
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
    }

    #[test]
    fn zero_truncated_poisson_sums_to_one_and_skips_zero() {
        for lambda in [0.2, std::f64::consts::LN_2, 2.0] {
            assert_eq!(zero_truncated_poisson_pmf(lambda, 0), 0.0);
            let total: f64 = (1..200)
                .map(|k| zero_truncated_poisson_pmf(lambda, k))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "λ={lambda}: {total}");
        }
    }

    #[test]
    fn ztp_matches_balanced_distribution_shape() {
        // At λ = ln(1/(1−ε)), N·ZTP(i) must equal N((1−ε)/ε)·λ^i/i!.
        let eps = 0.75f64;
        let lambda = (1.0 / (1.0 - eps)).ln();
        for i in 1..30u64 {
            let ztp = zero_truncated_poisson_pmf(lambda, i);
            let direct = ((1.0 - eps) / eps) * lambda.powi(i as i32)
                / factorial_u64(i)
                    .map(|f| f as f64)
                    .unwrap_or_else(|| ln_factorial(i).exp());
            assert!((ztp - direct).abs() < 1e-12 * direct.max(1e-300), "i={i}");
        }
    }
}
