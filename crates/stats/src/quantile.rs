//! Streaming quantile estimation: the P² (Jain & Chlamtac 1985) algorithm.
//!
//! The survival experiments report "how many free cheats does the *median*
//! adversary get?" — a quantile of a distribution observed one career at a
//! time.  P² maintains five markers and estimates any fixed quantile in
//! O(1) memory with piecewise-parabolic interpolation, exact until five
//! observations have arrived.

/// Streaming estimator of a single fixed quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// Target quantile in (0, 1).
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
    /// Initial buffer until five observations exist.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Create an estimator for quantile `q` (e.g. 0.5 for the median).
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite");
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (h, &v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = v;
                }
            }
            return;
        }

        // Locate the cell containing x and clamp the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (delta >= 1.0 && right_gap > 1.0) || (delta <= -1.0 && left_gap < -1.0) {
                let d = delta.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate (`None` before the first observation).
    ///
    /// Exact (by sorting) while fewer than five observations exist.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let rank = (self.q * (sorted.len() - 1) as f64).round() as usize;
            return sorted.get(rank).copied();
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_bad_quantile() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn exact_for_small_samples() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.push(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.estimate(), Some(2.0));
        assert_eq!(p.count(), 3);
        assert_eq!(p.quantile(), 0.5);
    }

    #[test]
    fn median_of_uniform_converges_to_half() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = DeterministicRng::new(1);
        for _ in 0..100_000 {
            p.push(rng.uniform());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "{est}");
    }

    #[test]
    fn tail_quantile_of_uniform() {
        let mut p = P2Quantile::new(0.95);
        let mut rng = DeterministicRng::new(2);
        for _ in 0..100_000 {
            p.push(rng.uniform());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.95).abs() < 0.01, "{est}");
    }

    #[test]
    fn exponential_median_matches_ln2() {
        // Median of Exp(1) is ln 2 ≈ 0.693.
        let mut p = P2Quantile::new(0.5);
        let mut rng = DeterministicRng::new(3);
        for _ in 0..100_000 {
            let u: f64 = rng.uniform().max(f64::MIN_POSITIVE);
            p.push(-u.ln());
        }
        let est = p.estimate().unwrap();
        assert!((est - std::f64::consts::LN_2).abs() < 0.02, "{est}");
    }

    #[test]
    fn sorted_and_reverse_sorted_streams() {
        for reverse in [false, true] {
            let mut p = P2Quantile::new(0.25);
            let n = 10_000;
            for i in 0..n {
                let v = if reverse { n - i } else { i } as f64;
                p.push(v);
            }
            let est = p.estimate().unwrap();
            let want = 0.25 * n as f64;
            assert!(
                (est - want).abs() < 0.05 * n as f64,
                "reverse={reverse}: {est} vs {want}"
            );
        }
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut p = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p.push(7.0);
        }
        assert_eq!(p.estimate(), Some(7.0));
    }
}
