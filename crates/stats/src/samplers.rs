//! Exact samplers for the discrete distributions the simulator needs.
//!
//! All samplers take the workspace's [`DeterministicRng`] so simulation runs
//! replay bit-for-bit.  They favour exactness and clarity over asymptotic
//! cleverness: the simulator draws multiplicities (≤ ~80), per-task copy
//! counts, and adversary assignments, none of which need BTPE-class
//! algorithms at these sizes.

use crate::rng::DeterministicRng;
use crate::special::poisson_pmf;

pub mod alias;
pub mod cache;

/// Which sampling strategy the campaign kernels draw holdings with.
///
/// The default, [`BitCompat`](Self::BitCompat), is the inversion-CDF path
/// whose draws are byte-identical to the seed per-task walk — it is what
/// every golden snapshot and differential oracle pins.
/// [`Fast`](Self::Fast) is the opt-in Walker/Vose alias path
/// ([`alias::DiscreteAlias`]): one uniform and two array reads per draw,
/// statistically faithful to the same laws (χ²-tested) but *not*
/// RNG-stream-compatible, so it carries its own pinned determinism
/// checksums instead of the snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SamplerMode {
    /// Inversion-CDF draws, byte-identical to the reference walk.
    #[default]
    BitCompat,
    /// Alias-method draws: same laws, O(1) per draw, own checksums.
    Fast,
}

impl SamplerMode {
    /// The CLI spelling (`bit-compat` / `fast`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SamplerMode::BitCompat => "bit-compat",
            SamplerMode::Fast => "fast",
        }
    }
}

impl std::fmt::Display for SamplerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SamplerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bit-compat" => Ok(SamplerMode::BitCompat),
            "fast" => Ok(SamplerMode::Fast),
            other => Err(format!("unknown sampler mode `{other}`")),
        }
    }
}

/// Sample from `Binomial(n, p)` by CDF inversion.
///
/// Exact for the full parameter range; `O(n·p)` expected work, which is tiny
/// for the simulator's n (a task's multiplicity).  For very large `n` the
/// recurrence walks outward from the mode to stay `O(√(n p (1−p)))` in the
/// common case.
pub fn sample_binomial(rng: &mut DeterministicRng, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work with p ≤ ½ and mirror, halving the expected walk length.
    if p > 0.5 {
        return n - sample_binomial(rng, n, 1.0 - p);
    }
    let u = rng.uniform();
    // Inversion from k = 0: pmf(0) = (1−p)^n, ratio pmf(k+1)/pmf(k) =
    // (n−k)/(k+1) · p/(1−p).
    let mut k = 0u64;
    let mut pmf = binomial_pmf_zero(n, p);
    if pmf == 0.0 {
        // (1−p)^n underflowed: n is astronomically large relative to this
        // simulator's use; fall back to a normal approximation draw clamped
        // into range (documented inexactness, unreachable in-workspace).
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let z = standard_normal(rng);
        return (mean + sd * z).round().clamp(0.0, n as f64) as u64;
    }
    let mut cdf = pmf;
    let odds = p / (1.0 - p);
    while u > cdf && k < n {
        pmf *= (n - k) as f64 / (k + 1) as f64 * odds;
        cdf += pmf;
        k += 1;
    }
    k
}

/// `pmf(0) = (1−p)^n` for the binomial inversion walk.
///
/// `powi` is bit-exact with what the walk historically computed for every
/// in-range `n`, but its `as i32` exponent cast wraps for `n > i32::MAX`,
/// which silently *skipped* the underflow fallback (the wrapped exponent
/// made pmf(0) ≥ 1 and the walk returned 0).  Above that bound the
/// log-domain form underflows to 0 correctly and routes such `n` to the
/// normal-approximation fallback.
#[inline]
fn binomial_pmf_zero(n: u64, p: f64) -> f64 {
    if n <= i32::MAX as u64 {
        (1.0 - p).powi(n as i32)
    } else {
        ((1.0 - p).ln() * n as f64).exp()
    }
}

/// Sample from `Hypergeometric(total, successes, draws)`: the number of
/// "success" items in a uniform `draws`-subset of a `total`-element
/// population containing `successes` marked items.
///
/// This models exactly the paper's Appendix-A question: of the adversary's
/// second-phase assignments, how many hit tasks she already held in phase
/// one.  Exact CDF inversion.
pub fn sample_hypergeometric(
    rng: &mut DeterministicRng,
    total: u64,
    successes: u64,
    draws: u64,
) -> u64 {
    assert!(successes <= total, "successes {successes} > total {total}");
    assert!(draws <= total, "draws {draws} > total {total}");
    if draws == 0 || successes == 0 {
        return 0;
    }
    let k_min = draws.saturating_sub(total - successes);
    let k_max = successes.min(draws);
    // pmf(k) = C(s,k)·C(t−s,d−k)/C(t,d); walk the ratio
    // pmf(k+1)/pmf(k) = (s−k)(d−k) / ((k+1)(t−s−d+k+1)).
    let mut k = k_min;
    let mut pmf = (crate::special::ln_binomial(successes, k_min)
        + crate::special::ln_binomial(total - successes, draws - k_min)
        - crate::special::ln_binomial(total, draws))
    .exp();
    let u = rng.uniform();
    let mut cdf = pmf;
    while u > cdf && k < k_max {
        // `k ≥ k_min = draws − (total − successes)` keeps this subtraction
        // non-negative when grouped as below.
        let remaining_failures = (total - successes + k + 1) - draws;
        let ratio = (successes - k) as f64 * (draws - k) as f64
            / ((k + 1) as f64 * remaining_failures as f64);
        pmf *= ratio;
        cdf += pmf;
        k += 1;
    }
    k
}

/// Sample from `Poisson(λ)` by inversion from the mode-adjacent start.
pub fn sample_poisson(rng: &mut DeterministicRng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0 && lambda.is_finite(), "bad λ = {lambda}");
    if lambda == 0.0 {
        return 0;
    }
    let u = rng.uniform();
    let mut k = 0u64;
    let mut pmf = (-lambda).exp();
    if pmf > 0.0 {
        let mut cdf = pmf;
        while u > cdf {
            k += 1;
            pmf *= lambda / k as f64;
            cdf += pmf;
            if k > (20.0 * lambda + 100.0) as u64 {
                break; // numerically exhausted tail
            }
        }
        return k;
    }
    // λ large enough that e^{−λ} underflows: start at the mode.
    let mode = lambda.floor() as u64;
    let mut lo = mode;
    let mut hi = mode;
    let mut p_lo = poisson_pmf(lambda, mode);
    let mut p_hi = p_lo;
    let mut acc = p_lo;
    let target = rng.uniform();
    loop {
        if acc >= target {
            return hi;
        }
        // Extend alternately on both sides of the mode.
        if hi - mode <= mode - lo && p_hi > 0.0 {
            p_hi *= lambda / (hi + 1) as f64;
            hi += 1;
            acc += p_hi;
            if acc >= target {
                return hi;
            }
        }
        if lo > 0 && p_lo > 0.0 {
            p_lo *= lo as f64 / lambda;
            lo -= 1;
            acc += p_lo;
            if acc >= target {
                return lo;
            }
        }
        if p_lo <= 0.0 && p_hi <= 0.0 {
            return mode;
        }
    }
}

/// Sample from the zero-truncated Poisson(λ): `P(k) ∝ λ^k/k!` for `k ≥ 1`.
///
/// This is the law of a single task's multiplicity under the paper's
/// Balanced distribution.  Inversion starting at `k = 1`.
pub fn sample_zero_truncated_poisson(rng: &mut DeterministicRng, lambda: f64) -> u64 {
    assert!(lambda > 0.0 && lambda.is_finite(), "λ must be positive");
    let norm = 1.0 - (-lambda).exp();
    let u = rng.uniform() * norm;
    let mut k = 1u64;
    let mut pmf = lambda * (-lambda).exp();
    let mut cdf = pmf;
    while u > cdf {
        k += 1;
        pmf *= lambda / k as f64;
        cdf += pmf;
        if k > (20.0 * lambda + 200.0) as u64 {
            break;
        }
    }
    k
}

/// Sample from `Geometric(q)` on `{1, 2, 3, …}` (number of trials to first
/// success): the per-task multiplicity law of the Golle–Stubblebine
/// distribution with `q = 1 − c`.
pub fn sample_geometric(rng: &mut DeterministicRng, q: f64) -> u64 {
    assert!(q > 0.0 && q <= 1.0, "q must be in (0,1], got {q}");
    if q == 1.0 {
        return 1;
    }
    // Inversion: k = ⌈ln(1−u)/ln(1−q)⌉.
    let u = rng.uniform();
    let k = ((1.0 - u).ln() / (1.0 - q).ln()).ceil();
    (k as u64).max(1)
}

/// Standard normal draw (Box–Muller), used only for clamped fallbacks.
fn standard_normal(rng: &mut DeterministicRng) -> f64 {
    let u1 = rng.uniform().max(f64::MIN_POSITIVE);
    let u2 = rng.uniform();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Walker alias table for O(1) sampling from a fixed categorical
/// distribution.
///
/// The simulator uses this to draw task multiplicities proportionally to a
/// distribution's weights when generating random campaigns.
///
/// ```
/// use redundancy_stats::{AliasTable, DeterministicRng};
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = DeterministicRng::new(1);
/// let mut ones = 0;
/// for _ in 0..10_000 { if table.sample(&mut rng) == 1 { ones += 1; } }
/// assert!((ones as f64 / 10_000.0 - 0.75).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build from non-negative weights; returns `None` if the weights are
    /// empty, contain a negative/non-finite value, or sum to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|&w| w < 0.0 || !w.is_finite())
        {
            return None;
        }
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Round-off stragglers saturate at probability one.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never constructed; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample(&self, rng: &mut DeterministicRng) -> usize {
        let i = rng.below(self.prob.len() as u64) as usize;
        if rng.uniform() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: impl Iterator<Item = u64>, n: usize) -> f64 {
        samples.take(n).map(|x| x as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = DeterministicRng::new(1);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn binomial_mean_and_bounds() {
        let mut rng = DeterministicRng::new(2);
        let n = 40u64;
        let p = 0.3;
        let trials = 40_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = sample_binomial(&mut rng, n, p);
            assert!(x <= n);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        assert!((mean - 12.0).abs() < 0.12, "mean {mean}");
    }

    #[test]
    fn binomial_huge_n_does_not_wrap_the_exponent() {
        // n > i32::MAX used to wrap in `powi(n as i32)`, making pmf(0) ≥ 1
        // and the sampler return 0 instead of reaching the fallback.
        let mut rng = DeterministicRng::new(13);
        let n = 1u64 << 40;
        let p = 0.25;
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        for _ in 0..50 {
            let x = sample_binomial(&mut rng, n, p) as f64;
            assert!((x - mean).abs() < 8.0 * sd, "x = {x} vs mean {mean}");
        }
        // Mirrored branch at huge n goes through the same fallback.
        let y = sample_binomial(&mut rng, n, 0.75) as f64;
        assert!((y - n as f64 * 0.75).abs() < 8.0 * sd, "{y}");
    }

    #[test]
    fn binomial_huge_n_tiny_p_stays_exact() {
        // pmf(0) does not underflow here, so even astronomically large n
        // must use the exact inversion walk (E[X] = n·p = 1024).
        let mut rng = DeterministicRng::new(14);
        let n = 1u64 << 40;
        let p = 1024.0 / n as f64;
        let mean = mean_of((0..2_000).map(|_| sample_binomial(&mut rng, n, p)), 2_000);
        assert!((mean - 1024.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn binomial_mirrored_branch() {
        let mut rng = DeterministicRng::new(3);
        let mean = mean_of(
            (0..20_000).map(|_| sample_binomial(&mut rng, 20, 0.9)),
            20_000,
        );
        assert!((mean - 18.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn hypergeometric_edges_and_support() {
        let mut rng = DeterministicRng::new(4);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 0, 5), 0);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 4, 0), 0);
        for _ in 0..2_000 {
            let x = sample_hypergeometric(&mut rng, 20, 8, 15);
            // Support: max(0, 15−12)=3 ≤ x ≤ min(8,15)=8.
            assert!((3..=8).contains(&x), "{x}");
        }
    }

    #[test]
    fn hypergeometric_mean() {
        // E = d·s/t = 12·30/100 = 3.6.
        let mut rng = DeterministicRng::new(5);
        let mean = mean_of(
            (0..40_000).map(|_| sample_hypergeometric(&mut rng, 100, 30, 12)),
            40_000,
        );
        assert!((mean - 3.6).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_small_lambda() {
        let mut rng = DeterministicRng::new(6);
        let mean = mean_of(
            (0..60_000).map(|_| sample_poisson(&mut rng, 1.3863)),
            60_000,
        );
        assert!((mean - 1.3863).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_fallback_path() {
        let mut rng = DeterministicRng::new(7);
        let lam = 800.0; // e^{-800} underflows; exercises the mode walk
        let mean = mean_of((0..4_000).map(|_| sample_poisson(&mut rng, lam)), 4_000);
        assert!((mean - lam).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = DeterministicRng::new(8);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn zero_truncated_poisson_never_zero_and_mean() {
        let mut rng = DeterministicRng::new(9);
        // Mean of ZTP(λ) is λ/(1−e^{−λ}); at λ = ln 2 this is 2·ln 2 ≈ 1.3863.
        let lam = std::f64::consts::LN_2;
        let trials = 60_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = sample_zero_truncated_poisson(&mut rng, lam);
            assert!(x >= 1);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        assert!((mean - 2.0 * lam).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn geometric_support_and_mean() {
        let mut rng = DeterministicRng::new(10);
        let q = 0.25;
        let trials = 60_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = sample_geometric(&mut rng, q);
            assert!(x >= 1);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        assert!((mean - 4.0).abs() < 0.06, "mean {mean}");
        assert_eq!(sample_geometric(&mut rng, 1.0), 1);
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [5.0, 1.0, 3.0, 0.0, 1.0];
        let table = AliasTable::new(&weights).unwrap();
        assert_eq!(table.len(), 5);
        assert!(!table.is_empty());
        let mut rng = DeterministicRng::new(11);
        let mut counts = [0u32; 5];
        let trials = 100_000;
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let got = c as f64 / trials as f64;
            let want = w / total;
            assert!((got - want).abs() < 0.01, "cat {i}: {got} vs {want}");
        }
        assert_eq!(counts[3], 0, "zero-weight category must never be drawn");
    }

    #[test]
    fn sampler_mode_round_trips_through_strings() {
        assert_eq!(SamplerMode::default(), SamplerMode::BitCompat);
        for mode in [SamplerMode::BitCompat, SamplerMode::Fast] {
            assert_eq!(mode.as_str().parse::<SamplerMode>().unwrap(), mode);
            assert_eq!(format!("{mode}"), mode.as_str());
        }
        assert!("turbo".parse::<SamplerMode>().is_err());
    }

    #[test]
    fn alias_table_single_category() {
        let table = AliasTable::new(&[2.5]).unwrap();
        let mut rng = DeterministicRng::new(12);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }
}
