//! Goodness-of-fit testing: Pearson's chi-square against a discrete law.
//!
//! The empirical-validation layer needs a principled way to say "the
//! simulator's multiplicity draws really follow the zero-truncated Poisson
//! law" rather than eyeballing a histogram.  This module provides:
//!
//! * [`regularized_gamma_q`] — the upper regularized incomplete gamma
//!   function `Q(a, x)`, via the standard series / continued-fraction pair
//!   (Numerical-Recipes style), which is exactly the chi-square survival
//!   function `P(X² ≥ x) = Q(df/2, x/2)`;
//! * [`chi_square_test`] — Pearson's statistic over observed counts vs a
//!   probability vector, with automatic pooling of low-expectation bins
//!   (the usual `E ≥ 5` rule) and a p-value.

use crate::estimate::Histogram;

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// Pearson's X² statistic.
    pub statistic: f64,
    /// Degrees of freedom after pooling (bins − 1).
    pub degrees_of_freedom: usize,
    /// `P(X²_df ≥ statistic)` — small values reject the null.
    pub p_value: f64,
    /// Bins actually compared (after pooling).
    pub bins_used: usize,
}

impl ChiSquare {
    /// True if the data is consistent with the law at significance `alpha`
    /// (i.e. the null is *not* rejected).
    pub fn consistent(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Upper regularized incomplete gamma `Q(a, x) = Γ(a, x)/Γ(a)`.
///
/// Series representation for `x < a + 1`, Lentz continued fraction
/// otherwise; absolute accuracy ~1e-12 across the range used here.
///
/// # Panics
/// Panics on `a ≤ 0` or `x < 0`.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && a.is_finite(), "shape must be positive, got {a}");
    assert!(x >= 0.0 && x.is_finite(), "argument must be ≥ 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_gamma_series(a, x)
    } else {
        upper_gamma_cf(a, x)
    }
}

/// `P(a, x)` by its power series (valid / fast for `x < a + 1`).
fn lower_gamma_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

/// `Q(a, x)` by the Lentz modified continued fraction (for `x ≥ a + 1`).
fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Lanczos approximation of `ln Γ(z)` for `z > 0`.
fn ln_gamma(z: f64) -> f64 {
    // Lanczos (g = 7, n = 9) coefficients.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if z < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * z).sin()).ln() - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// Pearson chi-square test of `observed` counts against `expected_probs`.
///
/// ```
/// use redundancy_stats::{chi_square_test, Histogram};
/// let mut h = Histogram::new();
/// h.record_n(0, 5_020);
/// h.record_n(1, 4_980);
/// let fair = chi_square_test(&h, &[0.5, 0.5], 5.0).unwrap();
/// assert!(fair.consistent(0.05)); // a fair coin stays a fair coin
/// let biased = chi_square_test(&h, &[0.8, 0.2], 5.0).unwrap();
/// assert!(!biased.consistent(0.05));
/// ```
///
/// `expected_probs` need not sum to one: any residual mass is pooled into
/// an implicit overflow bin together with observations beyond the vector.
/// Bins with expected count `< min_expected` (default rule: 5) are pooled
/// right-to-left.  Returns `None` if fewer than two usable bins remain.
pub fn chi_square_test(
    observed: &Histogram,
    expected_probs: &[f64],
    min_expected: f64,
) -> Option<ChiSquare> {
    let total = observed.total() as f64;
    if total == 0.0 {
        return None;
    }
    assert!(
        expected_probs
            .iter()
            .all(|&p| (0.0..=1.0 + 1e-12).contains(&p)),
        "expected_probs must be probabilities"
    );
    // Build (observed, expected) pairs, with an overflow bin at the end.
    let used_mass: f64 = expected_probs.iter().sum();
    let max_obs = observed.max_value().unwrap_or(0);
    let mut pairs: Vec<(f64, f64)> = (0..expected_probs.len())
        .map(|v| (observed.count(v) as f64, expected_probs[v] * total))
        .collect();
    let overflow_obs: f64 = (expected_probs.len()..=max_obs)
        .map(|v| observed.count(v) as f64)
        .sum();
    let overflow_exp = (1.0 - used_mass).max(0.0) * total;
    if overflow_obs > 0.0 || overflow_exp > 0.0 {
        pairs.push((overflow_obs, overflow_exp));
    }
    // Pool low-expectation bins right-to-left into their left neighbor.
    let mut pooled: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
    for pair in pairs {
        pooled.push(pair);
        // Merge backwards while the tail bin is under-populated.
        while pooled.len() > 1 {
            let last = *pooled.last().unwrap();
            if last.1 >= min_expected {
                break;
            }
            pooled.pop();
            let prev = pooled.last_mut().unwrap();
            prev.0 += last.0;
            prev.1 += last.1;
        }
    }
    // The first bin may still be small: merge forward once if needed.
    while pooled.len() > 1 && pooled[0].1 < min_expected {
        let first = pooled.remove(0);
        pooled[0].0 += first.0;
        pooled[0].1 += first.1;
    }
    if pooled.len() < 2 {
        return None;
    }
    let statistic: f64 = pooled
        .iter()
        .filter(|&&(_, e)| e > 0.0)
        .map(|&(o, e)| (o - e) * (o - e) / e)
        .sum();
    let df = pooled.len() - 1;
    let p_value = regularized_gamma_q(df as f64 / 2.0, statistic / 2.0);
    Some(ChiSquare {
        statistic,
        degrees_of_freedom: df,
        p_value,
        bins_used: pooled.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;
    use crate::samplers::sample_zero_truncated_poisson;
    use crate::special::zero_truncated_poisson_pmf;

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_q_reference_values() {
        // Q(1, x) = e^{-x} (chi-square df=2 survival at 2x).
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!(
                (regularized_gamma_q(1.0, x) - (-x).exp()).abs() < 1e-12,
                "x={x}"
            );
        }
        // Q(1/2, x) = erfc(√x): check at x where erfc is tabulated.
        // erfc(1) ≈ 0.157299207.
        assert!((regularized_gamma_q(0.5, 1.0) - 0.157_299_207).abs() < 1e-8);
        // Boundaries.
        assert_eq!(regularized_gamma_q(2.0, 0.0), 1.0);
        assert!(regularized_gamma_q(3.0, 1e6) < 1e-100);
    }

    #[test]
    fn gamma_q_is_monotone_in_x() {
        let mut prev = 1.0;
        for i in 0..50 {
            let x = i as f64 * 0.5;
            let q = regularized_gamma_q(4.0, x);
            assert!(q <= prev + 1e-15);
            prev = q;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_q_validates_shape() {
        regularized_gamma_q(0.0, 1.0);
    }

    #[test]
    fn chi_square_accepts_the_true_law() {
        // Draw from ZTP(ln 4) and test against its own pmf.
        let lambda = 4f64.ln();
        let mut rng = DeterministicRng::new(20_050_926);
        let mut hist = Histogram::new();
        for _ in 0..20_000 {
            hist.record(sample_zero_truncated_poisson(&mut rng, lambda) as usize);
        }
        let probs: Vec<f64> = (0..15)
            .map(|k| zero_truncated_poisson_pmf(lambda, k as u64))
            .collect();
        let result = chi_square_test(&hist, &probs, 5.0).unwrap();
        assert!(result.consistent(0.01), "true law rejected: {result:?}");
        assert!(result.degrees_of_freedom >= 3);
    }

    #[test]
    fn chi_square_rejects_the_wrong_law() {
        // Draw from ZTP(ln 4) but test against ZTP(ln 2): must reject hard.
        let mut rng = DeterministicRng::new(99);
        let mut hist = Histogram::new();
        for _ in 0..20_000 {
            hist.record(sample_zero_truncated_poisson(&mut rng, 4f64.ln()) as usize);
        }
        let wrong: Vec<f64> = (0..15)
            .map(|k| zero_truncated_poisson_pmf(2f64.ln(), k as u64))
            .collect();
        let result = chi_square_test(&hist, &wrong, 5.0).unwrap();
        assert!(!result.consistent(0.01), "wrong law accepted: {result:?}");
        assert!(result.p_value < 1e-6);
    }

    #[test]
    fn chi_square_handles_degenerate_inputs() {
        let empty = Histogram::new();
        assert!(chi_square_test(&empty, &[0.5, 0.5], 5.0).is_none());
        // One effective bin after pooling → None.
        let mut h = Histogram::new();
        h.record_n(0, 10);
        assert!(chi_square_test(&h, &[1.0], 5.0).is_none());
    }

    #[test]
    fn pooling_respects_min_expected() {
        let mut h = Histogram::new();
        h.record_n(0, 500);
        h.record_n(1, 480);
        h.record_n(2, 20);
        // Fourth bin expectation (4 < 5) must pool into the third,
        // leaving observed (20) vs expected (16 + 4 = 20) in the merged
        // bin — a perfect fit.
        let probs = [0.5, 0.48, 0.016, 0.004];
        let result = chi_square_test(&h, &probs, 5.0).unwrap();
        assert_eq!(result.bins_used, 3, "{result:?}");
        assert!(result.statistic < 1e-9, "{result:?}");
        assert!(result.consistent(0.05), "{result:?}");
    }
}
