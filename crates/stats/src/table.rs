//! Fixed-width plain-text table rendering.
//!
//! The reproduction binaries print the paper's tables (Figures 2 and 4 are
//! tables; Figures 1 and 3 print as aligned series); this module gives them
//! one consistent renderer so EXPERIMENTS.md diffs stay clean.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width table builder.
///
/// ```
/// use redundancy_stats::table::{Align, Table};
/// let mut t = Table::new(&["scheme", "factor"]);
/// t.align(1, Align::Right);
/// t.row(&["balanced", "1.386"]);
/// let s = t.render();
/// assert!(s.contains("balanced"));
/// assert!(s.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers (all left-aligned).
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Set the alignment of column `col`.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Right-align every column except the first (the common numeric shape).
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} does not match {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Append a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// The column headers, for structured (non-text) exports.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, for structured (non-text) exports.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a header rule, two-space gutters, and
    /// per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, (cell, &w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{cell:<w$}");
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>w$}");
                    }
                }
            }
            // Trim trailing padding for tidy diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Format a float with `digits` decimal places.
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format an integer with thousands separators (`1,234,567`), matching the
/// paper's table typography.
pub fn inum(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.align(1, Align::Right);
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers end at the same column.
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn numeric_helper_right_aligns_tail_columns() {
        let mut t = Table::new(&["k", "a", "b"]);
        t.numeric();
        assert_eq!(t.aligns, vec![Align::Left, Align::Right, Align::Right]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["one", "two"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(1.23456, 3), "1.235");
        assert_eq!(inum(0), "0");
        assert_eq!(inum(999), "999");
        assert_eq!(inum(1000), "1,000");
        assert_eq!(inum(1_234_567), "1,234,567");
        assert_eq!(inum(46_517_018), "46,517,018");
    }
}
