//! Deterministic multi-threaded Monte-Carlo trial runner.
//!
//! Trials are partitioned into fixed-size chunks; chunk `c` always runs with
//! the RNG seeded from `SeedSequence::derive(c)`, so results are identical
//! whatever the thread count — including single-threaded CI machines.
//!
//! The runner is **worker-persistent**: each worker thread creates one
//! accumulator with `A::default()`, pulls chunk indices from a shared atomic
//! counter, folds every chunk it claims directly into that accumulator, and
//! hands back exactly one partial when the counter runs dry.  Heavy
//! accumulator state — `CampaignScratch` buffers, `BinomialCache` /
//! `HypergeometricCache` CDF tables — is therefore built once per worker,
//! not once per chunk, and no channel sits between the workers and the
//! caller: partials come back through the join handles and are merged on
//! the calling thread in worker order.
//!
//! [`parallel_sweep`] builds on the same pool discipline for the *outer*
//! grids of the exhibits (parameter sweeps), evaluating grid points
//! concurrently while returning results in input order.

use crate::rng::{DeterministicRng, SeedSequence};
use crate::samplers::SamplerMode;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Hard ceiling on explicit thread requests; catches typo'd `--threads`
/// values (e.g. a seed pasted into the wrong flag) before the runner tries
/// to spawn them.
pub const MAX_THREADS: usize = 1024;

/// A [`TrialConfig`] field that cannot be run as configured.
///
/// Returned by [`TrialConfig::validate`] so CLI layers can reject bad
/// configurations with a proper exit code instead of panicking mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTrialConfig {
    /// Name of the offending field.
    pub field: &'static str,
    /// Why the value is unusable.
    pub message: &'static str,
}

impl fmt::Display for InvalidTrialConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trial config: {} {}", self.field, self.message)
    }
}

impl std::error::Error for InvalidTrialConfig {}

/// Configuration for [`run_trials`].
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Total number of trials to run.
    pub trials: u64,
    /// Trials per deterministic chunk (seed granularity).
    pub chunk_size: u64,
    /// Worker threads; 0 means "use available parallelism".
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
    /// Which sampler strategy trial bodies should draw with.
    ///
    /// The runner itself never consumes it — chunking and seeding are
    /// mode-independent — but carrying it here lets every trial closure
    /// (and each worker's per-accumulator scratch) pick up the mode from
    /// the one config that already travels to them.
    pub sampler: SamplerMode,
}

impl TrialConfig {
    /// Default chunk size for cheap scalar trials ([`TrialConfig::new`]).
    ///
    /// Large chunks amortise per-chunk seeding when a single trial is a few
    /// nanoseconds of work (coin flips, closed-form evaluations).
    pub const DEFAULT_CHUNK_SIZE: u64 = 256;

    /// Chunk size used by the campaign drivers in `redundancy-sim`.
    ///
    /// A campaign trial simulates thousands of tasks, so chunks of 4 keep
    /// the shared counter balancing load across workers while seeding
    /// overhead stays unmeasurable.
    pub const CAMPAIGN_CHUNK_SIZE: u64 = 4;

    /// A reasonable default: `trials` trials in chunks of
    /// [`DEFAULT_CHUNK_SIZE`](Self::DEFAULT_CHUNK_SIZE) with auto-detected
    /// thread count.
    pub fn new(trials: u64, seed: u64) -> Self {
        TrialConfig {
            trials,
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
            threads: 0,
            seed,
            sampler: SamplerMode::default(),
        }
    }

    /// Pick a chunk size automatically for this config's trial count.
    ///
    /// Starts from the per-trial-cost default —
    /// [`CAMPAIGN_CHUNK_SIZE`](Self::CAMPAIGN_CHUNK_SIZE) (4) when each
    /// trial is `heavyweight` (a full simulated campaign),
    /// [`DEFAULT_CHUNK_SIZE`](Self::DEFAULT_CHUNK_SIZE) (256) for cheap
    /// scalar trials — then shrinks it so every worker can claim at least a
    /// few chunks, which is what lets the atomic queue balance load.  Never
    /// returns 0; changing the chunk size changes the chunk→seed mapping,
    /// so fix it explicitly where byte-stable output matters.
    pub fn auto_chunk_size(&self, heavyweight: bool) -> u64 {
        let base = if heavyweight {
            Self::CAMPAIGN_CHUNK_SIZE
        } else {
            Self::DEFAULT_CHUNK_SIZE
        };
        let workers = self.effective_threads().max(1) as u64;
        // Aim for ≥ 4 chunks per worker so no thread idles while another
        // finishes a final oversized chunk.
        let balanced = (self.trials / (4 * workers)).max(1);
        base.min(balanced)
    }

    /// Builder-style variant of [`auto_chunk_size`](Self::auto_chunk_size):
    /// returns the config with `chunk_size` replaced by the auto choice.
    pub fn with_auto_chunk_size(mut self, heavyweight: bool) -> Self {
        self.chunk_size = self.auto_chunk_size(heavyweight);
        self
    }

    /// Check that the configuration can actually be run.
    ///
    /// [`run_trials`] only `debug_assert`s these invariants; callers whose
    /// parameters come from user input (the CLI flags `--chunk-size` and
    /// `--threads`) should validate first and surface the error with a
    /// proper exit code.
    pub fn validate(&self) -> Result<(), InvalidTrialConfig> {
        if self.chunk_size == 0 {
            return Err(InvalidTrialConfig {
                field: "chunk_size",
                message: "must be positive (each deterministic chunk needs at least one trial)",
            });
        }
        if self.threads > MAX_THREADS {
            return Err(InvalidTrialConfig {
                field: "threads",
                message: "exceeds the 1024-thread ceiling (0 means auto-detect)",
            });
        }
        Ok(())
    }

    pub(crate) fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// Resolve a requested thread count: 0 means "use available parallelism".
fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `config.trials` independent trials of `trial`, folding results into
/// one persistent accumulator per worker and merging the partials.
///
/// * `trial(rng, global_index, acc)` runs one trial and updates the
///   accumulator;
/// * accumulators start from `A::default()` once per **worker** and persist
///   across every chunk that worker claims, so per-accumulator caches
///   (scratch buffers, CDF tables) are built at most `threads` times;
/// * which chunks land in which partial depends on runtime scheduling, so
///   `merge` must be commutative and associative and `trial`'s accumulator
///   updates must be fold-order-insensitive (pure counters/moments —
///   everything in this workspace qualifies);
/// * chunk `c` is always seeded from `SeedSequence::derive(c)` regardless
///   of thread count, so any such accumulator yields thread-count-invariant
///   results;
/// * if a worker panics, the panic is re-raised **once** on the calling
///   thread after the remaining workers finish, so the root cause is not
///   buried under a cascade of secondary panics.
///
/// ```
/// use redundancy_stats::parallel::{run_trials, TrialConfig};
/// use redundancy_stats::Proportion;
/// // Estimate P(heads) of a fair coin.
/// let acc: Proportion = run_trials(
///     &TrialConfig::new(10_000, 42),
///     |rng, _i, acc: &mut Proportion| acc.push(rng.bernoulli(0.5)),
///     |a, b| a.merge(&b),
/// );
/// assert!((acc.estimate() - 0.5).abs() < 0.02);
/// ```
pub fn run_trials<A, F, M>(config: &TrialConfig, trial: F, merge: M) -> A
where
    A: Default + Send,
    F: Fn(&mut DeterministicRng, u64, &mut A) + Sync,
    M: Fn(&mut A, A),
{
    // Debug backstop only: validated configs should never reach here bad,
    // and CLI-facing callers go through `TrialConfig::validate` first.
    debug_assert!(config.chunk_size > 0, "chunk_size must be positive");
    let n_chunks = config.trials.div_ceil(config.chunk_size);
    let seq = SeedSequence::new(config.seed);
    let threads = config
        .effective_threads()
        .max(1)
        .min(n_chunks.max(1) as usize);

    // Fold one chunk into a worker's persistent accumulator.  The chunk
    // seed depends only on the chunk index, never on which worker runs it.
    let run_chunk = |chunk: u64, acc: &mut A| {
        let mut rng = DeterministicRng::new(seq.derive(chunk));
        let start = chunk * config.chunk_size;
        let end = (start + config.chunk_size).min(config.trials);
        for i in start..end {
            trial(&mut rng, i, acc);
        }
    };

    if threads == 1 || n_chunks <= 1 {
        let mut total = A::default();
        for chunk in 0..n_chunks {
            run_chunk(chunk, &mut total);
        }
        return total;
    }

    let next_chunk = AtomicU64::new(0);
    // One worker loop shared by the spawned threads and the caller: claim
    // chunks until the counter runs dry, folding into `acc` the whole time.
    let work = |acc: &mut A| loop {
        let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
        if chunk >= n_chunks {
            break;
        }
        run_chunk(chunk, acc);
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads)
            .map(|_| {
                let work = &work;
                scope.spawn(move || {
                    let mut acc = A::default();
                    work(&mut acc);
                    acc
                })
            })
            .collect();
        // The caller is worker 0 — one fewer thread spawn per call, which
        // matters at bench-fixture trial counts.
        let mut total = A::default();
        work(&mut total);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(partial) => merge(&mut total, partial),
                Err(payload) => {
                    // Keep the first payload (closest to the root cause);
                    // later ones are usually knock-on effects.
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        total
    })
}

/// Split a total thread budget between a sweep's outer grid and the
/// per-point inner Monte-Carlo runner.
///
/// Returns `(outer_width, inner_threads)`: the sweep pool gets
/// `min(budget, points)` workers and each grid point's own `run_trials`
/// gets the leftover factor, so `outer_width * inner_threads ≤ budget`
/// (with both at least 1).  `budget == 0` means "use available
/// parallelism", mirroring [`TrialConfig::threads`].
pub fn sweep_thread_split(budget: usize, points: usize) -> (usize, usize) {
    let budget = resolve_threads(budget).max(1);
    let outer = budget.min(points.max(1));
    let inner = (budget / outer).max(1);
    (outer, inner)
}

/// Evaluate `eval` at every grid point of `items` on one shared worker
/// pool, returning results in **input order**.
///
/// This is the sweep-level companion to [`run_trials`]: exhibits whose
/// outer loop walks a parameter grid (Fig. 1's p-grid, Fig. 3's ε-grid,
/// the fault sweeps) evaluate grid points concurrently instead of serially,
/// while the ordered return keeps their printed tables byte-identical to
/// the sequential loop.  `threads == 0` means "use available parallelism";
/// the pool never exceeds `items.len()` workers.  Grid points are claimed
/// dynamically from an atomic counter, so ragged per-point costs still
/// balance.  Worker panics are re-raised once on the calling thread, after
/// the surviving workers drain the grid.
///
/// `eval` receives `(index, &item)`; pass the index through when the
/// closure needs to derive per-point seeds.
///
/// ```
/// use redundancy_stats::parallel::parallel_sweep;
/// let grid = [1u64, 2, 3, 4, 5];
/// let squares = parallel_sweep(2, &grid, |_i, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn parallel_sweep<T, R, F>(threads: usize, items: &[T], eval: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let width = resolve_threads(threads).max(1).min(items.len().max(1));
    if width <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| eval(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let work = |out: &mut Vec<(usize, R)>| loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        let Some(item) = items.get(idx) else { break };
        out.push((idx, eval(idx, item)));
    };

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..width)
            .map(|_| {
                let work = &work;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    work(&mut out);
                    out
                })
            })
            .collect();
        let mut local = Vec::new();
        work(&mut local);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut collected = vec![local];
        for handle in handles {
            match handle.join() {
                Ok(out) => collected.push(out),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        for (idx, value) in collected.into_iter().flatten() {
            slots[idx] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every grid point evaluated exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{Proportion, RunningMoments};
    use crate::samplers::cache::BinomialCache;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn deterministic_across_thread_counts() {
        let run = |threads: usize| -> (u64, u64) {
            let cfg = TrialConfig {
                trials: 5_000,
                chunk_size: 128,
                threads,
                seed: 99,
                sampler: SamplerMode::default(),
            };
            let p: Proportion = run_trials(
                &cfg,
                |rng, _i, acc: &mut Proportion| acc.push(rng.bernoulli(0.3)),
                |a, b| a.merge(&b),
            );
            (p.successes(), p.trials())
        };
        let single = run(1);
        let quad = run(4);
        assert_eq!(single, quad);
        assert_eq!(single.1, 5_000);
    }

    #[test]
    fn covers_every_trial_index_exactly_once() {
        #[derive(Default)]
        struct Seen(Vec<u64>);
        let cfg = TrialConfig {
            trials: 1_000,
            chunk_size: 64,
            threads: 3,
            seed: 5,
            sampler: SamplerMode::default(),
        };
        let seen: Seen = run_trials(
            &cfg,
            |_rng, i, acc: &mut Seen| acc.0.push(i),
            |a, mut b| a.0.append(&mut b.0),
        );
        let mut v = seen.0;
        v.sort_unstable();
        assert_eq!(v, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn mean_estimate_converges() {
        let cfg = TrialConfig::new(50_000, 1234);
        let m: RunningMoments = run_trials(
            &cfg,
            |rng, _i, acc: &mut RunningMoments| acc.push(rng.uniform()),
            |a, b| a.merge(&b),
        );
        assert_eq!(m.count(), 50_000);
        assert!((m.mean() - 0.5).abs() < 0.01, "{}", m.mean());
    }

    #[test]
    fn zero_trials_yields_default() {
        let cfg = TrialConfig::new(0, 7);
        let p: Proportion = run_trials(
            &cfg,
            |_rng, _i, acc: &mut Proportion| acc.push(true),
            |a, b| a.merge(&b),
        );
        assert_eq!(p.trials(), 0);
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn zero_chunk_size_panics() {
        let cfg = TrialConfig {
            trials: 10,
            chunk_size: 0,
            threads: 1,
            seed: 0,
            sampler: SamplerMode::default(),
        };
        let _: Proportion = run_trials(&cfg, |_r, _i, _a: &mut Proportion| {}, |a, b| a.merge(&b));
    }

    #[test]
    fn validate_names_the_offending_field() {
        let mut cfg = TrialConfig::new(10, 0);
        assert!(cfg.validate().is_ok());
        cfg.chunk_size = 0;
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field, "chunk_size");
        assert!(err.to_string().contains("chunk_size"));
    }

    #[test]
    fn validate_rejects_absurd_thread_counts() {
        let mut cfg = TrialConfig::new(10, 0);
        cfg.threads = MAX_THREADS;
        assert!(cfg.validate().is_ok());
        cfg.threads = MAX_THREADS + 1;
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field, "threads");
    }

    #[test]
    fn auto_chunk_size_tracks_trial_weight_and_count() {
        // Plenty of trials: the per-weight base wins untouched.
        let cheap = TrialConfig {
            trials: 1_000_000,
            chunk_size: 1,
            threads: 4,
            seed: 0,
            sampler: SamplerMode::default(),
        };
        assert_eq!(
            cheap.auto_chunk_size(false),
            TrialConfig::DEFAULT_CHUNK_SIZE
        );
        assert_eq!(
            cheap.auto_chunk_size(true),
            TrialConfig::CAMPAIGN_CHUNK_SIZE
        );
        // Few trials: shrink so each of the 4 workers sees several chunks.
        let small = TrialConfig {
            trials: 64,
            chunk_size: 1,
            threads: 4,
            seed: 0,
            sampler: SamplerMode::default(),
        };
        assert_eq!(small.auto_chunk_size(false), 4);
        assert_eq!(small.auto_chunk_size(true), 4);
        // Degenerate: never 0, and the builder form validates.
        let tiny = TrialConfig {
            trials: 1,
            chunk_size: 1,
            threads: 8,
            seed: 0,
            sampler: SamplerMode::default(),
        };
        assert_eq!(tiny.auto_chunk_size(true), 1);
        assert!(tiny.with_auto_chunk_size(false).validate().is_ok());
    }

    /// Satellite guarantee for the sim drivers: per-accumulator sampler
    /// caches are built once per worker, not once per chunk.  The plan
    /// builds are observable through `BinomialCache::misses`, so the total
    /// across all partials is bounded by the worker count.
    #[test]
    fn caches_build_once_per_worker_not_per_chunk() {
        #[derive(Default)]
        struct CacheAcc {
            cache: BinomialCache,
            /// Plan builds observed in partials merged into this one.
            merged_builds: u64,
            draws: u64,
        }
        let threads = 4usize;
        let cfg = TrialConfig {
            trials: 512,
            chunk_size: 8, // 64 chunks — far more chunks than workers
            threads,
            seed: 11,
            sampler: SamplerMode::default(),
        };
        let total: CacheAcc = run_trials(
            &cfg,
            |rng, _i, acc: &mut CacheAcc| {
                let id = acc.cache.prepare(12, 0.3);
                let _ = acc.cache.sample_prepared(id, rng);
                acc.draws += 1;
            },
            |a, b| {
                a.merged_builds += b.cache.misses() + b.merged_builds;
                a.draws += b.draws;
            },
        );
        let builds = total.merged_builds + total.cache.misses();
        assert_eq!(total.draws, 512);
        assert!(builds >= 1);
        assert!(
            builds <= threads as u64,
            "expected at most one cache build per worker, saw {builds}"
        );
    }

    #[test]
    #[should_panic(expected = "trial 137 exploded")]
    fn worker_panic_surfaces_once_with_root_cause() {
        let cfg = TrialConfig {
            trials: 1_000,
            chunk_size: 16,
            threads: 4,
            seed: 3,
            sampler: SamplerMode::default(),
        };
        let _: Proportion = run_trials(
            &cfg,
            |_rng, i, acc: &mut Proportion| {
                assert!(i != 137, "trial 137 exploded");
                acc.push(true);
            },
            |a, b| a.merge(&b),
        );
    }

    #[test]
    fn sweep_returns_results_in_input_order() {
        let grid: Vec<u64> = (0..97).collect();
        for threads in [1usize, 2, 4, 8] {
            let out = parallel_sweep(threads, &grid, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            let expect: Vec<u64> = grid.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn sweep_handles_empty_and_singleton_grids() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_sweep(4, &empty, |_i, &x| x).is_empty());
        assert_eq!(parallel_sweep(4, &[9u32], |_i, &x| x + 1), vec![10]);
    }

    #[test]
    fn sweep_evaluates_each_point_exactly_once() {
        let calls = AtomicUsize::new(0);
        let grid: Vec<usize> = (0..37).collect();
        let out = parallel_sweep(4, &grid, |i, _x| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 37);
        assert_eq!(out, grid);
    }

    #[test]
    #[should_panic(expected = "point 5 is cursed")]
    fn sweep_panic_surfaces_once() {
        let grid: Vec<usize> = (0..32).collect();
        let _ = parallel_sweep(4, &grid, |i, _x| {
            assert!(i != 5, "point 5 is cursed");
            i
        });
    }

    #[test]
    fn thread_split_respects_budget_and_grid() {
        assert_eq!(sweep_thread_split(8, 4), (4, 2));
        assert_eq!(sweep_thread_split(8, 16), (8, 1));
        assert_eq!(sweep_thread_split(1, 10), (1, 1));
        assert_eq!(sweep_thread_split(6, 4), (4, 1));
        // Degenerate grids never produce a zero-width pool.
        assert_eq!(sweep_thread_split(4, 0), (1, 4));
        // budget == 0 resolves to available parallelism: both factors ≥ 1.
        let (outer, inner) = sweep_thread_split(0, 3);
        assert!(outer >= 1 && inner >= 1);
        assert!(outer <= 3);
    }
}
