//! Deterministic multi-threaded Monte-Carlo trial runner.
//!
//! Trials are partitioned into fixed-size chunks; chunk `c` always runs with
//! the RNG seeded from `SeedSequence::derive(c)`, so results are identical
//! whatever the thread count — including single-threaded CI machines.
//! Worker threads pull chunk indices from a shared atomic counter and send
//! partial results over a `crossbeam` channel; the caller folds them with an
//! order-insensitive `merge`.

use crate::rng::{DeterministicRng, SeedSequence};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`TrialConfig`] field that cannot be run as configured.
///
/// Returned by [`TrialConfig::validate`] so CLI layers can reject bad
/// configurations with a proper exit code instead of panicking mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTrialConfig {
    /// Name of the offending field.
    pub field: &'static str,
    /// Why the value is unusable.
    pub message: &'static str,
}

impl fmt::Display for InvalidTrialConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trial config: {} {}", self.field, self.message)
    }
}

impl std::error::Error for InvalidTrialConfig {}

/// Configuration for [`run_trials`].
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Total number of trials to run.
    pub trials: u64,
    /// Trials per deterministic chunk (seed granularity).
    pub chunk_size: u64,
    /// Worker threads; 0 means "use available parallelism".
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
}

impl TrialConfig {
    /// A reasonable default: `trials` trials in chunks of 256 with
    /// auto-detected thread count.
    pub fn new(trials: u64, seed: u64) -> Self {
        TrialConfig {
            trials,
            chunk_size: 256,
            threads: 0,
            seed,
        }
    }

    /// Check that the configuration can actually be run.
    ///
    /// [`run_trials`] only `debug_assert`s these invariants; callers whose
    /// parameters come from user input (the CLI flag `--chunk-size`) should
    /// validate first and surface the error with a proper exit code.
    pub fn validate(&self) -> Result<(), InvalidTrialConfig> {
        if self.chunk_size == 0 {
            return Err(InvalidTrialConfig {
                field: "chunk_size",
                message: "must be positive (each deterministic chunk needs at least one trial)",
            });
        }
        Ok(())
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run `config.trials` independent trials of `trial`, folding per-chunk
/// accumulators with `merge`.
///
/// * `trial(rng, global_index)` runs one trial and updates an accumulator;
/// * accumulators start from `A::default()` per chunk and are merged in
///   arbitrary order, so `merge` must be commutative and associative.
///
/// ```
/// use redundancy_stats::parallel::{run_trials, TrialConfig};
/// use redundancy_stats::Proportion;
/// // Estimate P(heads) of a fair coin.
/// let acc: Proportion = run_trials(
///     &TrialConfig::new(10_000, 42),
///     |rng, _i, acc: &mut Proportion| acc.push(rng.bernoulli(0.5)),
///     |a, b| a.merge(&b),
/// );
/// assert!((acc.estimate() - 0.5).abs() < 0.02);
/// ```
pub fn run_trials<A, F, M>(config: &TrialConfig, trial: F, merge: M) -> A
where
    A: Default + Send,
    F: Fn(&mut DeterministicRng, u64, &mut A) + Sync,
    M: Fn(&mut A, A),
{
    // Debug backstop only: validated configs should never reach here bad,
    // and CLI-facing callers go through `TrialConfig::validate` first.
    debug_assert!(config.chunk_size > 0, "chunk_size must be positive");
    let n_chunks = config.trials.div_ceil(config.chunk_size);
    let seq = SeedSequence::new(config.seed);
    let next_chunk = AtomicU64::new(0);
    let threads = config
        .effective_threads()
        .max(1)
        .min(n_chunks.max(1) as usize);

    let run_chunk = |chunk: u64| -> A {
        let mut rng = DeterministicRng::new(seq.derive(chunk));
        let mut acc = A::default();
        let start = chunk * config.chunk_size;
        let end = (start + config.chunk_size).min(config.trials);
        for i in start..end {
            trial(&mut rng, i, &mut acc);
        }
        acc
    };

    if threads == 1 || n_chunks <= 1 {
        let mut total = A::default();
        for chunk in 0..n_chunks {
            merge(&mut total, run_chunk(chunk));
        }
        return total;
    }

    let (tx, rx) = std::sync::mpsc::channel::<A>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next_chunk;
            let run_chunk = &run_chunk;
            scope.spawn(move || loop {
                let chunk = next.fetch_add(1, Ordering::Relaxed);
                if chunk >= n_chunks {
                    break;
                }
                // Ship each chunk's accumulator to the collector; merging
                // here would need `M: Sync` for no measurable gain at the
                // chunk sizes this workspace uses.
                tx.send(run_chunk(chunk)).expect("collector alive");
            });
        }
        drop(tx);
        let mut total = A::default();
        for acc in rx {
            merge(&mut total, acc);
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{Proportion, RunningMoments};

    #[test]
    fn deterministic_across_thread_counts() {
        let run = |threads: usize| -> (u64, u64) {
            let cfg = TrialConfig {
                trials: 5_000,
                chunk_size: 128,
                threads,
                seed: 99,
            };
            let p: Proportion = run_trials(
                &cfg,
                |rng, _i, acc: &mut Proportion| acc.push(rng.bernoulli(0.3)),
                |a, b| a.merge(&b),
            );
            (p.successes(), p.trials())
        };
        let single = run(1);
        let quad = run(4);
        assert_eq!(single, quad);
        assert_eq!(single.1, 5_000);
    }

    #[test]
    fn covers_every_trial_index_exactly_once() {
        #[derive(Default)]
        struct Seen(Vec<u64>);
        let cfg = TrialConfig {
            trials: 1_000,
            chunk_size: 64,
            threads: 3,
            seed: 5,
        };
        let seen: Seen = run_trials(
            &cfg,
            |_rng, i, acc: &mut Seen| acc.0.push(i),
            |a, mut b| a.0.append(&mut b.0),
        );
        let mut v = seen.0;
        v.sort_unstable();
        assert_eq!(v, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn mean_estimate_converges() {
        let cfg = TrialConfig::new(50_000, 1234);
        let m: RunningMoments = run_trials(
            &cfg,
            |rng, _i, acc: &mut RunningMoments| acc.push(rng.uniform()),
            |a, b| a.merge(&b),
        );
        assert_eq!(m.count(), 50_000);
        assert!((m.mean() - 0.5).abs() < 0.01, "{}", m.mean());
    }

    #[test]
    fn zero_trials_yields_default() {
        let cfg = TrialConfig::new(0, 7);
        let p: Proportion = run_trials(
            &cfg,
            |_rng, _i, acc: &mut Proportion| acc.push(true),
            |a, b| a.merge(&b),
        );
        assert_eq!(p.trials(), 0);
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn zero_chunk_size_panics() {
        let cfg = TrialConfig {
            trials: 10,
            chunk_size: 0,
            threads: 1,
            seed: 0,
        };
        let _: Proportion = run_trials(&cfg, |_r, _i, _a: &mut Proportion| {}, |a, b| a.merge(&b));
    }

    #[test]
    fn validate_names_the_offending_field() {
        let mut cfg = TrialConfig::new(10, 0);
        assert!(cfg.validate().is_ok());
        cfg.chunk_size = 0;
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field, "chunk_size");
        assert!(err.to_string().contains("chunk_size"));
    }
}
