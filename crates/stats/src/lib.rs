#![warn(missing_docs)]

//! # redundancy-stats — numerics and Monte-Carlo machinery
//!
//! Support substrate for the redundancy-strategy workspace:
//!
//! * [`rng`] — deterministic, splittable random number generation
//!   (SplitMix64 seeding, xoshiro256++ stream) so every experiment in
//!   EXPERIMENTS.md is exactly replayable on any platform;
//! * [`special`] — log-factorials, binomial coefficients, and the few
//!   special-function evaluations the paper's formulas need, accurate over
//!   the full range the distributions exercise (multiplicities ≤ ~80,
//!   N ≤ 10⁹);
//! * [`samplers`] — exact samplers for the discrete distributions the
//!   simulator draws from (Bernoulli, binomial, hypergeometric, Poisson,
//!   zero-truncated Poisson, geometric, and Walker-alias categorical —
//!   the last being how task multiplicities are drawn proportionally to a
//!   distribution's weights);
//! * [`estimate`] — streaming moments, binomial proportion estimates with
//!   Wilson confidence intervals, and histograms for the empirical-detection
//!   experiments;
//! * [`parallel`] — a chunked multi-threaded Monte-Carlo trial runner with
//!   per-chunk derived seeds (deterministic regardless of thread count),
//!   worker-persistent accumulators, and a sweep-level driver for the
//!   exhibits' outer parameter grids;
//! * [`table`] — the fixed-width table renderer used to print the paper's
//!   tables byte-identically across the repro binaries and examples.

pub mod estimate;
pub mod gof;
pub mod parallel;
pub mod quantile;
pub mod rng;
pub mod samplers;
pub mod special;
pub mod table;

pub use estimate::{Histogram, Proportion, RunningMoments};
pub use gof::{chi_square_test, regularized_gamma_q, ChiSquare};
pub use parallel::{
    parallel_sweep, run_trials, sweep_thread_split, InvalidTrialConfig, TrialConfig, MAX_THREADS,
};
pub use quantile::P2Quantile;
pub use rng::{DeterministicRng, SeedSequence};
pub use samplers::alias::DiscreteAlias;
pub use samplers::cache::{BinomialCache, HypergeometricCache, PreparedSampler};
pub use samplers::{
    sample_binomial, sample_geometric, sample_hypergeometric, sample_poisson,
    sample_zero_truncated_poisson, AliasTable, SamplerMode,
};
pub use special::{binomial, binomial_pmf, hypergeometric_pmf, ln_binomial, ln_factorial};
