//! Property-based tests for the numerics/sampling substrate.

use proptest::prelude::*;
use redundancy_stats::samplers::{
    sample_binomial, sample_geometric, sample_hypergeometric, sample_zero_truncated_poisson,
    AliasTable,
};
use redundancy_stats::special::{
    binomial, binomial_pmf, hypergeometric_pmf, ln_binomial, ln_factorial,
};
use redundancy_stats::{
    chi_square_test, BinomialCache, DeterministicRng, Histogram, HypergeometricCache, Proportion,
    RunningMoments, SeedSequence,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `ln C(n,k)` and the direct `C(n,k)` agree wherever both are finite.
    #[test]
    fn binomial_log_consistency(n in 0u64..120, k in 0u64..120) {
        let direct = binomial(n, k);
        if k > n {
            prop_assert_eq!(direct, 0.0);
            prop_assert!(ln_binomial(n, k).is_infinite());
        } else {
            let logged = ln_binomial(n, k).exp();
            let rel = (direct - logged).abs() / logged.max(1.0);
            prop_assert!(rel < 1e-9, "C({},{}) {} vs {}", n, k, direct, logged);
        }
    }

    /// Factorial recurrence holds across the table/Stirling seam.
    #[test]
    fn ln_factorial_recurrence(n in 1u64..5_000) {
        let lhs = ln_factorial(n);
        let rhs = ln_factorial(n - 1) + (n as f64).ln();
        prop_assert!((lhs - rhs).abs() < 1e-8, "n={}", n);
    }

    /// Binomial samples live on the right support and match the mean.
    #[test]
    fn binomial_sampler_mean(n in 1u64..60, p_cent in 0u32..=100, seed in 0u64..1000) {
        let p = p_cent as f64 / 100.0;
        let mut rng = DeterministicRng::new(seed);
        let trials = 3_000u32;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = sample_binomial(&mut rng, n, p);
            prop_assert!(x <= n);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        let expect = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        prop_assert!((mean - expect).abs() < 5.0 * sd / (trials as f64).sqrt() + 1e-9,
            "n={} p={} mean {} expect {}", n, p, mean, expect);
    }

    /// `BinomialCache` is draw-for-draw identical to `sample_binomial` on a
    /// shared RNG stream — values equal AND uniforms consumed equal, over an
    /// arbitrary `(n, p)` grid including the mirrored and degenerate ranges.
    #[test]
    fn binomial_cache_is_bit_identical_to_walk(
        n in 0u64..200,
        p_mill in 0u32..=1000,
        seed in 0u64..1000,
    ) {
        let p = p_mill as f64 / 1000.0;
        let mut walk_rng = DeterministicRng::new(seed);
        let mut cache_rng = walk_rng.clone();
        let mut cache = BinomialCache::default();
        let id = cache.prepare(n, p);
        for i in 0..200 {
            let want = sample_binomial(&mut walk_rng, n, p);
            let got = cache.sample_prepared(id, &mut cache_rng);
            prop_assert_eq!(want, got, "n={} p={} draw {}", n, p, i);
        }
        prop_assert_eq!(walk_rng, cache_rng, "RNG consumption diverged n={} p={}", n, p);
    }

    /// `HypergeometricCache` is draw-for-draw identical to
    /// `sample_hypergeometric` on a shared RNG stream.
    #[test]
    fn hypergeometric_cache_is_bit_identical_to_walk(
        total in 1u64..300,
        succ_frac in 0u32..=100,
        draw_frac in 0u32..=100,
        seed in 0u64..1000,
    ) {
        let successes = total * succ_frac as u64 / 100;
        let draws = total * draw_frac as u64 / 100;
        let mut walk_rng = DeterministicRng::new(seed);
        let mut cache_rng = walk_rng.clone();
        let mut cache = HypergeometricCache::default();
        let id = cache.prepare(total, successes, draws);
        for i in 0..200 {
            let want = sample_hypergeometric(&mut walk_rng, total, successes, draws);
            let got = cache.sample_prepared(id, &mut cache_rng);
            prop_assert_eq!(want, got, "({},{},{}) draw {}", total, successes, draws, i);
        }
        prop_assert_eq!(walk_rng, cache_rng,
            "RNG consumption diverged ({},{},{})", total, successes, draws);
    }

    /// Hypergeometric samples respect their support bounds.
    #[test]
    fn hypergeometric_support(
        total in 1u64..500,
        succ_frac in 0u32..=100,
        draw_frac in 0u32..=100,
        seed in 0u64..500,
    ) {
        let successes = total * succ_frac as u64 / 100;
        let draws = total * draw_frac as u64 / 100;
        let mut rng = DeterministicRng::new(seed);
        for _ in 0..50 {
            let x = sample_hypergeometric(&mut rng, total, successes, draws);
            let lo = draws.saturating_sub(total - successes);
            let hi = successes.min(draws);
            prop_assert!((lo..=hi).contains(&x), "x={} not in [{},{}]", x, lo, hi);
        }
    }

    /// Zero-truncated Poisson never returns zero and matches its mean.
    #[test]
    fn ztp_support_and_mean(lam_cent in 5u32..300, seed in 0u64..200) {
        let lam = lam_cent as f64 / 100.0;
        let mut rng = DeterministicRng::new(seed);
        let trials = 2_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = sample_zero_truncated_poisson(&mut rng, lam);
            prop_assert!(x >= 1);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        let expect = lam / (1.0 - (-lam).exp());
        prop_assert!((mean - expect).abs() < 0.15 + expect * 0.05,
            "λ={}: {} vs {}", lam, mean, expect);
    }

    /// Geometric sampler: support ≥ 1, mean 1/q.
    #[test]
    fn geometric_mean(q_cent in 5u32..=100, seed in 0u64..200) {
        let q = q_cent as f64 / 100.0;
        let mut rng = DeterministicRng::new(seed);
        let trials = 3_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = sample_geometric(&mut rng, q);
            prop_assert!(x >= 1);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        prop_assert!((mean - 1.0 / q).abs() < 0.35 / q / (trials as f64 / 1000.0).sqrt() + 0.05,
            "q={}: mean {}", q, mean);
    }

    /// Alias tables never emit zero-weight categories and hit positive ones.
    #[test]
    fn alias_table_support(
        weights in proptest::collection::vec(0.0f64..10.0, 1..12),
        seed in 0u64..200,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = DeterministicRng::new(seed);
        let mut seen = vec![false; weights.len()];
        for _ in 0..2_000 {
            let c = table.sample(&mut rng);
            prop_assert!(weights[c] > 0.0, "zero-weight category {} drawn", c);
            seen[c] = true;
        }
        // Heaviest category must be represented.
        let heaviest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assert!(seen[heaviest]);
    }

    /// Welford merge equals sequential accumulation on arbitrary splits.
    #[test]
    fn moments_merge_associative(
        data in proptest::collection::vec(-1e6f64..1e6, 2..200),
        cut_frac in 0u32..=100,
    ) {
        let cut = (data.len() * cut_frac as usize / 100).min(data.len());
        let mut whole = RunningMoments::new();
        for &x in &data { whole.push(x); }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &data[..cut] { a.push(x); }
        for &x in &data[cut..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((a.sample_variance() - whole.sample_variance()).abs()
            < 1e-6 * whole.sample_variance().abs().max(1.0));
    }

    /// Wilson intervals always contain the point estimate and live in [0,1].
    #[test]
    fn wilson_contains_estimate(successes in 0u64..500, extra in 0u64..500) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let mut p = Proportion::new();
        p.push_batch(successes, trials);
        let (lo, hi) = p.wilson_interval(1.96);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p.estimate() + 1e-12 && p.estimate() <= hi + 1e-12);
    }

    /// Histograms: total equals sum of counts; merge is additive.
    #[test]
    fn histogram_additivity(
        a_vals in proptest::collection::vec(0usize..40, 0..100),
        b_vals in proptest::collection::vec(0usize..40, 0..100),
    ) {
        let mut a = Histogram::new();
        for &v in &a_vals { a.record(v); }
        let mut b = Histogram::new();
        for &v in &b_vals { b.record(v); }
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.total(), (a_vals.len() + b_vals.len()) as u64);
        for v in 0..40 {
            prop_assert_eq!(merged.count(v), a.count(v) + b.count(v));
        }
    }

    /// Seed sequences: derive is injective in practice over small ranges
    /// and independent of call order.
    #[test]
    fn seed_sequence_stability(root in 0u64..u64::MAX, i in 0u64..10_000, j in 0u64..10_000) {
        let seq = SeedSequence::new(root);
        prop_assert_eq!(seq.derive(i), SeedSequence::new(root).derive(i));
        if i != j {
            prop_assert_ne!(seq.derive(i), seq.derive(j));
        }
    }
}

// Goodness-of-fit properties are heavier (thousands of draws per case and a
// χ² evaluation), so they run in their own block with fewer cases.  The
// significance level is 1e-4: with 8 cases per property the probability of
// a false rejection under the true law is ~1e-3, and the shim's
// deterministic name-derived seeding means a passing configuration stays
// passing forever.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// χ² goodness of fit: `sample_binomial` draws follow the exact pmf.
    #[test]
    fn binomial_sampler_matches_exact_pmf(
        n in 2u64..50,
        p_cent in 5u32..=95,
        seed in 0u64..1_000,
    ) {
        let p = p_cent as f64 / 100.0;
        let mut rng = DeterministicRng::new(seed);
        let mut hist = Histogram::new();
        for _ in 0..4_000 {
            hist.record(sample_binomial(&mut rng, n, p) as usize);
        }
        let probs: Vec<f64> = (0..=n).map(|k| binomial_pmf(n, p, k)).collect();
        // Pooling can collapse a near-degenerate law to one bin (None):
        // nothing testable there.
        if let Some(result) = chi_square_test(&hist, &probs, 5.0) {
            prop_assert!(
                result.consistent(1e-4),
                "Bin({}, {}) rejected at seed {}: {:?}", n, p, seed, result
            );
        }
    }

    /// χ² goodness of fit: `sample_hypergeometric` draws follow the exact pmf.
    #[test]
    fn hypergeometric_sampler_matches_exact_pmf(
        total in 10u64..200,
        succ_frac in 10u32..=90,
        draw_frac in 10u32..=90,
        seed in 0u64..1_000,
    ) {
        let successes = total * succ_frac as u64 / 100;
        let draws = total * draw_frac as u64 / 100;
        prop_assume!(successes >= 1 && draws >= 1);
        let mut rng = DeterministicRng::new(seed);
        let mut hist = Histogram::new();
        for _ in 0..4_000 {
            hist.record(sample_hypergeometric(&mut rng, total, successes, draws) as usize);
        }
        let hi = successes.min(draws);
        let probs: Vec<f64> = (0..=hi)
            .map(|k| hypergeometric_pmf(total, successes, draws, k))
            .collect();
        if let Some(result) = chi_square_test(&hist, &probs, 5.0) {
            prop_assert!(
                result.consistent(1e-4),
                "Hyp({}, {}, {}) rejected at seed {}: {:?}",
                total, successes, draws, seed, result
            );
        }
    }
}

#[test]
fn binomial_sampler_degenerate_probabilities_are_point_masses() {
    let mut rng = DeterministicRng::new(20_050_926);
    for n in [0u64, 1, 17, 64] {
        for _ in 0..200 {
            assert_eq!(sample_binomial(&mut rng, n, 0.0), 0);
            assert_eq!(sample_binomial(&mut rng, n, 1.0), n);
        }
    }
}

#[test]
fn hypergeometric_sampler_boundary_draws_are_deterministic() {
    let mut rng = DeterministicRng::new(20_050_926);
    for _ in 0..200 {
        // Drawing the whole population takes every marked item.
        assert_eq!(sample_hypergeometric(&mut rng, 30, 12, 30), 12);
        // Drawing nothing takes none.
        assert_eq!(sample_hypergeometric(&mut rng, 30, 12, 0), 0);
        // No marked items → never draw one; all marked → every draw is one.
        assert_eq!(sample_hypergeometric(&mut rng, 30, 0, 10), 0);
        assert_eq!(sample_hypergeometric(&mut rng, 30, 30, 10), 10);
    }
}
