//! The campaign engine: one full supervisor round against the adversary.
//!
//! For every task the engine draws how many copies the adversary holds
//! (binomial under [`AdversaryModel::AssignmentFraction`]; hypergeometric
//! under [`AdversaryModel::SybilAccounts`], since real platforms send the
//! copies of one task to *distinct* hosts), materializes the returned
//! result values — honest, honestly-faulty, or colluded-wrong — and runs
//! the supervisor's comparison, tallying detections per tuple size.
//!
//! # The batched kernel
//!
//! The hot loop is batched over [`grouped_specs`] runs of identical task
//! shape: per-shape constants (multiplicity, adversary sampler preparation,
//! task/assignment counters) are hoisted out of the per-task body, holdings
//! are drawn through the cached CDF tables of [`BinomialCache`] /
//! [`HypergeometricCache`], and all scratch state lives in a reusable
//! [`CampaignScratch`] so steady-state campaigns allocate nothing.  When
//! `honest_error_rate == 0` the supervisor's verdict is a closed form of
//! `(held, multiplicity, precomputed, policy)` and the engine skips result
//! materialization and comparison entirely.
//!
//! All of this is *observationally identical* to the seed per-task loop —
//! same RNG consumption, same outcome, bit for bit.  The frozen originals
//! are kept in [`reference`] as the differential-testing oracle and the
//! benchmark baseline; the golden snapshots under `tests/snapshots/` pin
//! the equivalence end-to-end.

use crate::adversary::{AdversaryModel, CheatStrategy};
use crate::faults::FaultModel;
use crate::outcome::CampaignOutcome;
use crate::retry::{deliver_assignment, Delivery};
use crate::supervisor::{Supervisor, VerificationPolicy};
use crate::task::{
    colluded_wrong_result, correct_result, faulty_result, grouped_specs, ResultValue, TaskId,
    TaskSpec,
};
use redundancy_stats::{
    BinomialCache, DeterministicRng, HypergeometricCache, PreparedSampler, SamplerMode,
};

/// Everything a campaign needs besides its task list and RNG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// How the adversary's platform share is modeled.
    pub adversary: AdversaryModel,
    /// Which holdings she attacks.
    pub strategy: CheatStrategy,
    /// Probability an honest copy returns a wrong (non-malicious) result.
    pub honest_error_rate: f64,
    /// The supervisor's reconciliation policy.
    pub policy: VerificationPolicy,
}

impl CampaignConfig {
    /// Standard configuration: no honest faults, unanimity required.
    pub fn new(adversary: AdversaryModel, strategy: CheatStrategy) -> Self {
        CampaignConfig {
            adversary,
            strategy,
            honest_error_rate: 0.0,
            policy: VerificationPolicy::Unanimous,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.adversary.validate()?;
        if !(0.0..=1.0).contains(&self.honest_error_rate) {
            return Err(format!(
                "honest error rate {} outside [0, 1]",
                self.honest_error_rate
            ));
        }
        Ok(())
    }
}

/// Reusable per-worker scratch state for the campaign kernel.
///
/// Holds the results buffer and the cached sampler tables; threading one
/// instance through repeated campaigns (the Monte-Carlo driver does this
/// via [`CampaignAccumulator`]) drops steady-state per-trial allocation to
/// zero and reuses each distinct `(n, p)` CDF table across all campaigns a
/// worker runs.
#[derive(Debug, Clone, Default)]
pub struct CampaignScratch {
    results: Vec<ResultValue>,
    held_counts: Vec<u64>,
    binomial: BinomialCache,
    hypergeometric: HypergeometricCache,
    tally: TallyLanes,
    mode: SamplerMode,
}

impl CampaignScratch {
    /// Fresh scratch with empty buffers and caches, drawing in the default
    /// [`SamplerMode::BitCompat`] mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set which sampler strategy subsequent campaigns draw holdings with.
    ///
    /// Switching modes never invalidates anything: both modes' plans live
    /// side by side in the caches, and the tally lanes are mode-agnostic.
    pub fn set_sampler_mode(&mut self, mode: SamplerMode) {
        self.mode = mode;
    }

    /// Builder form of [`set_sampler_mode`](Self::set_sampler_mode).
    pub fn with_sampler_mode(mut self, mode: SamplerMode) -> Self {
        self.mode = mode;
        self
    }

    /// The mode campaigns on this scratch currently draw with.
    pub fn sampler_mode(&self) -> SamplerMode {
        self.mode
    }

    /// Distinct `(binomial, hypergeometric)` parameter sets cached so far —
    /// a handful per plan shape (Balanced: head, tail, ringers).
    pub fn cached_parameter_sets(&self) -> (usize, usize) {
        (self.binomial.len(), self.hypergeometric.len())
    }
}

/// Struct-of-arrays tally state for the closed-form errorless path.
///
/// Four parallel `u64` lanes indexed by holdings bin — raw holdings,
/// cheats attempted, cheats detected, wrong results accepted — plus the
/// per-group 0/1 verdict masks that feed them.  The per-task loop only
/// bins draws; the verdict fold is then a branch-free multiply-accumulate
/// over whole lanes (`lane[k] += count[k] * mask[k]`), which is the shape
/// the autovectorizer wants.  Lanes accumulate across a campaign's spec
/// groups and drain into the [`CampaignOutcome`] once per campaign, and
/// because every counter is a commutative sum the drained outcome is
/// identical — vector lengths included — to the reference's per-task
/// record order.
#[derive(Debug, Clone, Default)]
struct TallyLanes {
    mask_attempted: Vec<u64>,
    mask_detected: Vec<u64>,
    mask_wrong: Vec<u64>,
    holdings: Vec<u64>,
    attempted: Vec<u64>,
    detected: Vec<u64>,
    wrong: Vec<u64>,
}

impl TallyLanes {
    /// Start a fresh campaign: empty lanes (they regrow per group).
    fn reset(&mut self) {
        self.holdings.clear();
        self.attempted.clear();
        self.detected.clear();
        self.wrong.clear();
    }

    /// Grow the accumulation lanes to at least `bins` entries, preserving
    /// the counts already folded from earlier groups.
    fn grow(&mut self, bins: usize) {
        if self.holdings.len() < bins {
            self.holdings.resize(bins, 0);
            self.attempted.resize(bins, 0);
            self.detected.resize(bins, 0);
            self.wrong.resize(bins, 0);
        }
    }

    /// Recompute the 0/1 verdict masks for one spec group: closed-form
    /// `Supervisor::verify` outcomes as a function of the holdings bin.
    fn set_masks(
        &mut self,
        mult: u64,
        precomputed: bool,
        strategy: &CheatStrategy,
        majority: bool,
    ) {
        let bins = mult as usize + 1;
        self.mask_attempted.resize(bins, 0);
        self.mask_detected.resize(bins, 0);
        self.mask_wrong.resize(bins, 0);
        for k in 0..bins {
            let full = k as u64 == mult;
            // Any wrong copy in a precomputed (ringer/verified) tuple is
            // caught; otherwise only a mixed tuple disagrees and flags.
            let flagged = precomputed || !full;
            // An un-ringered full-control tuple is accepted unanimously;
            // under Majority a colluding strict majority is accepted too.
            let wrong = !precomputed && (full || (majority && 2 * k as u64 > mult));
            let cheats = u64::from(strategy.cheats_on(k as u32));
            self.mask_attempted[k] = cheats;
            self.mask_detected[k] = cheats & u64::from(flagged);
            self.mask_wrong[k] = cheats & u64::from(wrong);
        }
    }

    /// Branch-free fold of one group's binned draws through the masks.
    fn accumulate(&mut self, held_counts: &[u64]) {
        let bins = held_counts.len();
        self.grow(bins);
        for (k, &count) in held_counts.iter().enumerate() {
            self.holdings[k] += count;
            self.attempted[k] += count * self.mask_attempted[k];
            self.detected[k] += count * self.mask_detected[k];
            self.wrong[k] += count * self.mask_wrong[k];
        }
    }

    /// Drain the lanes into the outcome, recording only populated bins so
    /// vector lengths match the reference's record order exactly.
    fn drain_into(&mut self, outcome: &mut CampaignOutcome) {
        for k in 0..self.holdings.len() {
            let held = self.holdings[k];
            if held > 0 {
                outcome.holdings.record_n(k, held);
            }
            let attempted = self.attempted[k];
            if attempted > 0 {
                let detected = self.detected[k];
                outcome.record_cheat_n(k, true, detected);
                outcome.record_cheat_n(k, false, attempted - detected);
            }
            outcome.wrong_accepted += self.wrong[k];
        }
        self.reset();
    }
}

/// Monte-Carlo accumulator pairing the folded [`CampaignOutcome`] with the
/// worker's reusable [`CampaignScratch`].
///
/// `run_trials` requires `Default + Send` accumulators; carrying the
/// scratch inside the accumulator gives every worker thread its own caches
/// and buffers with no locking and no per-trial setup.  Merging folds the
/// outcomes and simply drops the other worker's scratch.
#[derive(Debug, Clone, Default)]
pub struct CampaignAccumulator {
    /// Aggregated campaign tallies.
    pub outcome: CampaignOutcome,
    /// This worker's reusable buffers and sampler caches.
    pub scratch: CampaignScratch,
}

impl CampaignAccumulator {
    /// Fold another accumulator's outcome into this one (scratch is
    /// per-worker state and is discarded).
    pub fn merge(&mut self, other: CampaignAccumulator) {
        self.outcome.merge(&other.outcome);
    }
}

/// Resolve the adversary model to a prepared holdings sampler for one spec
/// group.
///
/// This is the *single* place every campaign variant — batch kernels and
/// the live [`crate::serve`] store alike — maps the adversary model to a
/// distribution, so the model match cannot drift between them; preparation
/// happens once per spec group, and the returned handle draws with no
/// per-task dispatch or indexing.
pub(crate) fn prepare_holdings<'a>(
    config: &CampaignConfig,
    mult: u64,
    binomial: &'a mut BinomialCache,
    hypergeometric: &'a mut HypergeometricCache,
    mode: SamplerMode,
) -> PreparedSampler<'a> {
    match config.adversary {
        AdversaryModel::AssignmentFraction { p } => {
            let id = binomial.prepare_mode(mult, p, mode);
            binomial.prepared(id)
        }
        AdversaryModel::SybilAccounts { total, adversary } => {
            // Copies of one task go to distinct accounts.
            let id = hypergeometric.prepare_mode(
                total as u64,
                adversary as u64,
                mult.min(total as u64),
                mode,
            );
            hypergeometric.prepared(id)
        }
    }
}

/// Verify one task's materialized results and fold the verdict into the
/// outcome — the shared tail of every campaign variant (batch kernels and
/// the live [`crate::serve`] store).
#[inline]
pub(crate) fn judge_task(
    supervisor: &Supervisor,
    task: &TaskSpec,
    results: &[ResultValue],
    held: u32,
    cheats: bool,
    wrong: ResultValue,
    outcome: &mut CampaignOutcome,
) {
    let verdict = supervisor.verify(task, results);
    if cheats {
        outcome.record_cheat(held as usize, verdict.flagged);
        if verdict.accepted == Some(wrong) {
            outcome.wrong_accepted += 1;
        }
    } else if verdict.flagged {
        outcome.false_flags += 1;
    }
}

/// Run one campaign over `tasks`, accumulating into `outcome`.
///
/// The engine is deterministic given the RNG state, so campaigns replay
/// exactly under the Monte-Carlo driver's per-chunk seeds.  Convenience
/// wrapper over [`run_campaign_with_scratch`] with throwaway scratch; hot
/// callers should hold a [`CampaignScratch`] and call the `_with_scratch`
/// variant directly.
pub fn run_campaign(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    rng: &mut DeterministicRng,
    outcome: &mut CampaignOutcome,
) {
    let mut scratch = CampaignScratch::new();
    run_campaign_with_scratch(tasks, config, rng, outcome, &mut scratch);
}

/// [`run_campaign`] with caller-owned scratch: zero steady-state allocation
/// and sampler tables shared across campaigns.
///
/// In the default [`SamplerMode::BitCompat`] this is bit-for-bit identical
/// to [`reference::run_campaign`] — same draws, same tallies — for every
/// configuration; the differential tests and the golden snapshots enforce
/// this.  With the scratch switched to [`SamplerMode::Fast`] the holdings
/// draws go through the O(1) alias tables instead: the same laws (and the
/// exact same closed-form tallies per drawn value), but a different RNG
/// stream, pinned by fast-mode determinism checksums rather than the
/// snapshots.
pub fn run_campaign_with_scratch(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    rng: &mut DeterministicRng,
    outcome: &mut CampaignOutcome,
    scratch: &mut CampaignScratch,
) {
    debug_assert!(config.validate().is_ok(), "invalid campaign config");
    let supervisor = Supervisor::new(config.policy);
    outcome.campaigns += 1;
    // With no honest errors a task's returned copies are fully determined
    // by (held, cheats): `held` colluded-wrong copies then `mult − held`
    // correct ones, and no RNG is consumed materializing them.  The
    // supervisor's verdict is then a closed form (derived case-by-case from
    // `Supervisor::verify`), so the whole materialize-and-compare tail can
    // be skipped.
    let errorless = config.honest_error_rate == 0.0;
    let majority = config.policy == VerificationPolicy::Majority;
    let CampaignScratch {
        results,
        held_counts,
        binomial,
        hypergeometric,
        tally,
        mode,
    } = scratch;
    let mode = *mode;
    if errorless {
        tally.reset();
    }
    for group in grouped_specs(tasks) {
        let mult = group.multiplicity as u64;
        outcome.tasks += group.count;
        outcome.assignments += group.count * mult;
        let sampler = prepare_holdings(config, mult, binomial, hypergeometric, mode);
        if errorless {
            // Every per-task tally is a pure function of `held` and the
            // group constants, and all outcome counters are commutative
            // sums — so the hot loop only bins the draws, and the verdict
            // fold is a branch-free lane MAC over the binned counts.
            held_counts.clear();
            held_counts.resize(mult as usize + 1, 0);
            if let Some(table) = sampler.as_alias() {
                // Fast mode: the verdict fold only consumes the *binned*
                // draws, and the histogram of `count` iid draws is a
                // multinomial over the support — so sample it directly,
                // one conditional binomial per holdings bin instead of
                // one uniform per task.  Same law, group-sized cost.
                table.multinomial_into(group.count, rng, held_counts);
            } else {
                for _ in 0..group.count {
                    held_counts[sampler.sample(rng) as usize] += 1;
                }
            }
            tally.set_masks(mult, group.precomputed, &config.strategy, majority);
            tally.accumulate(held_counts);
            continue;
        }
        for i in 0..group.count {
            let held = sampler.sample(rng) as u32;
            outcome.holdings.record(held as usize);
            let cheats = config.strategy.cheats_on(held);
            let task = TaskSpec {
                id: TaskId(group.first_id.0 + i),
                multiplicity: group.multiplicity,
                precomputed: group.precomputed,
            };
            // Materialize the returned copies: the adversary's first, then
            // the honest hosts'.
            results.clear();
            let wrong = colluded_wrong_result(task.id);
            let right = correct_result(task.id);
            for _ in 0..held {
                results.push(if cheats { wrong } else { right });
            }
            for j in u64::from(held)..mult {
                let faulty =
                    config.honest_error_rate > 0.0 && rng.bernoulli(config.honest_error_rate);
                results.push(if faulty {
                    faulty_result(task.id, j ^ rng.next_raw())
                } else {
                    right
                });
            }
            judge_task(&supervisor, &task, results, held, cheats, wrong, outcome);
        }
    }
    if errorless {
        tally.drain_into(outcome);
    }
}

/// Fold one assignment's delivery telemetry into the outcome.
fn tally_delivery(outcome: &mut CampaignOutcome, delivery: &Delivery) {
    outcome.drops += delivery.drops;
    outcome.timeouts += delivery.timeouts;
    outcome.retries += delivery.retries;
    outcome.wait_ticks += delivery.wait_ticks;
    if delivery.returned {
        outcome.corrupted_returns += u64::from(delivery.corrupted);
    } else {
        outcome.lost_assignments += 1;
    }
}

/// Run one campaign over `tasks` under a [`FaultModel`], accumulating into
/// `outcome`.
///
/// Every copy — the adversary's included — passes through the retry loop in
/// [`crate::retry`]; only copies that actually return reach the
/// supervisor's comparison, so fault pressure shrinks the tuples being
/// compared and with them the empirical detection probability.  A task
/// whose copies are all lost is counted in `unresolved_tasks` and skipped
/// (a real supervisor re-enqueues it into a later campaign).
///
/// With an inactive model (`!faults.is_active()`) this delegates to
/// [`run_campaign`] and is bit-for-bit identical to it: the fault layer
/// consumes no randomness at all.
pub fn run_campaign_with_faults(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    faults: &FaultModel,
    rng: &mut DeterministicRng,
    outcome: &mut CampaignOutcome,
) {
    let mut scratch = CampaignScratch::new();
    run_campaign_with_faults_scratch(tasks, config, faults, rng, outcome, &mut scratch);
}

/// [`run_campaign_with_faults`] with caller-owned scratch.
///
/// Shares the holdings sampler ([`HoldingsSampler`]) and the verdict tail
/// (`judge_task`) with the fault-free kernel, so the two variants cannot
/// drift; every copy's delivery still consumes RNG, so there is no
/// closed-form fast path here.
pub fn run_campaign_with_faults_scratch(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    faults: &FaultModel,
    rng: &mut DeterministicRng,
    outcome: &mut CampaignOutcome,
    scratch: &mut CampaignScratch,
) {
    debug_assert!(faults.validate().is_ok(), "invalid fault model");
    if !faults.is_active() {
        return run_campaign_with_scratch(tasks, config, rng, outcome, scratch);
    }
    debug_assert!(config.validate().is_ok(), "invalid campaign config");
    let supervisor = Supervisor::new(config.policy);
    outcome.campaigns += 1;
    let CampaignScratch {
        results,
        binomial,
        hypergeometric,
        mode,
        ..
    } = scratch;
    let mode = *mode;
    for group in grouped_specs(tasks) {
        let mult = group.multiplicity as u64;
        outcome.tasks += group.count;
        outcome.assignments += group.count * mult;
        let sampler = prepare_holdings(config, mult, binomial, hypergeometric, mode);
        for i in 0..group.count {
            let held = sampler.sample(rng) as u32;
            outcome.holdings.record(held as usize);
            // The adversary commits on what she *holds*; she cannot foresee
            // which copies the platform will lose.
            let cheats = config.strategy.cheats_on(held);
            let task = TaskSpec {
                id: TaskId(group.first_id.0 + i),
                multiplicity: group.multiplicity,
                precomputed: group.precomputed,
            };

            results.clear();
            let wrong = colluded_wrong_result(task.id);
            let right = correct_result(task.id);
            for j in 0..u64::from(held) {
                let delivery = deliver_assignment(faults, rng);
                tally_delivery(outcome, &delivery);
                if delivery.returned {
                    let intended = if cheats { wrong } else { right };
                    results.push(if delivery.corrupted {
                        faulty_result(task.id, j ^ rng.next_raw())
                    } else {
                        intended
                    });
                }
            }
            for j in u64::from(held)..mult {
                let delivery = deliver_assignment(faults, rng);
                tally_delivery(outcome, &delivery);
                if delivery.returned {
                    let honest_fault =
                        config.honest_error_rate > 0.0 && rng.bernoulli(config.honest_error_rate);
                    results.push(if delivery.corrupted || honest_fault {
                        faulty_result(task.id, j ^ rng.next_raw())
                    } else {
                        right
                    });
                }
            }

            let returned = results.len() as u64;
            if returned < mult {
                outcome.degraded.record((mult - returned) as usize);
            }
            if returned == 0 {
                outcome.unresolved_tasks += 1;
                continue;
            }
            judge_task(&supervisor, &task, results, held, cheats, wrong, outcome);
        }
    }
}

/// Frozen seed implementations of the campaign loops.
///
/// These are the original per-task, uncached, allocate-per-campaign loops,
/// kept verbatim as (a) the oracle for the differential tests that prove
/// the batched kernel bit-identical, and (b) the baseline the criterion
/// benches and `redundancy bench` measure the speedup against.  Do not
/// optimize or "clean up" this module: its entire value is that it stays
/// put.
pub mod reference {
    use super::*;
    use redundancy_stats::samplers::{sample_binomial, sample_hypergeometric};

    /// The seed per-task campaign loop (pre-batching).
    pub fn run_campaign(
        tasks: &[TaskSpec],
        config: &CampaignConfig,
        rng: &mut DeterministicRng,
        outcome: &mut CampaignOutcome,
    ) {
        debug_assert!(config.validate().is_ok(), "invalid campaign config");
        let supervisor = Supervisor::new(config.policy);
        outcome.campaigns += 1;
        let mut results = Vec::with_capacity(32);
        for task in tasks {
            let mult = task.multiplicity as u64;
            outcome.tasks += 1;
            outcome.assignments += mult;
            let held = match config.adversary {
                AdversaryModel::AssignmentFraction { p } => sample_binomial(rng, mult, p),
                AdversaryModel::SybilAccounts { total, adversary } => sample_hypergeometric(
                    rng,
                    total as u64,
                    adversary as u64,
                    mult.min(total as u64),
                ),
            } as u32;
            outcome.holdings.record(held as usize);
            let cheats = config.strategy.cheats_on(held);

            results.clear();
            let wrong = colluded_wrong_result(task.id);
            let right = correct_result(task.id);
            for _ in 0..held {
                results.push(if cheats { wrong } else { right });
            }
            for j in held as u64..mult {
                let faulty =
                    config.honest_error_rate > 0.0 && rng.bernoulli(config.honest_error_rate);
                results.push(if faulty {
                    faulty_result(task.id, j ^ rng.next_raw())
                } else {
                    right
                });
            }

            let verdict = supervisor.verify(task, &results);
            if cheats {
                outcome.record_cheat(held as usize, verdict.flagged);
                if verdict.accepted == Some(wrong) {
                    outcome.wrong_accepted += 1;
                }
            } else if verdict.flagged {
                outcome.false_flags += 1;
            }
        }
    }

    /// The seed fault-injecting campaign loop (pre-batching).
    pub fn run_campaign_with_faults(
        tasks: &[TaskSpec],
        config: &CampaignConfig,
        faults: &FaultModel,
        rng: &mut DeterministicRng,
        outcome: &mut CampaignOutcome,
    ) {
        debug_assert!(faults.validate().is_ok(), "invalid fault model");
        if !faults.is_active() {
            return run_campaign(tasks, config, rng, outcome);
        }
        debug_assert!(config.validate().is_ok(), "invalid campaign config");
        let supervisor = Supervisor::new(config.policy);
        outcome.campaigns += 1;
        let mut results = Vec::with_capacity(32);
        for task in tasks {
            let mult = task.multiplicity as u64;
            outcome.tasks += 1;
            outcome.assignments += mult;
            let held = match config.adversary {
                AdversaryModel::AssignmentFraction { p } => sample_binomial(rng, mult, p),
                AdversaryModel::SybilAccounts { total, adversary } => sample_hypergeometric(
                    rng,
                    total as u64,
                    adversary as u64,
                    mult.min(total as u64),
                ),
            } as u32;
            outcome.holdings.record(held as usize);
            let cheats = config.strategy.cheats_on(held);

            results.clear();
            let wrong = colluded_wrong_result(task.id);
            let right = correct_result(task.id);
            for j in 0..u64::from(held) {
                let delivery = deliver_assignment(faults, rng);
                tally_delivery(outcome, &delivery);
                if delivery.returned {
                    let intended = if cheats { wrong } else { right };
                    results.push(if delivery.corrupted {
                        faulty_result(task.id, j ^ rng.next_raw())
                    } else {
                        intended
                    });
                }
            }
            for j in u64::from(held)..mult {
                let delivery = deliver_assignment(faults, rng);
                tally_delivery(outcome, &delivery);
                if delivery.returned {
                    let honest_fault =
                        config.honest_error_rate > 0.0 && rng.bernoulli(config.honest_error_rate);
                    results.push(if delivery.corrupted || honest_fault {
                        faulty_result(task.id, j ^ rng.next_raw())
                    } else {
                        right
                    });
                }
            }

            let returned = results.len() as u64;
            if returned < mult {
                outcome.degraded.record((mult - returned) as usize);
            }
            if returned == 0 {
                outcome.unresolved_tasks += 1;
                continue;
            }
            let verdict = supervisor.verify(task, &results);
            if cheats {
                outcome.record_cheat(held as usize, verdict.flagged);
                if verdict.accepted == Some(wrong) {
                    outcome.wrong_accepted += 1;
                }
            } else if verdict.flagged {
                outcome.false_flags += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::expand_plan;
    use redundancy_core::RealizedPlan;

    fn specs(n: u64, eps: f64) -> Vec<TaskSpec> {
        expand_plan(&RealizedPlan::balanced(n, eps).unwrap())
    }

    fn run(tasks: &[TaskSpec], cfg: &CampaignConfig, seed: u64) -> CampaignOutcome {
        let mut rng = DeterministicRng::new(seed);
        let mut out = CampaignOutcome::default();
        run_campaign(tasks, cfg, &mut rng, &mut out);
        out
    }

    #[test]
    fn honest_campaign_has_no_flags() {
        let tasks = specs(5_000, 0.5);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.0 },
            CheatStrategy::Never,
        );
        let out = run(&tasks, &cfg, 1);
        assert_eq!(out.total_attempted(), 0);
        assert_eq!(out.false_flags, 0);
        assert_eq!(out.wrong_accepted, 0);
        assert_eq!(out.tasks, tasks.len() as u64);
    }

    #[test]
    fn naive_always_cheater_detected_at_proposition3_rate() {
        // Under Balanced, P_{k,p} is the *same* for every k (Proposition
        // 3), so even the cheat-on-everything adversary is detected per
        // attack at exactly 1 − (1−ε)^{1−p} — here ≈ 0.4257.
        let tasks = specs(5_000, 0.5);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        let out = run(&tasks, &cfg, 2);
        assert!(out.total_attempted() > 500);
        let rate = out.overall_detection_rate().unwrap();
        let expect = 1.0 - 0.5f64.powf(0.8);
        assert!(
            (rate - expect).abs() < 0.03,
            "overall detection {rate} vs {expect}"
        );
    }

    #[test]
    fn full_control_without_ringers_escapes() {
        // 2-fold plan, adversary holds both copies, cheats: never flagged,
        // wrong result accepted — the paper's motivating failure.
        let plan = RealizedPlan::k_fold(2_000, 2, 0.5).unwrap();
        let tasks = expand_plan(&plan);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.3 },
            CheatStrategy::ExactTuples { k: 2 },
        );
        let out = run(&tasks, &cfg, 3);
        assert!(out.total_attempted() > 50);
        assert_eq!(
            out.total_detected(),
            0,
            "collusion on both copies is invisible"
        );
        assert_eq!(out.wrong_accepted, out.total_attempted());
    }

    #[test]
    fn balanced_plan_detects_at_epsilon_rate() {
        // ExactTuples(1) at small p: detection rate should be near
        // P_{1,p} = 1 − (1−ε)^{1−p}.
        let eps = 0.5;
        let p = 0.1;
        let tasks = specs(20_000, eps);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::ExactTuples { k: 1 },
        );
        let mut out = CampaignOutcome::default();
        let mut rng = DeterministicRng::new(4);
        for _ in 0..10 {
            run_campaign(&tasks, &cfg, &mut rng, &mut out);
        }
        let expect = 1.0 - (1.0 - eps).powf(1.0 - p);
        let rate = out.detection_rate(1).unwrap();
        assert!(
            (rate - expect).abs() < 0.02,
            "empirical {rate} vs closed-form {expect}"
        );
    }

    #[test]
    fn sybil_model_matches_fraction_model_closely() {
        let tasks = specs(20_000, 0.75);
        let frac = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.1 },
            CheatStrategy::ExactTuples { k: 2 },
        );
        let sybil = CampaignConfig::new(
            AdversaryModel::SybilAccounts {
                total: 10_000,
                adversary: 1_000,
            },
            CheatStrategy::ExactTuples { k: 2 },
        );
        let a = run(&tasks, &frac, 5);
        let b = run(&tasks, &sybil, 5);
        let ra = a.detection_rate(2).unwrap_or(1.0);
        let rb = b.detection_rate(2).unwrap_or(1.0);
        assert!((ra - rb).abs() < 0.08, "{ra} vs {rb}");
    }

    #[test]
    fn honest_errors_cause_false_flags_only() {
        let tasks = specs(10_000, 0.5);
        let mut cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.0 },
            CheatStrategy::Never,
        );
        cfg.honest_error_rate = 0.02;
        let out = run(&tasks, &cfg, 6);
        assert!(out.false_flags > 0, "2% fault rate must trip comparisons");
        assert_eq!(out.total_attempted(), 0);
    }

    #[test]
    fn ringers_catch_full_control_cheats() {
        // Attack exactly the tail multiplicity i_f: without ringers those
        // cheats would all escape; the plan's ringers must catch ≈ ε of the
        // i_f-tuples (the adversary cannot distinguish tail tasks from
        // ringers).
        // A near-total adversary (p = 0.9) frequently holds all i_f copies
        // of tail tasks; only ringers stand between her and free cheating.
        let plan = RealizedPlan::balanced(100_000, 0.75).unwrap();
        let i_f = plan.tail_multiplicity().unwrap() as u32;
        let tasks = expand_plan(&plan);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.9 },
            CheatStrategy::ExactTuples { k: i_f },
        );
        let mut out = CampaignOutcome::default();
        let mut rng = DeterministicRng::new(7);
        for _ in 0..300 {
            run_campaign(&tasks, &cfg, &mut rng, &mut out);
        }
        let attempted = out.cheats_attempted.get(i_f as usize).copied().unwrap_or(0);
        assert!(attempted > 200, "need i_f-tuple attacks, got {attempted}");
        let rate = out.detection_rate(i_f as usize).unwrap();
        assert!(
            rate > 0.1,
            "ringers must catch i_f-tuple cheats, rate {rate}"
        );
    }

    #[test]
    fn config_validation() {
        let mut cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.5 },
            CheatStrategy::Never,
        );
        assert!(cfg.validate().is_ok());
        cfg.honest_error_rate = 1.5;
        assert!(cfg.validate().is_err());
        let bad = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 1.0 },
            CheatStrategy::Never,
        );
        assert!(bad.validate().is_err());
    }

    /// Run the frozen reference and the batched kernel on clones of the
    /// same RNG for three back-to-back campaigns (exercising scratch
    /// reuse), asserting identical outcomes AND identical final RNG state
    /// (same uniforms consumed, in the same order).
    fn assert_matches_reference(
        tasks: &[TaskSpec],
        cfg: &CampaignConfig,
        faults: Option<&FaultModel>,
        seed: u64,
    ) {
        let mut ref_rng = DeterministicRng::new(seed);
        let mut new_rng = ref_rng.clone();
        let mut ref_out = CampaignOutcome::default();
        let mut new_out = CampaignOutcome::default();
        let mut scratch = CampaignScratch::new();
        for _ in 0..3 {
            match faults {
                None => {
                    reference::run_campaign(tasks, cfg, &mut ref_rng, &mut ref_out);
                    run_campaign_with_scratch(tasks, cfg, &mut new_rng, &mut new_out, &mut scratch);
                }
                Some(f) => {
                    reference::run_campaign_with_faults(tasks, cfg, f, &mut ref_rng, &mut ref_out);
                    run_campaign_with_faults_scratch(
                        tasks,
                        cfg,
                        f,
                        &mut new_rng,
                        &mut new_out,
                        &mut scratch,
                    );
                }
            }
        }
        assert_eq!(ref_out, new_out, "outcome diverged for {cfg:?}");
        assert_eq!(ref_rng, new_rng, "RNG stream diverged for {cfg:?}");
    }

    #[test]
    fn batched_kernel_is_bit_identical_to_reference() {
        let balanced = specs(1_500, 0.75);
        let pairs = expand_plan(&RealizedPlan::k_fold(800, 2, 0.5).unwrap());
        let models = [
            AdversaryModel::AssignmentFraction { p: 0.2 },
            AdversaryModel::SybilAccounts {
                total: 10_000,
                adversary: 1_500,
            },
        ];
        let strategies = [
            CheatStrategy::Never,
            CheatStrategy::Always,
            CheatStrategy::ExactTuples { k: 1 }, // Majority ties on pairs
            CheatStrategy::ExactTuples { k: 2 },
            CheatStrategy::AtLeast { min_copies: 1 },
        ];
        let policies = [VerificationPolicy::Unanimous, VerificationPolicy::Majority];
        let mut seed = 1_000;
        for tasks in [&balanced, &pairs] {
            for adversary in models {
                for strategy in strategies {
                    for policy in policies {
                        for honest_error_rate in [0.0, 0.02] {
                            seed += 1;
                            let cfg = CampaignConfig {
                                adversary,
                                strategy,
                                honest_error_rate,
                                policy,
                            };
                            assert_matches_reference(tasks, &cfg, None, seed);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn faulty_kernel_is_bit_identical_to_reference() {
        let tasks = specs(1_000, 0.5);
        let active = FaultModel {
            straggler_rate: 0.2,
            straggler_mean_delay: 10.0,
            corrupt_rate: 0.01,
            ..FaultModel::with_drop_rate(0.15)
        };
        let inactive = FaultModel::none();
        let mut seed = 2_000;
        for faults in [&active, &inactive] {
            for adversary in [
                AdversaryModel::AssignmentFraction { p: 0.2 },
                AdversaryModel::SybilAccounts {
                    total: 5_000,
                    adversary: 900,
                },
            ] {
                for strategy in [CheatStrategy::Always, CheatStrategy::ExactTuples { k: 2 }] {
                    for policy in [VerificationPolicy::Unanimous, VerificationPolicy::Majority] {
                        for honest_error_rate in [0.0, 0.02] {
                            seed += 1;
                            let cfg = CampaignConfig {
                                adversary,
                                strategy,
                                honest_error_rate,
                                policy,
                            };
                            assert_matches_reference(&tasks, &cfg, Some(faults), seed);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_caches_stay_small_across_campaigns() {
        // A Balanced plan has a handful of distinct multiplicities; the
        // caches must not grow with tasks or campaigns.
        let tasks = specs(10_000, 0.75);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        let mut rng = DeterministicRng::new(42);
        let mut out = CampaignOutcome::default();
        let mut scratch = CampaignScratch::new();
        for _ in 0..5 {
            run_campaign_with_scratch(&tasks, &cfg, &mut rng, &mut out, &mut scratch);
        }
        let (bin, hyp) = scratch.cached_parameter_sets();
        assert!(bin > 0, "binomial cache unused");
        // One entry per distinct multiplicity in the plan — independent of
        // task count and campaign count.
        assert!(bin <= 32, "cache grew beyond plan shapes: {bin}");
        assert_eq!(hyp, 0);
    }

    #[test]
    fn accumulator_merge_folds_outcomes() {
        let tasks = specs(500, 0.5);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        let mut a = CampaignAccumulator::default();
        let mut b = CampaignAccumulator::default();
        let mut rng = DeterministicRng::new(8);
        run_campaign_with_scratch(&tasks, &cfg, &mut rng, &mut a.outcome, &mut a.scratch);
        run_campaign_with_scratch(&tasks, &cfg, &mut rng, &mut b.outcome, &mut b.scratch);
        let total = b.outcome.tasks + a.outcome.tasks;
        a.merge(b);
        assert_eq!(a.outcome.campaigns, 2);
        assert_eq!(a.outcome.tasks, total);
    }
}
