//! The campaign engine: one full supervisor round against the adversary.
//!
//! For every task the engine draws how many copies the adversary holds
//! (binomial under [`AdversaryModel::AssignmentFraction`]; hypergeometric
//! under [`AdversaryModel::SybilAccounts`], since real platforms send the
//! copies of one task to *distinct* hosts), materializes the returned
//! result values — honest, honestly-faulty, or colluded-wrong — and runs
//! the supervisor's comparison, tallying detections per tuple size.

use crate::adversary::{AdversaryModel, CheatStrategy};
use crate::faults::FaultModel;
use crate::outcome::CampaignOutcome;
use crate::retry::{deliver_assignment, Delivery};
use crate::supervisor::{Supervisor, VerificationPolicy};
use crate::task::{colluded_wrong_result, correct_result, faulty_result, TaskSpec};
use redundancy_stats::samplers::{sample_binomial, sample_hypergeometric};
use redundancy_stats::DeterministicRng;

/// Everything a campaign needs besides its task list and RNG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// How the adversary's platform share is modeled.
    pub adversary: AdversaryModel,
    /// Which holdings she attacks.
    pub strategy: CheatStrategy,
    /// Probability an honest copy returns a wrong (non-malicious) result.
    pub honest_error_rate: f64,
    /// The supervisor's reconciliation policy.
    pub policy: VerificationPolicy,
}

impl CampaignConfig {
    /// Standard configuration: no honest faults, unanimity required.
    pub fn new(adversary: AdversaryModel, strategy: CheatStrategy) -> Self {
        CampaignConfig {
            adversary,
            strategy,
            honest_error_rate: 0.0,
            policy: VerificationPolicy::Unanimous,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.adversary.validate()?;
        if !(0.0..=1.0).contains(&self.honest_error_rate) {
            return Err(format!(
                "honest error rate {} outside [0, 1]",
                self.honest_error_rate
            ));
        }
        Ok(())
    }
}

/// Run one campaign over `tasks`, accumulating into `outcome`.
///
/// The engine is deterministic given the RNG state, so campaigns replay
/// exactly under the Monte-Carlo driver's per-chunk seeds.
pub fn run_campaign(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    rng: &mut DeterministicRng,
    outcome: &mut CampaignOutcome,
) {
    debug_assert!(config.validate().is_ok(), "invalid campaign config");
    let supervisor = Supervisor::new(config.policy);
    outcome.campaigns += 1;
    let mut results = Vec::with_capacity(32);
    for task in tasks {
        let mult = task.multiplicity as u64;
        outcome.tasks += 1;
        outcome.assignments += mult;
        let held = match config.adversary {
            AdversaryModel::AssignmentFraction { p } => sample_binomial(rng, mult, p),
            AdversaryModel::SybilAccounts { total, adversary } => {
                // Copies of one task go to distinct accounts.
                sample_hypergeometric(rng, total as u64, adversary as u64, mult.min(total as u64))
            }
        } as u32;
        outcome.holdings.record(held as usize);
        let cheats = config.strategy.cheats_on(held);

        // Materialize the returned copies: the adversary's first, then the
        // honest hosts'.
        results.clear();
        let wrong = colluded_wrong_result(task.id);
        let right = correct_result(task.id);
        for _ in 0..held {
            results.push(if cheats { wrong } else { right });
        }
        for j in held as u64..mult {
            let faulty = config.honest_error_rate > 0.0 && rng.bernoulli(config.honest_error_rate);
            results.push(if faulty {
                faulty_result(task.id, j ^ rng.next_raw())
            } else {
                right
            });
        }

        let verdict = supervisor.verify(task, &results);
        if cheats {
            outcome.record_cheat(held as usize, verdict.flagged);
            if verdict.accepted == Some(wrong) {
                outcome.wrong_accepted += 1;
            }
        } else if verdict.flagged {
            outcome.false_flags += 1;
        }
    }
}

/// Fold one assignment's delivery telemetry into the outcome.
fn tally_delivery(outcome: &mut CampaignOutcome, delivery: &Delivery) {
    outcome.drops += delivery.drops;
    outcome.timeouts += delivery.timeouts;
    outcome.retries += delivery.retries;
    outcome.wait_ticks += delivery.wait_ticks;
    if delivery.returned {
        outcome.corrupted_returns += u64::from(delivery.corrupted);
    } else {
        outcome.lost_assignments += 1;
    }
}

/// Run one campaign over `tasks` under a [`FaultModel`], accumulating into
/// `outcome`.
///
/// Every copy — the adversary's included — passes through the retry loop in
/// [`crate::retry`]; only copies that actually return reach the
/// supervisor's comparison, so fault pressure shrinks the tuples being
/// compared and with them the empirical detection probability.  A task
/// whose copies are all lost is counted in `unresolved_tasks` and skipped
/// (a real supervisor re-enqueues it into a later campaign).
///
/// With an inactive model (`!faults.is_active()`) this delegates to
/// [`run_campaign`] and is bit-for-bit identical to it: the fault layer
/// consumes no randomness at all.
pub fn run_campaign_with_faults(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    faults: &FaultModel,
    rng: &mut DeterministicRng,
    outcome: &mut CampaignOutcome,
) {
    debug_assert!(faults.validate().is_ok(), "invalid fault model");
    if !faults.is_active() {
        return run_campaign(tasks, config, rng, outcome);
    }
    debug_assert!(config.validate().is_ok(), "invalid campaign config");
    let supervisor = Supervisor::new(config.policy);
    outcome.campaigns += 1;
    let mut results = Vec::with_capacity(32);
    for task in tasks {
        let mult = task.multiplicity as u64;
        outcome.tasks += 1;
        outcome.assignments += mult;
        let held = match config.adversary {
            AdversaryModel::AssignmentFraction { p } => sample_binomial(rng, mult, p),
            AdversaryModel::SybilAccounts { total, adversary } => {
                sample_hypergeometric(rng, total as u64, adversary as u64, mult.min(total as u64))
            }
        } as u32;
        outcome.holdings.record(held as usize);
        // The adversary commits on what she *holds*; she cannot foresee
        // which copies the platform will lose.
        let cheats = config.strategy.cheats_on(held);

        results.clear();
        let wrong = colluded_wrong_result(task.id);
        let right = correct_result(task.id);
        for j in 0..u64::from(held) {
            let delivery = deliver_assignment(faults, rng);
            tally_delivery(outcome, &delivery);
            if delivery.returned {
                let intended = if cheats { wrong } else { right };
                results.push(if delivery.corrupted {
                    faulty_result(task.id, j ^ rng.next_raw())
                } else {
                    intended
                });
            }
        }
        for j in u64::from(held)..mult {
            let delivery = deliver_assignment(faults, rng);
            tally_delivery(outcome, &delivery);
            if delivery.returned {
                let honest_fault =
                    config.honest_error_rate > 0.0 && rng.bernoulli(config.honest_error_rate);
                results.push(if delivery.corrupted || honest_fault {
                    faulty_result(task.id, j ^ rng.next_raw())
                } else {
                    right
                });
            }
        }

        let returned = results.len() as u64;
        if returned < mult {
            outcome.degraded.record((mult - returned) as usize);
        }
        if returned == 0 {
            outcome.unresolved_tasks += 1;
            continue;
        }
        let verdict = supervisor.verify(task, &results);
        if cheats {
            outcome.record_cheat(held as usize, verdict.flagged);
            if verdict.accepted == Some(wrong) {
                outcome.wrong_accepted += 1;
            }
        } else if verdict.flagged {
            outcome.false_flags += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::expand_plan;
    use redundancy_core::RealizedPlan;

    fn specs(n: u64, eps: f64) -> Vec<TaskSpec> {
        expand_plan(&RealizedPlan::balanced(n, eps).unwrap())
    }

    fn run(tasks: &[TaskSpec], cfg: &CampaignConfig, seed: u64) -> CampaignOutcome {
        let mut rng = DeterministicRng::new(seed);
        let mut out = CampaignOutcome::default();
        run_campaign(tasks, cfg, &mut rng, &mut out);
        out
    }

    #[test]
    fn honest_campaign_has_no_flags() {
        let tasks = specs(5_000, 0.5);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.0 },
            CheatStrategy::Never,
        );
        let out = run(&tasks, &cfg, 1);
        assert_eq!(out.total_attempted(), 0);
        assert_eq!(out.false_flags, 0);
        assert_eq!(out.wrong_accepted, 0);
        assert_eq!(out.tasks, tasks.len() as u64);
    }

    #[test]
    fn naive_always_cheater_detected_at_proposition3_rate() {
        // Under Balanced, P_{k,p} is the *same* for every k (Proposition
        // 3), so even the cheat-on-everything adversary is detected per
        // attack at exactly 1 − (1−ε)^{1−p} — here ≈ 0.4257.
        let tasks = specs(5_000, 0.5);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        let out = run(&tasks, &cfg, 2);
        assert!(out.total_attempted() > 500);
        let rate = out.overall_detection_rate().unwrap();
        let expect = 1.0 - 0.5f64.powf(0.8);
        assert!(
            (rate - expect).abs() < 0.03,
            "overall detection {rate} vs {expect}"
        );
    }

    #[test]
    fn full_control_without_ringers_escapes() {
        // 2-fold plan, adversary holds both copies, cheats: never flagged,
        // wrong result accepted — the paper's motivating failure.
        let plan = RealizedPlan::k_fold(2_000, 2, 0.5).unwrap();
        let tasks = expand_plan(&plan);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.3 },
            CheatStrategy::ExactTuples { k: 2 },
        );
        let out = run(&tasks, &cfg, 3);
        assert!(out.total_attempted() > 50);
        assert_eq!(
            out.total_detected(),
            0,
            "collusion on both copies is invisible"
        );
        assert_eq!(out.wrong_accepted, out.total_attempted());
    }

    #[test]
    fn balanced_plan_detects_at_epsilon_rate() {
        // ExactTuples(1) at small p: detection rate should be near
        // P_{1,p} = 1 − (1−ε)^{1−p}.
        let eps = 0.5;
        let p = 0.1;
        let tasks = specs(20_000, eps);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::ExactTuples { k: 1 },
        );
        let mut out = CampaignOutcome::default();
        let mut rng = DeterministicRng::new(4);
        for _ in 0..10 {
            run_campaign(&tasks, &cfg, &mut rng, &mut out);
        }
        let expect = 1.0 - (1.0 - eps).powf(1.0 - p);
        let rate = out.detection_rate(1).unwrap();
        assert!(
            (rate - expect).abs() < 0.02,
            "empirical {rate} vs closed-form {expect}"
        );
    }

    #[test]
    fn sybil_model_matches_fraction_model_closely() {
        let tasks = specs(20_000, 0.75);
        let frac = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.1 },
            CheatStrategy::ExactTuples { k: 2 },
        );
        let sybil = CampaignConfig::new(
            AdversaryModel::SybilAccounts {
                total: 10_000,
                adversary: 1_000,
            },
            CheatStrategy::ExactTuples { k: 2 },
        );
        let a = run(&tasks, &frac, 5);
        let b = run(&tasks, &sybil, 5);
        let ra = a.detection_rate(2).unwrap_or(1.0);
        let rb = b.detection_rate(2).unwrap_or(1.0);
        assert!((ra - rb).abs() < 0.08, "{ra} vs {rb}");
    }

    #[test]
    fn honest_errors_cause_false_flags_only() {
        let tasks = specs(10_000, 0.5);
        let mut cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.0 },
            CheatStrategy::Never,
        );
        cfg.honest_error_rate = 0.02;
        let out = run(&tasks, &cfg, 6);
        assert!(out.false_flags > 0, "2% fault rate must trip comparisons");
        assert_eq!(out.total_attempted(), 0);
    }

    #[test]
    fn ringers_catch_full_control_cheats() {
        // Attack exactly the tail multiplicity i_f: without ringers those
        // cheats would all escape; the plan's ringers must catch ≈ ε of the
        // i_f-tuples (the adversary cannot distinguish tail tasks from
        // ringers).
        // A near-total adversary (p = 0.9) frequently holds all i_f copies
        // of tail tasks; only ringers stand between her and free cheating.
        let plan = RealizedPlan::balanced(100_000, 0.75).unwrap();
        let i_f = plan.tail_multiplicity().unwrap() as u32;
        let tasks = expand_plan(&plan);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.9 },
            CheatStrategy::ExactTuples { k: i_f },
        );
        let mut out = CampaignOutcome::default();
        let mut rng = DeterministicRng::new(7);
        for _ in 0..300 {
            run_campaign(&tasks, &cfg, &mut rng, &mut out);
        }
        let attempted = out.cheats_attempted.get(i_f as usize).copied().unwrap_or(0);
        assert!(attempted > 200, "need i_f-tuple attacks, got {attempted}");
        let rate = out.detection_rate(i_f as usize).unwrap();
        assert!(
            rate > 0.1,
            "ringers must catch i_f-tuple cheats, rate {rate}"
        );
    }

    #[test]
    fn config_validation() {
        let mut cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.5 },
            CheatStrategy::Never,
        );
        assert!(cfg.validate().is_ok());
        cfg.honest_error_rate = 1.5;
        assert!(cfg.validate().is_err());
        let bad = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 1.0 },
            CheatStrategy::Never,
        );
        assert!(bad.validate().is_err());
    }
}
