//! The supervisor's result-verification logic.
//!
//! Deployed platforms either demand unanimity among returned copies or run
//! a quorum/majority vote (BOINC-style).  Both are implemented; in either
//! case *any* disagreement flags the task for investigation, and ringer /
//! verified tasks are checked against the supervisor's precomputed answer.

use crate::task::{correct_result, ResultValue, TaskSpec};

/// How copies of a task are reconciled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationPolicy {
    /// Accept only if all copies agree; any mismatch flags the task.
    Unanimous,
    /// Accept the plurality value (ties flag); mismatches still flag the
    /// task for investigation, but a colluding majority's value would be
    /// *recorded* as the result — the `wrong_accepted` metric exposes this.
    Majority,
}

/// The supervisor's verdict on one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// The result the supervisor records, if any.
    pub accepted: Option<ResultValue>,
    /// True if the task was flagged for investigation (mismatch among
    /// copies, or a precomputed-answer mismatch).
    pub flagged: bool,
}

/// The verifying supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervisor {
    policy: VerificationPolicy,
}

impl Supervisor {
    /// Create a supervisor with the given reconciliation policy.
    pub fn new(policy: VerificationPolicy) -> Self {
        Supervisor { policy }
    }

    /// The reconciliation policy in force.
    pub fn policy(&self) -> VerificationPolicy {
        self.policy
    }

    /// Reconcile the returned copies of one task.
    ///
    /// # Panics
    /// Panics if `results` is empty — every task has at least one copy.
    pub fn verify(&self, task: &TaskSpec, results: &[ResultValue]) -> Verdict {
        assert!(!results.is_empty(), "task verified with no results");
        if task.precomputed {
            // Supervisor knows the answer: any wrong copy is caught.
            let expected = correct_result(task.id);
            let any_wrong = results.iter().any(|&r| r != expected);
            return Verdict {
                accepted: Some(expected),
                flagged: any_wrong,
            };
        }
        let first = results[0];
        let unanimous = results.iter().all(|&r| r == first);
        if unanimous {
            return Verdict {
                accepted: Some(first),
                flagged: false,
            };
        }
        match self.policy {
            VerificationPolicy::Unanimous => Verdict {
                accepted: None,
                flagged: true,
            },
            VerificationPolicy::Majority => {
                // Plurality vote over at most a few dozen values: the
                // quadratic scan beats a hash map at these sizes.
                let mut best: Option<(ResultValue, usize)> = None;
                let mut tie = false;
                for (i, &candidate) in results.iter().enumerate() {
                    if results[..i].contains(&candidate) {
                        continue; // counted already
                    }
                    let count = results.iter().filter(|&&r| r == candidate).count();
                    match best {
                        Some((_, c)) if count == c => tie = true,
                        Some((_, c)) if count > c => {
                            best = Some((candidate, count));
                            tie = false;
                        }
                        None => best = Some((candidate, count)),
                        _ => {}
                    }
                }
                Verdict {
                    accepted: if tie { None } else { best.map(|(v, _)| v) },
                    flagged: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{colluded_wrong_result, TaskId};

    fn task(precomputed: bool) -> TaskSpec {
        TaskSpec {
            id: TaskId(42),
            multiplicity: 3,
            precomputed,
        }
    }

    #[test]
    fn unanimous_agreement_accepts() {
        let s = Supervisor::new(VerificationPolicy::Unanimous);
        let r = correct_result(TaskId(42));
        let v = s.verify(&task(false), &[r, r, r]);
        assert_eq!(v.accepted, Some(r));
        assert!(!v.flagged);
    }

    #[test]
    fn unanimous_collusion_is_invisible_without_honest_copy() {
        // The core threat: all copies adversary-held, same wrong value.
        let s = Supervisor::new(VerificationPolicy::Unanimous);
        let w = colluded_wrong_result(TaskId(42));
        let v = s.verify(&task(false), &[w, w, w]);
        assert!(!v.flagged, "collusion across all copies is undetectable");
        assert_eq!(v.accepted, Some(w), "and the wrong result is accepted");
    }

    #[test]
    fn mismatch_flags_under_unanimous() {
        let s = Supervisor::new(VerificationPolicy::Unanimous);
        let r = correct_result(TaskId(42));
        let w = colluded_wrong_result(TaskId(42));
        let v = s.verify(&task(false), &[r, w, r]);
        assert!(v.flagged);
        assert_eq!(v.accepted, None);
    }

    #[test]
    fn majority_accepts_plurality_but_still_flags() {
        let s = Supervisor::new(VerificationPolicy::Majority);
        let r = correct_result(TaskId(42));
        let w = colluded_wrong_result(TaskId(42));
        let v = s.verify(&task(false), &[w, w, r]);
        assert!(v.flagged);
        assert_eq!(v.accepted, Some(w), "colluding majority wins the vote");
        let v2 = s.verify(&task(false), &[r, w, r]);
        assert_eq!(v2.accepted, Some(r));
    }

    #[test]
    fn majority_tie_accepts_nothing() {
        let s = Supervisor::new(VerificationPolicy::Majority);
        let r = correct_result(TaskId(42));
        let w = colluded_wrong_result(TaskId(42));
        let v = s.verify(
            &TaskSpec {
                id: TaskId(42),
                multiplicity: 2,
                precomputed: false,
            },
            &[r, w],
        );
        assert!(v.flagged);
        assert_eq!(v.accepted, None);
    }

    #[test]
    fn precomputed_tasks_always_catch_wrong_results() {
        for policy in [VerificationPolicy::Unanimous, VerificationPolicy::Majority] {
            let s = Supervisor::new(policy);
            let w = colluded_wrong_result(TaskId(42));
            // Even unanimous wrong answers are caught on a ringer.
            let v = s.verify(&task(true), &[w, w, w]);
            assert!(v.flagged, "ringer must catch unanimous collusion");
            assert_eq!(v.accepted, Some(correct_result(TaskId(42))));
            // And correct answers pass.
            let r = correct_result(TaskId(42));
            let v2 = s.verify(&task(true), &[r, r, r]);
            assert!(!v2.flagged);
        }
    }

    #[test]
    #[should_panic(expected = "no results")]
    fn empty_results_panic() {
        Supervisor::new(VerificationPolicy::Unanimous).verify(&task(false), &[]);
    }
}
