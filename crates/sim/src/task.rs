//! Tasks and results.
//!
//! A simulated task's "computation" is a keyed 64-bit mix of its id: cheap,
//! deterministic, and collision-free enough that any wrong result disagrees
//! with the correct one.  Adversaries return a *colluded* wrong value —
//! identical across all copies they hold, per the paper's cheating model.

use redundancy_core::{PartitionKind, RealizedPlan};

/// Identifier of a task within one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// A computed result value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultValue(pub u64);

/// The correct result of a task: a SplitMix64-style finalizer of the id.
pub fn correct_result(task: TaskId) -> ResultValue {
    let mut z = task.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ResultValue(z ^ (z >> 31))
}

/// The colluding adversary's agreed-upon wrong result for a task.
///
/// Distinct from the correct result by construction.
pub fn colluded_wrong_result(task: TaskId) -> ResultValue {
    let ResultValue(c) = correct_result(task);
    ResultValue(c ^ 0xDEAD_BEEF_CAFE_F00D)
}

/// An honestly-faulty result (non-malicious error), parameterized so
/// different faulty hosts disagree with each other too.
pub fn faulty_result(task: TaskId, salt: u64) -> ResultValue {
    let ResultValue(c) = correct_result(task);
    ResultValue(
        c.wrapping_add(0x1000_0000_0000_0001)
            .rotate_left((salt % 63) as u32 + 1),
    )
}

/// Static description of one task in a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// The task's id.
    pub id: TaskId,
    /// Number of copies handed out.
    pub multiplicity: u32,
    /// True if the supervisor knows the answer in advance (ringer or
    /// verified partition) — cheating on it is always caught.
    pub precomputed: bool,
}

/// Expand a [`RealizedPlan`] into concrete task specs.
///
/// Task ids are assigned contiguously in partition order, so the expansion
/// is deterministic and `specs.len()` equals ordinary tasks + ringers.
pub fn expand_plan(plan: &RealizedPlan) -> Vec<TaskSpec> {
    let mut specs = Vec::with_capacity((plan.n_tasks() + plan.ringer_tasks()) as usize);
    let mut next_id = 0u64;
    for p in plan.partitions() {
        let precomputed = matches!(p.kind, PartitionKind::Ringer | PartitionKind::Verified);
        for _ in 0..p.tasks {
            specs.push(TaskSpec {
                id: TaskId(next_id),
                multiplicity: p.multiplicity as u32,
                precomputed,
            });
            next_id += 1;
        }
    }
    specs
}

/// A maximal run of consecutive [`TaskSpec`]s sharing the same shape
/// (multiplicity and precomputed flag).
///
/// Because [`expand_plan`] emits tasks in partition order with contiguous
/// ids, a campaign of hundreds of thousands of tasks collapses into a
/// handful of groups (Balanced: head, tail, ringers) — the unit over which
/// the batched engine hoists sampler preparation and per-shape constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecGroup {
    /// Id of the first task in the run.
    pub first_id: TaskId,
    /// Number of consecutive tasks in the run.
    pub count: u64,
    /// Copies handed out per task in this run.
    pub multiplicity: u32,
    /// Whether the supervisor knows these answers in advance.
    pub precomputed: bool,
}

/// Group a spec slice into maximal runs of identical shape, allocation-free.
///
/// The concatenation of the yielded groups reproduces `specs` exactly, in
/// order; ids inside a group are contiguous from `first_id`.
pub fn grouped_specs(specs: &[TaskSpec]) -> impl Iterator<Item = SpecGroup> + '_ {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        let head = specs.get(start)?;
        let mut end = start + 1;
        while specs.get(end).is_some_and(|s| {
            s.multiplicity == head.multiplicity
                && s.precomputed == head.precomputed
                && s.id.0 == head.id.0 + (end - start) as u64
        }) {
            end += 1;
        }
        let group = SpecGroup {
            first_id: head.id,
            count: (end - start) as u64,
            multiplicity: head.multiplicity,
            precomputed: head.precomputed,
        };
        start = end;
        Some(group)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_result_is_deterministic_and_spread() {
        assert_eq!(correct_result(TaskId(1)), correct_result(TaskId(1)));
        assert_ne!(correct_result(TaskId(1)), correct_result(TaskId(2)));
        let distinct: std::collections::HashSet<_> =
            (0..10_000).map(|i| correct_result(TaskId(i))).collect();
        assert_eq!(distinct.len(), 10_000);
    }

    #[test]
    fn wrong_results_disagree_with_correct() {
        for i in 0..1000 {
            let t = TaskId(i);
            assert_ne!(colluded_wrong_result(t), correct_result(t));
            assert_ne!(faulty_result(t, i), correct_result(t));
        }
    }

    #[test]
    fn faulty_results_vary_with_salt() {
        let t = TaskId(7);
        assert_ne!(faulty_result(t, 1), faulty_result(t, 2));
    }

    #[test]
    fn expand_plan_counts_and_flags() {
        let plan = RealizedPlan::balanced(10_000, 0.75).unwrap();
        let specs = expand_plan(&plan);
        assert_eq!(specs.len() as u64, plan.n_tasks() + plan.ringer_tasks());
        let precomputed = specs.iter().filter(|s| s.precomputed).count() as u64;
        assert_eq!(precomputed, plan.ringer_tasks());
        // Ids contiguous.
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id, TaskId(i as u64));
        }
        // Total assignments match the plan.
        let total: u64 = specs.iter().map(|s| s.multiplicity as u64).sum();
        assert_eq!(total, plan.total_assignments());
    }

    #[test]
    fn expand_simple_plan() {
        let plan = RealizedPlan::k_fold(100, 3, 0.5).unwrap();
        let specs = expand_plan(&plan);
        assert_eq!(specs.len(), 100);
        assert!(specs.iter().all(|s| s.multiplicity == 3 && !s.precomputed));
    }

    /// Re-expand groups into specs to check the partition is exact.
    fn flatten(groups: impl Iterator<Item = SpecGroup>) -> Vec<TaskSpec> {
        groups
            .flat_map(|g| {
                (0..g.count).map(move |i| TaskSpec {
                    id: TaskId(g.first_id.0 + i),
                    multiplicity: g.multiplicity,
                    precomputed: g.precomputed,
                })
            })
            .collect()
    }

    #[test]
    fn grouped_specs_partitions_expanded_plans_exactly() {
        for plan in [
            RealizedPlan::balanced(10_000, 0.75).unwrap(),
            RealizedPlan::k_fold(100, 3, 0.5).unwrap(),
        ] {
            let specs = expand_plan(&plan);
            let groups: Vec<SpecGroup> = grouped_specs(&specs).collect();
            assert_eq!(flatten(groups.iter().copied()), specs);
            // Maximality: adjacent groups differ in shape.
            for w in groups.windows(2) {
                assert!(
                    w[0].multiplicity != w[1].multiplicity || w[0].precomputed != w[1].precomputed
                );
            }
            // A big Balanced plan collapses to one group per partition —
            // a few dozen at most, independent of task count.
            assert!(
                groups.len() <= 32,
                "{} groups for {} tasks",
                groups.len(),
                specs.len()
            );
        }
    }

    #[test]
    fn grouped_specs_handles_empty_and_breaks_on_id_gaps() {
        assert_eq!(grouped_specs(&[]).count(), 0);
        // Same shape but discontiguous ids must not merge: the engine
        // reconstructs ids as first_id + offset.
        let specs = [
            TaskSpec {
                id: TaskId(0),
                multiplicity: 3,
                precomputed: false,
            },
            TaskSpec {
                id: TaskId(5),
                multiplicity: 3,
                precomputed: false,
            },
        ];
        let groups: Vec<SpecGroup> = grouped_specs(&specs).collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(flatten(groups.into_iter()), specs);
    }
}
