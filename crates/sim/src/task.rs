//! Tasks and results.
//!
//! A simulated task's "computation" is a keyed 64-bit mix of its id: cheap,
//! deterministic, and collision-free enough that any wrong result disagrees
//! with the correct one.  Adversaries return a *colluded* wrong value —
//! identical across all copies they hold, per the paper's cheating model.

use redundancy_core::{PartitionKind, RealizedPlan};

/// Identifier of a task within one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// A computed result value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultValue(pub u64);

/// The correct result of a task: a SplitMix64-style finalizer of the id.
pub fn correct_result(task: TaskId) -> ResultValue {
    let mut z = task.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ResultValue(z ^ (z >> 31))
}

/// The colluding adversary's agreed-upon wrong result for a task.
///
/// Distinct from the correct result by construction.
pub fn colluded_wrong_result(task: TaskId) -> ResultValue {
    let ResultValue(c) = correct_result(task);
    ResultValue(c ^ 0xDEAD_BEEF_CAFE_F00D)
}

/// An honestly-faulty result (non-malicious error), parameterized so
/// different faulty hosts disagree with each other too.
pub fn faulty_result(task: TaskId, salt: u64) -> ResultValue {
    let ResultValue(c) = correct_result(task);
    ResultValue(
        c.wrapping_add(0x1000_0000_0000_0001)
            .rotate_left((salt % 63) as u32 + 1),
    )
}

/// Static description of one task in a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// The task's id.
    pub id: TaskId,
    /// Number of copies handed out.
    pub multiplicity: u32,
    /// True if the supervisor knows the answer in advance (ringer or
    /// verified partition) — cheating on it is always caught.
    pub precomputed: bool,
}

/// Expand a [`RealizedPlan`] into concrete task specs.
///
/// Task ids are assigned contiguously in partition order, so the expansion
/// is deterministic and `specs.len()` equals ordinary tasks + ringers.
pub fn expand_plan(plan: &RealizedPlan) -> Vec<TaskSpec> {
    let mut specs = Vec::with_capacity((plan.n_tasks() + plan.ringer_tasks()) as usize);
    let mut next_id = 0u64;
    for p in plan.partitions() {
        let precomputed = matches!(p.kind, PartitionKind::Ringer | PartitionKind::Verified);
        for _ in 0..p.tasks {
            specs.push(TaskSpec {
                id: TaskId(next_id),
                multiplicity: p.multiplicity as u32,
                precomputed,
            });
            next_id += 1;
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_result_is_deterministic_and_spread() {
        assert_eq!(correct_result(TaskId(1)), correct_result(TaskId(1)));
        assert_ne!(correct_result(TaskId(1)), correct_result(TaskId(2)));
        let distinct: std::collections::HashSet<_> =
            (0..10_000).map(|i| correct_result(TaskId(i))).collect();
        assert_eq!(distinct.len(), 10_000);
    }

    #[test]
    fn wrong_results_disagree_with_correct() {
        for i in 0..1000 {
            let t = TaskId(i);
            assert_ne!(colluded_wrong_result(t), correct_result(t));
            assert_ne!(faulty_result(t, i), correct_result(t));
        }
    }

    #[test]
    fn faulty_results_vary_with_salt() {
        let t = TaskId(7);
        assert_ne!(faulty_result(t, 1), faulty_result(t, 2));
    }

    #[test]
    fn expand_plan_counts_and_flags() {
        let plan = RealizedPlan::balanced(10_000, 0.75).unwrap();
        let specs = expand_plan(&plan);
        assert_eq!(specs.len() as u64, plan.n_tasks() + plan.ringer_tasks());
        let precomputed = specs.iter().filter(|s| s.precomputed).count() as u64;
        assert_eq!(precomputed, plan.ringer_tasks());
        // Ids contiguous.
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id, TaskId(i as u64));
        }
        // Total assignments match the plan.
        let total: u64 = specs.iter().map(|s| s.multiplicity as u64).sum();
        assert_eq!(total, plan.total_assignments());
    }

    #[test]
    fn expand_simple_plan() {
        let plan = RealizedPlan::k_fold(100, 3, 0.5).unwrap();
        let specs = expand_plan(&plan);
        assert_eq!(specs.len(), 100);
        assert!(specs.iter().all(|s| s.multiplicity == 3 && !s.precomputed));
    }
}
