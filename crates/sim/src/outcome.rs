//! Per-campaign bookkeeping: what the adversary tried, what the supervisor
//! caught.

use redundancy_stats::Histogram;

/// Tallies from one or more simulated campaigns.
///
/// Per-`k` vectors are indexed by the number of copies the adversary held
/// of the attacked task (index 0 unused).  `merge` is commutative and
/// associative so outcomes fold cleanly across Monte-Carlo threads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignOutcome {
    /// Campaigns aggregated into this outcome.
    pub campaigns: u64,
    /// Ordinary + ringer tasks processed.
    pub tasks: u64,
    /// Assignments handed out.
    pub assignments: u64,
    /// `cheats_attempted[k]`: tasks attacked while holding `k` copies.
    pub cheats_attempted: Vec<u64>,
    /// `cheats_detected[k]`: of those, how many the supervisor flagged.
    pub cheats_detected: Vec<u64>,
    /// Cheated tasks whose wrong result was *accepted* (recorded) by the
    /// supervisor — the damage metric.
    pub wrong_accepted: u64,
    /// Tasks flagged without any cheating (honest faults) — the
    /// false-positive metric.
    pub false_flags: u64,
    /// Fault injection: attempts that dropped outright.
    pub drops: u64,
    /// Fault injection: attempts discarded after exceeding the timeout.
    pub timeouts: u64,
    /// Fault injection: re-issued assignments (supervisor retries).
    pub retries: u64,
    /// Fault injection: returned copies whose value was corrupted.
    pub corrupted_returns: u64,
    /// Assignments abandoned after exhausting their retry budget.
    pub lost_assignments: u64,
    /// Tasks for which *no* copy came back — nothing to compare at all.
    pub unresolved_tasks: u64,
    /// Total abstract ticks assignments spent from first issue to arrival
    /// (or abandonment).
    pub wait_ticks: u64,
    /// Distribution of per-task multiplicity deficits (`assigned − returned`,
    /// recorded only when positive): how far fault pressure degraded the
    /// comparisons the supervisor actually got to make.
    pub degraded: Histogram,
    /// Distribution of the adversary's holdings per task (diagnostic).
    pub holdings: Histogram,
}

impl CampaignOutcome {
    /// Record one attacked task: the adversary held `k` copies and the
    /// supervisor did (or did not) flag it.
    pub fn record_cheat(&mut self, k: usize, detected: bool) {
        if k >= self.cheats_attempted.len() {
            self.cheats_attempted.resize(k + 1, 0);
            self.cheats_detected.resize(k + 1, 0);
        }
        self.cheats_attempted[k] += 1;
        if detected {
            self.cheats_detected[k] += 1;
        }
    }

    /// Record `weight` attacked tasks at holdings `k`, all sharing one
    /// verdict — the batched kernel's per-bin fold of [`record_cheat`].
    ///
    /// [`record_cheat`]: CampaignOutcome::record_cheat
    pub fn record_cheat_n(&mut self, k: usize, detected: bool, weight: u64) {
        if k >= self.cheats_attempted.len() {
            self.cheats_attempted.resize(k + 1, 0);
            self.cheats_detected.resize(k + 1, 0);
        }
        self.cheats_attempted[k] += weight;
        if detected {
            self.cheats_detected[k] += weight;
        }
    }

    /// Total attacks across all tuple sizes.
    pub fn total_attempted(&self) -> u64 {
        self.cheats_attempted.iter().sum()
    }

    /// Total detected attacks.
    pub fn total_detected(&self) -> u64 {
        self.cheats_detected.iter().sum()
    }

    /// Empirical detection rate at tuple size `k`, if any attack occurred.
    pub fn detection_rate(&self, k: usize) -> Option<f64> {
        let attempted = *self.cheats_attempted.get(k)?;
        if attempted == 0 {
            return None;
        }
        Some(self.cheats_detected[k] as f64 / attempted as f64)
    }

    /// Overall empirical detection rate.
    pub fn overall_detection_rate(&self) -> Option<f64> {
        let a = self.total_attempted();
        if a == 0 {
            None
        } else {
            Some(self.total_detected() as f64 / a as f64)
        }
    }

    /// Fold another outcome into this one.
    pub fn merge(&mut self, other: &CampaignOutcome) {
        self.campaigns += other.campaigns;
        self.tasks += other.tasks;
        self.assignments += other.assignments;
        if other.cheats_attempted.len() > self.cheats_attempted.len() {
            self.cheats_attempted
                .resize(other.cheats_attempted.len(), 0);
            self.cheats_detected.resize(other.cheats_detected.len(), 0);
        }
        for (a, &b) in self
            .cheats_attempted
            .iter_mut()
            .zip(&other.cheats_attempted)
        {
            *a += b;
        }
        for (a, &b) in self.cheats_detected.iter_mut().zip(&other.cheats_detected) {
            *a += b;
        }
        self.wrong_accepted += other.wrong_accepted;
        self.false_flags += other.false_flags;
        self.drops += other.drops;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.corrupted_returns += other.corrupted_returns;
        self.lost_assignments += other.lost_assignments;
        self.unresolved_tasks += other.unresolved_tasks;
        self.wait_ticks += other.wait_ticks;
        self.degraded.merge(&other.degraded);
        self.holdings.merge(&other.holdings);
    }

    /// Fraction of issued assignments that eventually returned.
    pub fn delivery_rate(&self) -> Option<f64> {
        if self.assignments == 0 {
            return None;
        }
        let delivered = self.assignments - self.lost_assignments;
        Some(delivered as f64 / self.assignments as f64)
    }

    /// Average effective multiplicity per task (returned copies / tasks),
    /// against the planned `assignments / tasks`.
    pub fn effective_multiplicity(&self) -> Option<f64> {
        if self.tasks == 0 {
            return None;
        }
        let delivered = self.assignments - self.lost_assignments;
        Some(delivered as f64 / self.tasks as f64)
    }

    /// Mean ticks an assignment waited from first issue to arrival or
    /// abandonment (0 when the fault layer is inactive).
    pub fn mean_wait_ticks(&self) -> Option<f64> {
        if self.assignments == 0 {
            return None;
        }
        Some(self.wait_ticks as f64 / self.assignments as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut o = CampaignOutcome::default();
        o.record_cheat(2, true);
        o.record_cheat(2, false);
        o.record_cheat(5, true);
        assert_eq!(o.total_attempted(), 3);
        assert_eq!(o.total_detected(), 2);
        assert_eq!(o.detection_rate(2), Some(0.5));
        assert_eq!(o.detection_rate(5), Some(1.0));
        assert_eq!(o.detection_rate(1), None);
        assert_eq!(o.detection_rate(99), None);
        assert!((o.overall_detection_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_outcome_rates() {
        let o = CampaignOutcome::default();
        assert_eq!(o.overall_detection_rate(), None);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = CampaignOutcome {
            campaigns: 1,
            ..CampaignOutcome::default()
        };
        a.record_cheat(1, true);
        let mut b = CampaignOutcome {
            campaigns: 2,
            wrong_accepted: 4,
            ..CampaignOutcome::default()
        };
        b.record_cheat(3, false);
        b.drops = 7;
        b.retries = 2;
        b.degraded.record(1);
        a.merge(&b);
        assert_eq!(a.campaigns, 3);
        assert_eq!(a.cheats_attempted, vec![0, 1, 0, 1]);
        assert_eq!(a.cheats_detected, vec![0, 1, 0, 0]);
        assert_eq!(a.wrong_accepted, 4);
        assert_eq!(a.drops, 7);
        assert_eq!(a.retries, 2);
        assert_eq!(a.degraded.count(1), 1);
    }

    #[test]
    fn fault_metrics() {
        let mut o = CampaignOutcome {
            tasks: 10,
            assignments: 40,
            lost_assignments: 4,
            wait_ticks: 80,
            ..CampaignOutcome::default()
        };
        assert_eq!(o.delivery_rate(), Some(0.9));
        assert_eq!(o.effective_multiplicity(), Some(3.6));
        assert_eq!(o.mean_wait_ticks(), Some(2.0));
        o.assignments = 0;
        o.tasks = 0;
        assert_eq!(o.delivery_rate(), None);
        assert_eq!(o.effective_multiplicity(), None);
        assert_eq!(o.mean_wait_ticks(), None);
    }
}
