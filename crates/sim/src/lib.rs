#![warn(missing_docs)]

//! # redundancy-sim — a volunteer distributed-computing platform simulator
//!
//! The paper evaluates its distribution schemes analytically; this crate is
//! the synthetic platform that *exercises* them end-to-end and confirms
//! every closed form empirically.  It models exactly the world of the
//! paper's Section 2:
//!
//! * a **supervisor** creates tasks according to a deployable
//!   [`RealizedPlan`](redundancy_core::RealizedPlan) (multiplicities, tail
//!   partition, ringers), hands assignments to participants, collects
//!   results, and compares copies (flagging any disagreement; ringer and
//!   verified tasks are checked against precomputed answers);
//! * a pool of **participants** executes assignments; honest ones return
//!   the correct result (optionally with a non-malicious error rate — the
//!   fault model of the platforms the paper cites);
//! * a **global colluding adversary** controls a share of the platform —
//!   either a fixed proportion of assignments, or a set of Sybil accounts
//!   in a participant pool — sees how many copies of each task she holds,
//!   and cheats according to a pluggable [`CheatStrategy`]: identical wrong
//!   results on every copy of the attacked task;
//! * the supervisor's verdicts are tallied per tuple size, yielding
//!   empirical detection probabilities `P̂_{k,p}` with Wilson intervals,
//!   directly comparable to the paper's `P_{k,p}` formulas.
//!
//! [`engine::run_campaign`] materializes participants, result values, and
//! the full compare-based verification path (what a real deployment does);
//! the Monte-Carlo driver in [`experiment`] runs it under deterministic
//! seeds with multi-threaded chunking.  [`two_phase`] additionally
//! implements Appendix A's two-phase simple-redundancy protocol and its
//! `p²N` collusion bound.
//!
//! The [`faults`] / [`retry`] modules extend the platform beyond the
//! paper's reliable-delivery assumption: assignments can drop, straggle
//! past a timeout, or return corrupted, and the supervisor re-issues
//! failures with capped exponential backoff.  All latency is abstract
//! ticks and every draw is rate-gated, so a zero-fault model reproduces
//! the baseline engine bit for bit.
//!
//! The [`churn`] / [`events`] modules lift the remaining static-pool
//! assumption: a discrete-event worker population (deterministic
//! `(tick, seq)`-ordered queue) where hosts enter, leave, and fail
//! mid-task, copies are reassigned when their holder departs, and census
//! checkpoints run the batched kernel over the degraded multiset to track
//! achieved `P_k` and realized redundancy over time.  A zero-churn model
//! likewise degenerates to the batched kernel bit for bit.
//!
//! The [`serve`] module finally runs the scheme *online*: a long-lived
//! supervisor with a sharded in-memory assignment store deals copies on
//! demand in the batch kernel's exact RNG order, tracks them in flight
//! with tick-based timeouts, judges returns incrementally, and speaks a
//! length-prefixed request/response protocol over any byte stream.  A
//! drained serve session reproduces the batched kernel bit for bit.

pub mod adversary;
pub mod churn;
pub mod engine;
pub mod events;
pub mod experiment;
pub mod faults;
pub mod outcome;
pub mod participant;
pub mod retry;
pub mod rounds;
pub mod serve;
pub mod supervisor;
pub mod survival;
pub mod task;
pub mod two_phase;

pub use adversary::{AdversaryModel, CheatStrategy};
pub use churn::{
    churn_experiment, churn_soak, run_campaign_with_churn_scratch, CensusSample, ChurnEstimate,
    ChurnModel, ChurnOutcome, SoakReport,
};
pub use engine::{
    run_campaign, run_campaign_with_faults, run_campaign_with_faults_scratch,
    run_campaign_with_scratch, CampaignAccumulator, CampaignConfig, CampaignScratch,
};
pub use events::EventQueue;
pub use experiment::{
    detection_experiment, faulty_detection_experiment, sampled_detection_experiment,
    DetectionEstimate, ExperimentConfig,
};
pub use faults::FaultModel;
pub use outcome::CampaignOutcome;
pub use participant::ParticipantPool;
pub use retry::{backoff_ticks, deliver_assignment, Delivery};
pub use rounds::{
    run_platform, run_platform_with_faults, PlatformConfig, PlatformHistory, RoundReport,
};
pub use serve::{
    assert_drain_equivalent, drain_equivalence, drain_session, parse_journal, replay, replay_with,
    serve_connection, serve_experiment, serve_readiness_loop, workload_fingerprint,
    AssignmentStore, ConcurrentStore, DrainState, JournalError, JournalSink, JournalWriter,
    JournaledStore, LoopOptions, ParsedJournal, Record, ReplayOptions, Replayed, ServeConfig,
    ServeSession, ServeStats, SessionHeader, SharedBuf, StoreEnum, StreamMode, SyncPolicy,
    WorkStore,
};
pub use supervisor::Supervisor;
pub use survival::{survival_experiment, survival_experiment_with, SurvivalOutcome};
pub use task::{correct_result, grouped_specs, ResultValue, SpecGroup, TaskId, TaskSpec};
pub use two_phase::{two_phase_trial, TwoPhaseConfig, TwoPhaseOutcome};
