//! Supervisor-side reassignment: deliver one assignment under a
//! [`FaultModel`], re-issuing dropped or timed-out copies with capped
//! exponential backoff.
//!
//! The delivery loop is the deterministic heart of the fault subsystem.
//! Draws happen in a fixed order per attempt — drop, straggler, straggler
//! delay, corruption — and each draw is gated behind its rate being
//! nonzero, so configurations agree on their common random-number prefix:
//! a delivery replayed with a *larger* retry budget reproduces the smaller
//! budget's attempts exactly and only then appends new ones.  That is what
//! makes retry monotone — it can only add returned copies, never lose one.

use crate::faults::FaultModel;
use redundancy_stats::samplers::sample_geometric;
use redundancy_stats::DeterministicRng;

/// What happened to one assignment after the full retry loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Delivery {
    /// The copy eventually arrived within some attempt's timeout window.
    pub returned: bool,
    /// The returned value was corrupted in transit (meaningless when
    /// `returned` is false).
    pub corrupted: bool,
    /// Attempts that dropped outright.
    pub drops: u64,
    /// Attempts that returned too late and were discarded.
    pub timeouts: u64,
    /// Re-issues performed (= failed attempts that were retried).
    pub retries: u64,
    /// Ticks from first issue until the copy arrived, or until the
    /// supervisor abandoned it.
    pub wait_ticks: u64,
}

/// Backoff before re-issue number `attempt` (0-based): `base · 2^attempt`,
/// saturating, capped at `backoff_cap`.
pub fn backoff_ticks(faults: &FaultModel, attempt: u32) -> u64 {
    let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
    faults
        .backoff_base
        .saturating_mul(factor)
        .min(faults.backoff_cap)
}

/// Simulate delivery of one assignment under `faults`.
///
/// Per attempt, in fixed draw order:
/// 1. drop? (`drop_rate`) — if so, the supervisor waits out the timeout;
/// 2. otherwise compute for 1 tick, plus a geometric straggler delay with
///    mean `straggler_mean_delay` with probability `straggler_rate`;
/// 3. an in-time arrival is final; it is corrupted with `corrupt_rate`;
/// 4. a failed attempt is re-issued after [`backoff_ticks`], up to
///    `max_retries` times.
pub fn deliver_assignment(faults: &FaultModel, rng: &mut DeterministicRng) -> Delivery {
    debug_assert!(faults.validate().is_ok(), "invalid fault model");
    let mut delivery = Delivery::default();
    let mut clock: u64 = 0;
    for attempt in 0..=faults.max_retries {
        let dropped = faults.drop_rate > 0.0 && rng.bernoulli(faults.drop_rate);
        if dropped {
            delivery.drops += 1;
            clock += faults.timeout;
        } else {
            let mut latency: u64 = 1;
            if faults.straggler_rate > 0.0 && rng.bernoulli(faults.straggler_rate) {
                let q = (1.0 / faults.straggler_mean_delay).clamp(f64::MIN_POSITIVE, 1.0);
                latency += sample_geometric(rng, q);
            }
            if latency <= faults.timeout {
                delivery.returned = true;
                delivery.corrupted =
                    faults.corrupt_rate > 0.0 && rng.bernoulli(faults.corrupt_rate);
                delivery.wait_ticks = clock + latency;
                return delivery;
            }
            delivery.timeouts += 1;
            clock += faults.timeout;
        }
        if attempt < faults.max_retries {
            delivery.retries += 1;
            clock += backoff_ticks(faults, attempt);
        }
    }
    delivery.wait_ticks = clock;
    delivery
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_delivery_is_immediate_and_drawless() {
        let faults = FaultModel::none();
        let mut rng = DeterministicRng::new(1);
        let before = rng.clone();
        let d = deliver_assignment(&faults, &mut rng);
        assert!(d.returned);
        assert!(!d.corrupted);
        assert_eq!(d.wait_ticks, 1);
        assert_eq!((d.drops, d.timeouts, d.retries), (0, 0, 0));
        assert_eq!(rng, before, "inactive model must not consume randomness");
    }

    #[test]
    fn certain_drop_exhausts_retries() {
        let faults = FaultModel::with_drop_rate(1.0);
        let mut rng = DeterministicRng::new(2);
        let d = deliver_assignment(&faults, &mut rng);
        assert!(!d.returned);
        assert_eq!(d.drops, faults.max_retries as u64 + 1);
        assert_eq!(d.retries, faults.max_retries as u64);
        // 4 timeouts waited + backoffs 2, 4, 8.
        assert_eq!(d.wait_ticks, 4 * faults.timeout + 2 + 4 + 8);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let faults = FaultModel {
            backoff_base: 3,
            backoff_cap: 20,
            ..FaultModel::none()
        };
        assert_eq!(backoff_ticks(&faults, 0), 3);
        assert_eq!(backoff_ticks(&faults, 1), 6);
        assert_eq!(backoff_ticks(&faults, 2), 12);
        assert_eq!(backoff_ticks(&faults, 3), 20);
        assert_eq!(backoff_ticks(&faults, 40), 20);
        assert_eq!(backoff_ticks(&faults, 90), 20, "shift must saturate");
    }

    #[test]
    fn retry_recovers_most_drops() {
        // Per-attempt drop 0.5, 3 retries: loss probability 0.5⁴ = 6.25%.
        let faults = FaultModel::with_drop_rate(0.5);
        let mut rng = DeterministicRng::new(3);
        let trials = 20_000;
        let lost = (0..trials)
            .filter(|_| !deliver_assignment(&faults, &mut rng).returned)
            .count();
        let rate = lost as f64 / trials as f64;
        assert!((rate - 0.0625).abs() < 0.01, "loss rate {rate}");
    }

    #[test]
    fn stragglers_past_timeout_are_retried() {
        // Every copy straggles with mean delay far past the timeout: most
        // attempts time out, some land inside the window.
        let faults = FaultModel {
            straggler_rate: 1.0,
            straggler_mean_delay: 40.0,
            timeout: 8,
            ..FaultModel::none()
        };
        let mut rng = DeterministicRng::new(4);
        let mut timeouts = 0u64;
        let mut returned = 0u64;
        for _ in 0..5_000 {
            let d = deliver_assignment(&faults, &mut rng);
            timeouts += d.timeouts;
            returned += d.returned as u64;
        }
        assert!(
            timeouts > 5_000,
            "mean delay 5× timeout must cause timeouts"
        );
        assert!(returned > 100, "some stragglers still land in the window");
    }

    #[test]
    fn retry_is_monotone_in_budget() {
        // Same RNG state: if the small budget delivers, the large budget
        // delivers identically (the draw prefix is shared).
        let small = FaultModel {
            max_retries: 0,
            ..FaultModel::with_drop_rate(0.4)
        };
        let large = FaultModel {
            max_retries: 5,
            ..FaultModel::with_drop_rate(0.4)
        };
        let mut rng = DeterministicRng::new(5);
        for _ in 0..5_000 {
            let mut a = rng.clone();
            let mut b = rng.clone();
            let ds = deliver_assignment(&small, &mut a);
            let dl = deliver_assignment(&large, &mut b);
            assert!(dl.returned >= ds.returned, "retry lost a delivery");
            if ds.returned {
                assert_eq!(ds, dl, "shared prefix must replay identically");
            }
            // Advance the outer stream independently of either run.
            rng.next_raw();
        }
    }

    #[test]
    fn delivery_is_deterministic() {
        let faults = FaultModel {
            drop_rate: 0.3,
            straggler_rate: 0.5,
            straggler_mean_delay: 6.0,
            corrupt_rate: 0.1,
            ..FaultModel::none()
        };
        let run = || {
            let mut rng = DeterministicRng::new(77);
            (0..1_000)
                .map(|_| deliver_assignment(&faults, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
