//! Participants: honest volunteers and adversary-controlled Sybil accounts.
//!
//! The paper's adversary "can obtain hundreds of user names, each of which
//! can be assigned thousands of tasks" — i.e. she holds some share of the
//! participant pool.  [`ParticipantPool`] models a pool of `total`
//! equal-throughput accounts of which the first `adversary` are hers;
//! assignments dealt uniformly at random then give her each copy with
//! probability ≈ `adversary/total`, connecting the Sybil picture to the
//! paper's proportion-`p` analysis.

/// Identifier of a participant account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParticipantId(pub u32);

/// A pool of volunteer accounts, a prefix of which is adversary-controlled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParticipantPool {
    total: u32,
    adversary: u32,
}

impl ParticipantPool {
    /// Create a pool of `total` accounts with `adversary` of them colluding.
    ///
    /// # Panics
    /// Panics if `total == 0` or `adversary > total`.
    pub fn new(total: u32, adversary: u32) -> Self {
        assert!(total > 0, "pool must have at least one participant");
        assert!(
            adversary <= total,
            "adversary accounts ({adversary}) exceed the pool ({total})"
        );
        ParticipantPool { total, adversary }
    }

    /// An all-honest pool.
    pub fn honest(total: u32) -> Self {
        ParticipantPool::new(total, 0)
    }

    /// Number of accounts.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of adversary-controlled accounts.
    pub fn adversary_accounts(&self) -> u32 {
        self.adversary
    }

    /// The adversary's share of the pool (her expected assignment share).
    pub fn adversary_proportion(&self) -> f64 {
        self.adversary as f64 / self.total as f64
    }

    /// Whether an account is adversary-controlled.
    pub fn is_adversary(&self, id: ParticipantId) -> bool {
        id.0 < self.adversary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_accounting() {
        let pool = ParticipantPool::new(1000, 100);
        assert_eq!(pool.total(), 1000);
        assert_eq!(pool.adversary_accounts(), 100);
        assert!((pool.adversary_proportion() - 0.1).abs() < 1e-12);
        assert!(pool.is_adversary(ParticipantId(0)));
        assert!(pool.is_adversary(ParticipantId(99)));
        assert!(!pool.is_adversary(ParticipantId(100)));
    }

    #[test]
    fn honest_pool() {
        let pool = ParticipantPool::honest(10);
        assert_eq!(pool.adversary_proportion(), 0.0);
        assert!(!pool.is_adversary(ParticipantId(0)));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_adversary_rejected() {
        ParticipantPool::new(10, 11);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        ParticipantPool::new(0, 0);
    }
}
