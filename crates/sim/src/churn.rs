//! Churn: a discrete-event worker-population engine over the campaign
//! kernel.
//!
//! The paper's detection guarantee (`P_k = ε`) assumes a static worker
//! pool, but the volunteer platforms it targets are defined by churn —
//! hosts enter, leave gracefully, and fail abruptly mid-task.  This module
//! simulates that population with a deterministic discrete-event loop
//! ([`EventQueue`], ordered by `(tick, seq)` so ties never depend on heap
//! internals), reassigns in-flight copies when their holder departs, and at
//! periodic census checkpoints runs the *batched campaign kernel* over the
//! degraded task multiset to measure the detection probability and realized
//! redundancy factor the supervisor actually achieves as the live
//! multiplicity distribution drifts from the ideal Balanced/S_m mix.
//!
//! All latency is abstract ticks, every draw goes through the campaign's
//! [`DeterministicRng`], and every draw is gated behind its rate being
//! nonzero.  The correctness spine: an inactive model
//! ([`ChurnModel::is_active`] false) delegates to
//! [`run_campaign_with_scratch`] and consumes no extra randomness, so the
//! zero-churn configuration is bit-identical — outcome counters *and* final
//! RNG state — to the existing batched kernel.  The proptests in
//! `crates/sim/tests/proptest_churn.rs` enforce this at 1, 2 and 4 worker
//! threads.

use crate::adversary::{AdversaryModel, CheatStrategy};
use crate::engine::{run_campaign_with_scratch, CampaignConfig, CampaignScratch};
use crate::events::EventQueue;
use crate::experiment::ExperimentConfig;
use crate::outcome::CampaignOutcome;
use crate::task::{expand_plan, TaskSpec};
use redundancy_core::RealizedPlan;
use redundancy_stats::parallel::{run_trials, TrialConfig};
use redundancy_stats::samplers::sample_geometric;
use redundancy_stats::{DeterministicRng, Proportion};

/// Population dynamics for one churn run, in abstract ticks.
///
/// Lifetimes and inter-arrival times are geometric (memoryless in discrete
/// time), so the whole run schedules one event per worker transition — the
/// engine is a true discrete-event simulation, not a per-tick scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Per-tick probability a new worker joins the pool (inter-arrival
    /// times are geometric with mean `1 / enter_rate` ticks; at most one
    /// arrival per tick).
    pub enter_rate: f64,
    /// Per-tick per-worker hazard of a *graceful* departure (lifetime
    /// geometric with mean `1 / leave_rate` ticks).  A departing worker
    /// hands its in-flight copies back to the supervisor, which reassigns
    /// each to a uniformly drawn live worker — every reassignment is one
    /// extra issued assignment, inflating the realized redundancy factor.
    pub leave_rate: f64,
    /// Per-tick per-worker hazard of an *abrupt* failure.  A failing
    /// worker's in-flight copies are simply lost: the affected tasks'
    /// effective multiplicity shrinks, degrading `P_k`.
    pub fail_rate: f64,
    /// Workers alive at tick 0.
    pub initial_workers: u64,
    /// Ticks simulated.
    pub horizon: u64,
    /// Ticks between census checkpoints.  Each checkpoint snapshots the
    /// population and runs one verification campaign over the degraded
    /// multiset (checkpoints at `interval, 2·interval, … ≤ horizon`).
    pub census_interval: u64,
}

impl ChurnModel {
    /// The churn-free model: a static pool, default geometry.
    ///
    /// Inactive by construction, so engines delegate to the churn-free
    /// batched kernel and consume no extra randomness.
    pub fn none() -> Self {
        ChurnModel {
            enter_rate: 0.0,
            leave_rate: 0.0,
            fail_rate: 0.0,
            initial_workers: 1_000,
            horizon: 8_000,
            census_interval: 2_000,
        }
    }

    /// A model with only graceful departures at per-tick hazard `rate`.
    pub fn with_leave_rate(rate: f64) -> Self {
        ChurnModel {
            leave_rate: rate,
            ..ChurnModel::none()
        }
    }

    /// A large-scale soak preset: `nodes` initial workers with arrivals
    /// and deaths balanced near one event per tick each, run for `horizon`
    /// ticks with eight census checkpoints.  Sized so a 100k-node pool
    /// over a few million ticks processes on the order of `2 · horizon`
    /// events.
    pub fn soak(nodes: u64, horizon: u64) -> Self {
        let n = nodes.max(1) as f64;
        ChurnModel {
            enter_rate: 0.9,
            leave_rate: 0.9 / n,
            fail_rate: 0.1 / n,
            initial_workers: nodes.max(1),
            horizon: horizon.max(8),
            census_interval: (horizon.max(8) / 8).max(1),
        }
    }

    /// True if any churn hazard can fire.  Inactive models must not
    /// perturb the churn-free engine's RNG stream.
    pub fn is_active(&self) -> bool {
        self.enter_rate > 0.0 || self.leave_rate > 0.0 || self.fail_rate > 0.0
    }

    /// Census checkpoints a run of this model produces.
    pub fn checkpoints(&self) -> u64 {
        self.horizon / self.census_interval
    }

    /// Validate all parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("enter rate", self.enter_rate),
            ("leave rate", self.leave_rate),
            ("fail rate", self.fail_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("{name} {rate} outside [0, 1]"));
            }
        }
        if self.initial_workers == 0 {
            return Err("initial worker population must be positive".into());
        }
        if self.horizon == 0 {
            return Err("horizon must be at least one tick".into());
        }
        if self.census_interval == 0 || self.census_interval > self.horizon {
            return Err(format!(
                "census interval {} outside [1, horizon {}]",
                self.census_interval, self.horizon
            ));
        }
        Ok(())
    }
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel::none()
    }
}

/// Aggregated population state at one census checkpoint.
///
/// Fields are *sums across trials* (`trials` of them), so samples from
/// independent runs merge commutatively; means are `field / trials`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CensusSample {
    /// Checkpoint tick (identical across trials of one model).
    pub tick: u64,
    /// Trials folded into this sample.
    pub trials: u64,
    /// Live workers at the checkpoint, summed over trials.
    pub live_workers: u64,
    /// In-flight task copies still held by live workers, summed.
    pub live_copies: u64,
    /// Assignments issued so far (initial plus reassignments), summed.
    pub issued_assignments: u64,
    /// Copies lost to failures or reassignment starvation so far, summed.
    pub lost_copies: u64,
    /// Tasks with zero surviving copies at the checkpoint, summed.
    pub starved_tasks: u64,
    /// Cheats attempted in this checkpoint's verification campaign.
    pub cheats_attempted: u64,
    /// Cheats detected in this checkpoint's verification campaign.
    pub cheats_detected: u64,
    /// Colluded wrong results accepted in this checkpoint's campaign.
    pub wrong_accepted: u64,
}

impl CensusSample {
    /// Fold another trial's sample for the same checkpoint into this one.
    pub fn merge(&mut self, other: &CensusSample) {
        debug_assert_eq!(self.tick, other.tick, "merging mismatched checkpoints");
        self.trials += other.trials;
        self.live_workers += other.live_workers;
        self.live_copies += other.live_copies;
        self.issued_assignments += other.issued_assignments;
        self.lost_copies += other.lost_copies;
        self.starved_tasks += other.starved_tasks;
        self.cheats_attempted += other.cheats_attempted;
        self.cheats_detected += other.cheats_detected;
        self.wrong_accepted += other.wrong_accepted;
    }

    /// Mean live workers per trial.
    pub fn mean_live_workers(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.live_workers as f64 / self.trials as f64
    }

    /// Empirical detection probability at this checkpoint.
    pub fn detection_rate(&self) -> Option<f64> {
        if self.cheats_attempted == 0 {
            return None;
        }
        Some(self.cheats_detected as f64 / self.cheats_attempted as f64)
    }

    /// Realized redundancy factor so far: issued assignments per task,
    /// averaged over trials (`tasks_per_trial` is the plan's task count
    /// including ringers).
    pub fn redundancy_factor(&self, tasks_per_trial: u64) -> f64 {
        let denom = self.trials.saturating_mul(tasks_per_trial);
        if denom == 0 {
            return 0.0;
        }
        self.issued_assignments as f64 / denom as f64
    }
}

/// Everything a churn run tallies: the folded verification outcome, the
/// census time series, and the population telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnOutcome {
    /// Folded outcome of every census verification campaign (one plain
    /// campaign when the model is inactive and the engine delegated).
    pub campaign: CampaignOutcome,
    /// Per-checkpoint population series, fixed length
    /// [`ChurnModel::checkpoints`] for active models; empty when the
    /// engine delegated to the churn-free kernel.
    pub census: Vec<CensusSample>,
    /// Active churn runs folded in (0 when every run delegated).
    pub trials: u64,
    /// Workers that joined after tick 0.
    pub arrivals: u64,
    /// Graceful departures processed.
    pub departures: u64,
    /// Abrupt failures processed.
    pub failures: u64,
    /// Copies handed to a new live holder after a departure.
    pub reassignments: u64,
    /// Copies lost (holder failed, or departed with no live worker left).
    pub lost_copies: u64,
    /// Assignments issued across all runs (initial plus reassignments).
    pub issued_assignments: u64,
    /// Discrete events processed (arrivals, departures, failures,
    /// censuses).
    pub events: u64,
}

impl ChurnOutcome {
    /// Fold another outcome into this one.  Census series merge
    /// elementwise (commutative and associative, so chunked Monte-Carlo
    /// folds are thread-count invariant); an empty series is the identity.
    pub fn merge(&mut self, other: &ChurnOutcome) {
        self.campaign.merge(&other.campaign);
        if self.census.is_empty() {
            self.census = other.census.clone();
        } else if !other.census.is_empty() {
            assert_eq!(
                self.census.len(),
                other.census.len(),
                "merging churn outcomes with different checkpoint counts"
            );
            for (mine, theirs) in self.census.iter_mut().zip(&other.census) {
                mine.merge(theirs);
            }
        }
        self.trials += other.trials;
        self.arrivals += other.arrivals;
        self.departures += other.departures;
        self.failures += other.failures;
        self.reassignments += other.reassignments;
        self.lost_copies += other.lost_copies;
        self.issued_assignments += other.issued_assignments;
        self.events += other.events;
    }

    /// FNV-1a fold of every counter — a cheap determinism fingerprint for
    /// the soak runs and the bench fixture (two same-seed runs must agree
    /// exactly).
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for v in [
            self.campaign.campaigns,
            self.campaign.tasks,
            self.campaign.assignments,
            self.campaign.total_attempted(),
            self.campaign.total_detected(),
            self.campaign.wrong_accepted,
            self.campaign.false_flags,
            self.campaign.unresolved_tasks,
            self.trials,
            self.arrivals,
            self.departures,
            self.failures,
            self.reassignments,
            self.lost_copies,
            self.issued_assignments,
            self.events,
        ] {
            fold(v);
        }
        for s in &self.census {
            for v in [
                s.tick,
                s.live_workers,
                s.live_copies,
                s.issued_assignments,
                s.lost_copies,
                s.starved_tasks,
                s.cheats_attempted,
                s.cheats_detected,
                s.wrong_accepted,
            ] {
                fold(v);
            }
        }
        h
    }
}

/// Discrete events of one churn run.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Checkpoint number (0-based) — scheduled up front so a census at
    /// tick `t` observes the population *before* any same-tick churn.
    Census(u32),
    /// A new worker joins (and chains the next arrival).
    Arrive,
    /// Graceful departure of a worker: copies are reassigned.
    Depart(u32),
    /// Abrupt failure of a worker: copies are lost.
    Fail(u32),
}

/// Sentinel for "no assignment" / "not live" in the intrusive lists.
const NONE: u32 = u32::MAX;

/// The worker population and its in-flight assignments.
///
/// Assignments live in intrusive singly-linked lists headed per worker
/// (copies only ever move wholesale when their holder dies), and the live
/// set is a swap-remove vector with a position index so reassignment
/// targets are drawn in O(1) — the whole engine is allocation-free after
/// setup.
struct Population {
    /// Head of each worker's assignment list (`NONE` if idle).
    head: Vec<u32>,
    /// Position of each worker in `live` (`NONE` if dead).
    pos: Vec<u32>,
    /// Ids of live workers, in swap-remove order.
    live: Vec<u32>,
    /// Next pointer per assignment.
    assign_next: Vec<u32>,
    /// Owning task index per assignment.
    assign_task: Vec<u32>,
    /// Surviving copies per task.
    task_live: Vec<u32>,
    /// Tasks with zero surviving copies.
    starved: u64,
    /// Copies currently held by live workers.
    live_copies: u64,
    /// Assignments issued so far (initial plus reassignments).
    issued: u64,
}

impl Population {
    /// Spawn the initial pool and deal the plan's copies round-robin over
    /// it (deterministic, no RNG).
    fn new(tasks: &[TaskSpec], initial_workers: u64) -> Self {
        let assignments: u64 = tasks.iter().map(|t| u64::from(t.multiplicity)).sum();
        let mut p = Population {
            head: vec![NONE; initial_workers as usize],
            pos: (0..initial_workers as u32).collect(),
            live: (0..initial_workers as u32).collect(),
            assign_next: Vec::with_capacity(assignments as usize),
            assign_task: Vec::with_capacity(assignments as usize),
            task_live: Vec::with_capacity(tasks.len()),
            starved: 0,
            live_copies: 0,
            issued: 0,
        };
        for (ti, spec) in tasks.iter().enumerate() {
            p.task_live.push(spec.multiplicity);
            if spec.multiplicity == 0 {
                p.starved += 1;
            }
            for _ in 0..spec.multiplicity {
                let a = p.assign_task.len() as u32;
                p.assign_task.push(ti as u32);
                p.assign_next.push(NONE);
                let w = (u64::from(a) % initial_workers) as u32;
                p.push_assignment(w, a);
                p.issued += 1;
                p.live_copies += 1;
            }
        }
        p
    }

    fn push_assignment(&mut self, worker: u32, assignment: u32) {
        self.assign_next[assignment as usize] = self.head[worker as usize];
        self.head[worker as usize] = assignment;
    }

    /// Add a fresh idle worker, returning its id.
    fn spawn(&mut self) -> u32 {
        let w = self.head.len() as u32;
        self.head.push(NONE);
        self.pos.push(self.live.len() as u32);
        self.live.push(w);
        w
    }

    /// Remove `worker` from the live set (it keeps its list until drained).
    fn remove_live(&mut self, worker: u32) {
        let at = self.pos[worker as usize] as usize;
        debug_assert!(at != NONE as usize, "worker died twice");
        self.pos[worker as usize] = NONE;
        self.live.swap_remove(at);
        // The former last element now sits at `at`; re-index it.
        if at < self.live.len() {
            let moved = self.live[at];
            self.pos[moved as usize] = at as u32;
        }
    }

    /// One copy is gone for good.
    fn lose_copy(&mut self, assignment: u32) {
        let ti = self.assign_task[assignment as usize] as usize;
        self.task_live[ti] -= 1;
        if self.task_live[ti] == 0 {
            self.starved += 1;
        }
        self.live_copies -= 1;
    }

    /// Graceful departure: every held copy is reassigned to a uniformly
    /// drawn live worker (one RNG draw per copy), or lost if the pool is
    /// empty.  Returns `(reassigned, lost)`.
    fn depart(&mut self, worker: u32, rng: &mut DeterministicRng) -> (u64, u64) {
        self.remove_live(worker);
        let (mut reassigned, mut lost) = (0u64, 0u64);
        let mut a = std::mem::replace(&mut self.head[worker as usize], NONE);
        while a != NONE {
            let next = self.assign_next[a as usize];
            if self.live.is_empty() {
                self.lose_copy(a);
                lost += 1;
            } else {
                let target = self.live[rng.below(self.live.len() as u64) as usize];
                self.push_assignment(target, a);
                self.issued += 1;
                reassigned += 1;
            }
            a = next;
        }
        (reassigned, lost)
    }

    /// Abrupt failure: every held copy is lost.  Returns the count.
    fn fail(&mut self, worker: u32) -> u64 {
        self.remove_live(worker);
        let mut lost = 0u64;
        let mut a = std::mem::replace(&mut self.head[worker as usize], NONE);
        while a != NONE {
            let next = self.assign_next[a as usize];
            self.lose_copy(a);
            lost += 1;
            a = next;
        }
        lost
    }
}

/// Draw a worker's death event from its entry tick: the earlier of a
/// geometric departure and a geometric failure (failure wins ties — a
/// crash preempts a goodbye).  Draw order is fixed (departure first) and
/// each draw is gated behind its rate, so configurations agree on their
/// common random-number prefix.
fn schedule_death(
    churn: &ChurnModel,
    worker: u32,
    now: u64,
    rng: &mut DeterministicRng,
    queue: &mut EventQueue<Event>,
) {
    let leave = (churn.leave_rate > 0.0).then(|| now + sample_geometric(rng, churn.leave_rate));
    let fail = (churn.fail_rate > 0.0).then(|| now + sample_geometric(rng, churn.fail_rate));
    match (leave, fail) {
        (Some(l), Some(f)) if l < f => queue.schedule(l, Event::Depart(worker)),
        (Some(_), Some(f)) => queue.schedule(f, Event::Fail(worker)),
        (Some(l), None) => queue.schedule(l, Event::Depart(worker)),
        (None, Some(f)) => queue.schedule(f, Event::Fail(worker)),
        (None, None) => return, // immortal under this model
    };
}

/// Run one churn trial over `tasks`, accumulating into `outcome`.
///
/// With an inactive model this delegates to [`run_campaign_with_scratch`]
/// and is bit-for-bit identical to it — the churn layer consumes no
/// randomness at all.  With an active model it plays the discrete-event
/// population forward for `churn.horizon` ticks and, at every census
/// checkpoint, runs the batched campaign kernel (same cached samplers,
/// same scratch) over the *degraded* task multiset: each task keeps its
/// id and precomputed flag but its multiplicity is whatever survived the
/// churn so far.  Checkpoint `i`'s sample is pushed on the first trial and
/// merged elementwise on repeat calls, so one `ChurnOutcome` accumulates
/// any number of trials.
pub fn run_campaign_with_churn_scratch(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    churn: &ChurnModel,
    rng: &mut DeterministicRng,
    outcome: &mut ChurnOutcome,
    scratch: &mut CampaignScratch,
) {
    debug_assert!(churn.validate().is_ok(), "invalid churn model");
    if !churn.is_active() {
        return run_campaign_with_scratch(tasks, config, rng, &mut outcome.campaign, scratch);
    }
    outcome.trials += 1;
    let mut pop = Population::new(tasks, churn.initial_workers);
    let mut queue = EventQueue::with_capacity(pop.head.len() + 64);
    // Censuses first: at a tied tick the checkpoint observes the
    // population before any same-tick churn (seq breaks the tie).
    let checkpoints = churn.checkpoints();
    for i in 0..checkpoints {
        queue.schedule((i + 1) * churn.census_interval, Event::Census(i as u32));
    }
    for w in 0..churn.initial_workers as u32 {
        schedule_death(churn, w, 0, rng, &mut queue);
    }
    if churn.enter_rate > 0.0 {
        let first = sample_geometric(rng, churn.enter_rate);
        if first <= churn.horizon {
            queue.schedule(first, Event::Arrive);
        }
    }
    let mut degraded: Vec<TaskSpec> = Vec::with_capacity(tasks.len());
    while let Some((tick, event)) = queue.pop() {
        if tick > churn.horizon {
            break;
        }
        outcome.events += 1;
        match event {
            Event::Arrive => {
                outcome.arrivals += 1;
                let w = pop.spawn();
                schedule_death(churn, w, tick, rng, &mut queue);
                let next = tick + sample_geometric(rng, churn.enter_rate);
                if next <= churn.horizon {
                    queue.schedule(next, Event::Arrive);
                }
            }
            Event::Depart(w) => {
                outcome.departures += 1;
                let (reassigned, lost) = pop.depart(w, rng);
                outcome.reassignments += reassigned;
                outcome.issued_assignments += reassigned;
                outcome.lost_copies += lost;
            }
            Event::Fail(w) => {
                outcome.failures += 1;
                outcome.lost_copies += pop.fail(w);
            }
            Event::Census(i) => {
                degraded.clear();
                for (spec, &live) in tasks.iter().zip(&pop.task_live) {
                    if live > 0 {
                        degraded.push(TaskSpec {
                            multiplicity: live,
                            ..*spec
                        });
                    }
                }
                let before = (
                    outcome.campaign.total_attempted(),
                    outcome.campaign.total_detected(),
                    outcome.campaign.wrong_accepted,
                );
                run_campaign_with_scratch(&degraded, config, rng, &mut outcome.campaign, scratch);
                outcome.campaign.unresolved_tasks += pop.starved;
                let sample = CensusSample {
                    tick,
                    trials: 1,
                    live_workers: pop.live.len() as u64,
                    live_copies: pop.live_copies,
                    issued_assignments: pop.issued,
                    lost_copies: (pop.issued - pop.live_copies),
                    starved_tasks: pop.starved,
                    cheats_attempted: outcome.campaign.total_attempted() - before.0,
                    cheats_detected: outcome.campaign.total_detected() - before.1,
                    wrong_accepted: outcome.campaign.wrong_accepted - before.2,
                };
                let slot = i as usize;
                if outcome.census.len() == slot {
                    outcome.census.push(sample);
                } else {
                    outcome.census[slot].merge(&sample);
                }
            }
        }
    }
}

/// Monte-Carlo churn estimate: the merged [`ChurnOutcome`] plus the plan
/// geometry needed to normalize it.
#[derive(Debug, Clone)]
pub struct ChurnEstimate {
    /// Merged outcome over all trials.
    pub outcome: ChurnOutcome,
    /// Tasks per trial (ordinary tasks plus ringers), for redundancy
    /// normalization.
    pub tasks_per_trial: u64,
}

impl ChurnEstimate {
    /// Overall detection proportion across every census campaign.
    pub fn overall(&self) -> Proportion {
        let mut p = Proportion::new();
        p.push_batch(
            self.outcome.campaign.total_detected(),
            self.outcome.campaign.total_attempted(),
        );
        p
    }

    /// Realized redundancy factor at the final checkpoint: issued
    /// assignments per task, averaged over trials (`None` when every run
    /// delegated to the churn-free kernel).
    pub fn realized_redundancy(&self) -> Option<f64> {
        let last = self.outcome.census.last()?;
        Some(last.redundancy_factor(self.tasks_per_trial))
    }
}

/// Run `config.campaigns` independent churn trials of `plan` under the
/// given campaign configuration and churn model, in parallel, and merge
/// the outcomes.
///
/// Uses the same chunk-seeded [`run_trials`] driver as
/// [`detection_experiment_with`](crate::experiment::detection_experiment_with),
/// with each worker carrying its own [`CampaignScratch`]; census series
/// merge elementwise, so the result is bit-identical at any thread count.
/// With an inactive model every trial delegates to the batched kernel and
/// the merged `outcome.campaign` equals the churn-free experiment exactly.
pub fn churn_experiment(
    plan: &RealizedPlan,
    campaign: &CampaignConfig,
    churn: &ChurnModel,
    config: &ExperimentConfig,
) -> ChurnEstimate {
    campaign.validate().expect("invalid campaign configuration");
    churn.validate().expect("invalid churn model");
    let tasks: Vec<TaskSpec> = expand_plan(plan);
    let trial_cfg = TrialConfig {
        trials: config.campaigns,
        chunk_size: config.chunk_size,
        threads: config.threads,
        seed: config.seed,
        // The zero-churn oracle pins bit-identity with the batch kernel,
        // so churn campaigns always draw bit-compat.
        sampler: Default::default(),
    };
    #[derive(Default)]
    struct ChurnAccumulator {
        out: ChurnOutcome,
        scratch: CampaignScratch,
    }
    let acc: ChurnAccumulator = run_trials(
        &trial_cfg,
        |rng, _i, a: &mut ChurnAccumulator| {
            run_campaign_with_churn_scratch(
                &tasks,
                campaign,
                churn,
                rng,
                &mut a.out,
                &mut a.scratch,
            )
        },
        |a, b| a.out.merge(&b.out),
    );
    ChurnEstimate {
        outcome: acc.out,
        tasks_per_trial: tasks.len() as u64,
    }
}

/// One deterministic large-scale churn run, reduced to the numbers the
/// soak harnesses compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakReport {
    /// Discrete events processed.
    pub events: u64,
    /// Workers that joined after tick 0.
    pub arrivals: u64,
    /// Graceful departures processed.
    pub departures: u64,
    /// Abrupt failures processed.
    pub failures: u64,
    /// Copies reassigned after departures.
    pub reassignments: u64,
    /// Copies lost outright.
    pub lost_copies: u64,
    /// Census checkpoints taken.
    pub checkpoints: u64,
    /// FNV fold of every outcome counter — two same-seed runs must agree.
    pub checksum: u64,
}

/// Run one full-size churn trial — a Balanced plan of `tasks` tasks at
/// ε = 0.5 against a 20% always-cheating adversary — and fingerprint it.
///
/// This is the entry point behind the `churn_step` bench fixture and the
/// CI soak: a single worker, a single RNG stream, every counter folded
/// into [`ChurnOutcome::checksum`], so any nondeterminism in the event
/// loop (heap tie order, reassignment draws, census scheduling) changes
/// the checksum.
pub fn churn_soak(churn: &ChurnModel, tasks: u64, seed: u64) -> SoakReport {
    churn.validate().expect("invalid churn model");
    let plan = RealizedPlan::balanced(tasks, 0.5).expect("soak plan");
    let specs = expand_plan(&plan);
    let config = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.2 },
        CheatStrategy::Always,
    );
    let mut rng = DeterministicRng::new(seed);
    let mut outcome = ChurnOutcome::default();
    let mut scratch = CampaignScratch::new();
    run_campaign_with_churn_scratch(&specs, &config, churn, &mut rng, &mut outcome, &mut scratch);
    SoakReport {
        events: outcome.events,
        arrivals: outcome.arrivals,
        departures: outcome.departures,
        failures: outcome.failures,
        reassignments: outcome.reassignments,
        lost_copies: outcome.lost_copies,
        checkpoints: outcome.census.len() as u64,
        checksum: outcome.checksum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> CampaignConfig {
        CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        )
    }

    #[test]
    fn none_is_inactive_and_valid() {
        let c = ChurnModel::none();
        assert!(!c.is_active());
        assert!(c.validate().is_ok());
        assert_eq!(c.checkpoints(), 4);
    }

    #[test]
    fn nonzero_rates_activate() {
        assert!(ChurnModel::with_leave_rate(0.001).is_active());
        let enter = ChurnModel {
            enter_rate: 0.5,
            ..ChurnModel::none()
        };
        assert!(enter.is_active());
        let fail = ChurnModel {
            fail_rate: 0.001,
            ..ChurnModel::none()
        };
        assert!(fail.is_active());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ChurnModel::with_leave_rate(1.5).validate().is_err());
        assert!(ChurnModel::with_leave_rate(-0.1).validate().is_err());
        let bad_enter = ChurnModel {
            enter_rate: f64::NAN,
            ..ChurnModel::none()
        };
        assert!(bad_enter.validate().is_err());
        let no_workers = ChurnModel {
            initial_workers: 0,
            ..ChurnModel::none()
        };
        assert!(no_workers.validate().is_err());
        let no_horizon = ChurnModel {
            horizon: 0,
            ..ChurnModel::none()
        };
        assert!(no_horizon.validate().is_err());
        let wild_census = ChurnModel {
            census_interval: 1_000_000,
            ..ChurnModel::none()
        };
        assert!(wild_census.validate().is_err());
        let zero_census = ChurnModel {
            census_interval: 0,
            ..ChurnModel::none()
        };
        assert!(zero_census.validate().is_err());
    }

    #[test]
    fn boundary_rates_are_valid() {
        assert!(ChurnModel::with_leave_rate(1.0).validate().is_ok());
        assert!(ChurnModel::with_leave_rate(0.0).validate().is_ok());
    }

    #[test]
    fn inactive_model_is_bit_identical_to_batched_kernel() {
        // The correctness spine, in its smallest form: same outcome, same
        // final RNG state, across repeated campaigns sharing one scratch.
        let plan = RealizedPlan::balanced(2_000, 0.5).unwrap();
        let tasks = expand_plan(&plan);
        let config = test_config();
        let churn = ChurnModel::none();
        let mut base_rng = DeterministicRng::new(42);
        let mut churn_rng = base_rng.clone();
        let mut base_out = CampaignOutcome::default();
        let mut churn_out = ChurnOutcome::default();
        let mut base_scratch = CampaignScratch::new();
        let mut churn_scratch = CampaignScratch::new();
        for _ in 0..3 {
            run_campaign_with_scratch(
                &tasks,
                &config,
                &mut base_rng,
                &mut base_out,
                &mut base_scratch,
            );
            run_campaign_with_churn_scratch(
                &tasks,
                &config,
                &churn,
                &mut churn_rng,
                &mut churn_out,
                &mut churn_scratch,
            );
        }
        assert_eq!(base_out, churn_out.campaign);
        assert_eq!(base_rng, churn_rng, "zero churn consumed randomness");
        assert!(churn_out.census.is_empty());
        assert_eq!(churn_out.events, 0);
        assert_eq!(churn_out.trials, 0);
    }

    #[test]
    fn failures_degrade_detection_and_lose_copies() {
        // Heavy abrupt failure with no replacements: copies are lost,
        // tasks starve, and detection at the late checkpoints collapses
        // relative to the first.
        let plan = RealizedPlan::balanced(2_000, 0.5).unwrap();
        let churn = ChurnModel {
            fail_rate: 0.002,
            initial_workers: 200,
            horizon: 2_000,
            census_interval: 500,
            ..ChurnModel::none()
        };
        let est = churn_experiment(&plan, &test_config(), &churn, &ExperimentConfig::new(4, 99));
        let out = &est.outcome;
        assert_eq!(out.census.len(), 4);
        assert!(out.failures > 0, "no failures fired");
        assert!(out.lost_copies > 0, "failures lost no copies");
        let first = &out.census[0];
        let last = &out.census[3];
        assert!(
            last.live_copies < first.live_copies,
            "copies did not decay: {} -> {}",
            first.live_copies,
            last.live_copies
        );
        assert!(last.starved_tasks > 0, "nothing starved under heavy churn");
    }

    #[test]
    fn departures_reassign_and_inflate_redundancy() {
        // Graceful departures with a healthy arrival flow: copies survive
        // via reassignment, so issued assignments grow past the plan's
        // initial factor while losses stay at zero.
        let plan = RealizedPlan::balanced(2_000, 0.5).unwrap();
        let churn = ChurnModel {
            enter_rate: 0.9,
            leave_rate: 0.001,
            initial_workers: 500,
            horizon: 2_000,
            census_interval: 500,
            ..ChurnModel::none()
        };
        let est = churn_experiment(&plan, &test_config(), &churn, &ExperimentConfig::new(4, 7));
        let out = &est.outcome;
        assert!(out.departures > 0);
        assert!(out.reassignments > 0, "departures reassigned nothing");
        assert!(out.arrivals > 0);
        assert_eq!(out.failures, 0);
        let base = est.outcome.census[0].redundancy_factor(est.tasks_per_trial);
        let last = est.realized_redundancy().unwrap();
        assert!(
            last > base,
            "reassignment did not inflate redundancy: {base} vs {last}"
        );
        // No failures: every copy survives, so live copies stay constant.
        assert_eq!(
            out.census[0].live_copies, out.census[3].live_copies,
            "graceful churn lost copies"
        );
    }

    #[test]
    fn churn_experiment_is_thread_count_invariant() {
        let plan = RealizedPlan::balanced(1_000, 0.5).unwrap();
        let churn = ChurnModel {
            enter_rate: 0.5,
            leave_rate: 0.002,
            fail_rate: 0.0005,
            initial_workers: 150,
            horizon: 1_000,
            census_interval: 250,
        };
        let run = |threads| {
            let cfg = ExperimentConfig {
                campaigns: 8,
                seed: 31,
                threads,
                chunk_size: 2,
                sampler: Default::default(),
            };
            churn_experiment(&plan, &test_config(), &churn, &cfg).outcome
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b, "churn outcome depends on thread count");
    }

    #[test]
    fn same_seed_runs_produce_identical_census_checkpoints() {
        // Regression: the census series — ticks, population, detection —
        // must replay exactly for a fixed seed.
        let plan = RealizedPlan::balanced(1_500, 0.75).unwrap();
        let churn = ChurnModel {
            enter_rate: 0.7,
            leave_rate: 0.003,
            fail_rate: 0.001,
            initial_workers: 300,
            horizon: 1_200,
            census_interval: 300,
        };
        let run = || {
            churn_experiment(
                &plan,
                &test_config(),
                &churn,
                &ExperimentConfig::new(5, 2026),
            )
            .outcome
        };
        let a = run();
        let b = run();
        assert_eq!(a.census, b.census);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn soak_is_deterministic_and_counts_events() {
        let model = ChurnModel::soak(2_000, 20_000);
        let a = churn_soak(&model, 500, 11);
        let b = churn_soak(&model, 500, 11);
        assert_eq!(a, b, "same-seed soaks diverged");
        // ~0.9 arrivals and ~1 death per tick plus 8 censuses.
        assert!(a.events > 20_000, "only {} events", a.events);
        assert_eq!(a.checkpoints, 8);
        let c = churn_soak(&model, 500, 12);
        assert_ne!(a.checksum, c.checksum, "checksum ignores the seed");
    }

    #[test]
    fn merge_handles_empty_and_accumulates() {
        let plan = RealizedPlan::balanced(800, 0.5).unwrap();
        let churn = ChurnModel {
            leave_rate: 0.002,
            initial_workers: 100,
            horizon: 800,
            census_interval: 200,
            ..ChurnModel::none()
        };
        let est = churn_experiment(&plan, &test_config(), &churn, &ExperimentConfig::new(3, 5));
        let one = est.outcome;
        let mut folded = ChurnOutcome::default();
        folded.merge(&one); // empty ⊕ x = x
        assert_eq!(folded, one);
        folded.merge(&one);
        assert_eq!(folded.trials, 2 * one.trials);
        assert_eq!(folded.census[0].trials, 2 * one.census[0].trials);
        assert_eq!(folded.events, 2 * one.events);
    }
}
