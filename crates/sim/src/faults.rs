//! Failure and straggler injection for the campaign simulator.
//!
//! The paper's detection guarantees assume every assignment comes back.
//! Real volunteer platforms lose returns (hosts leave mid-task), delay them
//! (stragglers), and corrupt them in transit; the supervisor's reassignment
//! policy then changes which multiplicities actually get compared.  A
//! [`FaultModel`] describes those per-assignment hazards; the retry loop in
//! [`crate::retry`] simulates delivery under it.
//!
//! All latency is measured in **abstract ticks** — there is no wall clock
//! anywhere, so campaigns stay exactly replayable under the chunked
//! Monte-Carlo driver.  Every random draw goes through the campaign's
//! [`DeterministicRng`](redundancy_stats::DeterministicRng), and every draw
//! is gated behind its rate being nonzero, so a zero-rate model consumes
//! *no* randomness and reproduces the fault-free engine bit for bit.

/// Per-assignment fault hazards plus the supervisor's retry policy.
///
/// Delivery of one assignment proceeds in attempts.  Each attempt:
///
/// 1. drops entirely with probability `drop_rate` (the supervisor notices
///    only when `timeout` ticks elapse);
/// 2. otherwise computes in 1 tick, plus — with probability
///    `straggler_rate` — a geometric extra delay with mean
///    `straggler_mean_delay` ticks;
/// 3. a copy arriving within `timeout` ticks of its issue is accepted, and
///    is corrupted (arbitrary wrong value, non-colluding) with probability
///    `corrupt_rate`;
/// 4. a dropped or late copy is re-issued after a capped exponential
///    backoff (`backoff_base · 2^attempt`, at most `backoff_cap` ticks),
///    up to `max_retries` times.  An assignment that exhausts its retries
///    is lost: the task's effective multiplicity shrinks by one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability an issued copy is never returned.
    pub drop_rate: f64,
    /// Probability a returned copy is a straggler.
    pub straggler_rate: f64,
    /// Mean extra delay of a straggler, in ticks (geometric, support ≥ 1).
    pub straggler_mean_delay: f64,
    /// Probability a returned copy's value was corrupted in transit.
    pub corrupt_rate: f64,
    /// Ticks the supervisor waits for a copy before re-issuing it.
    pub timeout: u64,
    /// Maximum re-issues per assignment.
    pub max_retries: u32,
    /// First backoff delay, in ticks.
    pub backoff_base: u64,
    /// Backoff ceiling, in ticks.
    pub backoff_cap: u64,
}

impl FaultModel {
    /// The fault-free model: no hazards, default retry policy.
    ///
    /// Inactive by construction, so engines delegate to the fault-free path
    /// and consume no extra randomness.
    pub fn none() -> Self {
        FaultModel {
            drop_rate: 0.0,
            straggler_rate: 0.0,
            straggler_mean_delay: 4.0,
            corrupt_rate: 0.0,
            timeout: 8,
            max_retries: 3,
            backoff_base: 2,
            backoff_cap: 32,
        }
    }

    /// A model with only per-assignment drops at `rate`.
    pub fn with_drop_rate(rate: f64) -> Self {
        FaultModel {
            drop_rate: rate,
            ..FaultModel::none()
        }
    }

    /// A model with only stragglers: `rate` of copies delayed by a
    /// geometric extra latency with mean `mean_delay` ticks.
    pub fn with_stragglers(rate: f64, mean_delay: f64) -> Self {
        FaultModel {
            straggler_rate: rate,
            straggler_mean_delay: mean_delay,
            ..FaultModel::none()
        }
    }

    /// True if any hazard can fire.  Inactive models must not perturb the
    /// fault-free engine's RNG stream.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0 || self.straggler_rate > 0.0 || self.corrupt_rate > 0.0
    }

    /// Validate all parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("drop rate", self.drop_rate),
            ("straggler rate", self.straggler_rate),
            ("corrupt rate", self.corrupt_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("{name} {rate} outside [0, 1]"));
            }
        }
        if self.timeout == 0 {
            return Err("timeout must be at least one tick".into());
        }
        if !self.straggler_mean_delay.is_finite() || self.straggler_mean_delay < 1.0 {
            return Err(format!(
                "straggler mean delay {} must be >= 1 tick",
                self.straggler_mean_delay
            ));
        }
        if self.backoff_base == 0 {
            return Err("backoff base must be at least one tick".into());
        }
        if self.backoff_cap < self.backoff_base {
            return Err(format!(
                "backoff cap {} below backoff base {}",
                self.backoff_cap, self.backoff_base
            ));
        }
        Ok(())
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let f = FaultModel::none();
        assert!(!f.is_active());
        assert!(f.validate().is_ok());
    }

    #[test]
    fn nonzero_rates_activate() {
        assert!(FaultModel::with_drop_rate(0.1).is_active());
        assert!(FaultModel::with_stragglers(0.2, 6.0).is_active());
        let corrupt = FaultModel {
            corrupt_rate: 0.01,
            ..FaultModel::none()
        };
        assert!(corrupt.is_active());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultModel::with_drop_rate(1.5).validate().is_err());
        assert!(FaultModel::with_drop_rate(-0.1).validate().is_err());
        let zero_timeout = FaultModel {
            timeout: 0,
            ..FaultModel::none()
        };
        assert!(zero_timeout.validate().is_err());
        let tiny_mean = FaultModel {
            straggler_mean_delay: 0.5,
            ..FaultModel::none()
        };
        assert!(tiny_mean.validate().is_err());
        let inverted_backoff = FaultModel {
            backoff_base: 16,
            backoff_cap: 4,
            ..FaultModel::none()
        };
        assert!(inverted_backoff.validate().is_err());
        let zero_base = FaultModel {
            backoff_base: 0,
            ..FaultModel::none()
        };
        assert!(zero_base.validate().is_err());
    }

    #[test]
    fn boundary_rates_are_valid() {
        assert!(FaultModel::with_drop_rate(1.0).validate().is_ok());
        assert!(FaultModel::with_drop_rate(0.0).validate().is_ok());
    }
}
