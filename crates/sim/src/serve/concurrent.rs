//! The concurrent serve store: per-shard locks and per-shard RNG streams.
//!
//! [`AssignmentStore`](super::AssignmentStore) centralizes dispatch (and
//! therefore RNG order) in one activation cursor, which is what makes a
//! drained session bit-identical to the batch kernel — but it also means
//! every client serializes on one lock.  [`ConcurrentStore`] trades the
//! batch-kernel identity for genuine concurrency while keeping an equally
//! strong determinism contract:
//!
//! * **Per-shard locking.**  Task state is partitioned over `shards`
//!   sub-stores by the same FNV-1a id hash as the single-stream store.
//!   Each shard sits behind its own [`Mutex`] and owns its free-list
//!   (timeout re-queue), its sampler caches, its tick clock, its partial
//!   [`CampaignOutcome`], and its counters; [`request_work`]
//!   (ConcurrentStore::request_work) routes via a round-robin cursor and
//!   touches one shard's lock at a time, and
//!   [`return_result`](ConcurrentStore::return_result) locks exactly the
//!   owning shard.  [`ServeStats`] is aggregated from the per-shard cells
//!   on demand.
//!
//! * **Per-shard RNG streams.**  Shard `s` draws every activation from
//!   `DeterministicRng::new(SeedSequence::new(seed).derive(s))` and
//!   activates *its own* ids in id order, lazily skipping ids other
//!   shards own.  A shard's activation sequence is therefore a pure
//!   function of `(seed, shard count, s)` — no client interleaving can
//!   perturb it, because no other shard ever touches its stream.  With a
//!   timeout no client trips, a *drained* store's merged outcome, final
//!   per-shard RNG states, and rendered stats are byte-identical across
//!   any number of clients (1/2/4/8/...) and any request schedule at a
//!   fixed shard count.
//!
//! The matching oracle is [`drain_shard_by_shard`]
//! (ConcurrentStore::drain_shard_by_shard): draining shard 0 to
//! completion, then shard 1, and so on exercises no concurrency at all,
//! yet must land in the same final state as any interleaved or
//! multi-threaded drain.  The serve proptests and the `serve_concurrent`
//! bench pin this.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use super::protocol::handle_request;
use super::store::{
    judge_completed, materialize_task, shard_hash, Assignment, CopyState, InFlightRec, Issue,
    ReturnAck, ServeConfig, ServeError, ServeStats, TaskState,
};
use super::WorkStore;
use crate::engine::CampaignConfig;
use crate::outcome::CampaignOutcome;
use crate::supervisor::Supervisor;
use crate::task::{grouped_specs, ResultValue, SpecGroup, TaskId, TaskSpec};
use redundancy_stats::{BinomialCache, DeterministicRng, HypergeometricCache, SeedSequence};

/// Which RNG-stream discipline a serve session runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMode {
    /// One session RNG, centralized dispatch: bit-identical to the batch
    /// kernel (the `ext_serve` oracle), but clients serialize on one lock.
    #[default]
    Single,
    /// One derived RNG stream per shard, per-shard locks: bit-identical
    /// across client counts and interleavings at a fixed shard count.
    PerShard,
}

impl std::str::FromStr for StreamMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "single" => Ok(StreamMode::Single),
            "per-shard" => Ok(StreamMode::PerShard),
            other => Err(format!(
                "unknown stream mode '{other}' (expected single or per-shard)"
            )),
        }
    }
}

impl std::fmt::Display for StreamMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StreamMode::Single => "single",
            StreamMode::PerShard => "per-shard",
        })
    }
}

/// One shard of the concurrent store: its slice of task state, its own
/// RNG stream, sampler caches, free-list, in-flight queue, tick clock,
/// counters, and partial outcome.  Everything a request touches after
/// routing lives behind this shard's lock.
#[derive(Debug)]
struct ShardStore {
    /// This shard's index and the total shard count, for the id walk.
    shard: u64,
    nshards: u64,
    config: CampaignConfig,
    supervisor: Supervisor,
    timeout: u64,
    max_retries: u32,
    /// This shard's derived RNG stream: `SeedSequence::derive(shard)`.
    rng: DeterministicRng,
    binomial: BinomialCache,
    hypergeometric: HypergeometricCache,
    /// Shared immutable description of the whole workload; each shard
    /// walks it independently, activating only the ids it owns.
    groups: std::sync::Arc<[SpecGroup]>,
    group_cursor: usize,
    group_offset: u64,
    /// The task currently being dealt: (local slot, next copy, mult).
    active: Option<(u32, u32, u32)>,
    /// Activated tasks in id order (so return routing binary-searches).
    tasks: Vec<TaskState>,
    /// The timeout free-list: (local slot, copy, attempt).
    requeue: VecDeque<(u32, u32, u32)>,
    /// In-flight copies in deadline order; `task` is the local slot.
    inflight: VecDeque<InFlightRec>,
    now: u64,
    issued: u64,
    returned: u64,
    in_flight_count: u64,
    lost: u64,
    activated_tasks: u64,
    completed_tasks: u64,
    /// How many tasks/copies of the workload this shard owns in total.
    owned_tasks: u64,
    owned_copies: u64,
    outcome: CampaignOutcome,
    results_buf: Vec<ResultValue>,
}

impl ShardStore {
    fn is_drained(&self) -> bool {
        self.completed_tasks == self.owned_tasks
    }

    /// Draw holdings and materialize values for the next task *this shard
    /// owns*, in id order, from this shard's own stream.  Returns false
    /// when the shard's slice is fully activated.
    fn activate_next(&mut self) -> bool {
        loop {
            let Some(g) = self.groups.get(self.group_cursor) else {
                return false;
            };
            if self.group_offset >= g.count {
                self.group_cursor += 1;
                self.group_offset = 0;
                continue;
            }
            let id = TaskId(g.first_id.0 + self.group_offset);
            self.group_offset += 1;
            if shard_hash(id.0) % self.nshards != self.shard {
                continue;
            }
            let mult = u64::from(g.multiplicity);
            let (held, cheats, values) = materialize_task(
                &self.config,
                &mut self.binomial,
                &mut self.hypergeometric,
                id,
                mult,
                &mut self.rng,
            );
            self.outcome.tasks += 1;
            self.outcome.assignments += mult;
            self.outcome.holdings.record(held as usize);
            let slot = self.tasks.len() as u32;
            self.tasks.push(TaskState {
                spec: TaskSpec {
                    id,
                    multiplicity: g.multiplicity,
                    precomputed: g.precomputed,
                },
                held,
                cheats,
                values,
                copies: vec![CopyState::Pending; g.multiplicity as usize],
                returned: 0,
                lost: 0,
                judged: false,
            });
            self.active = Some((slot, 0, g.multiplicity));
            self.activated_tasks += 1;
            return true;
        }
    }

    fn request_work(&mut self) -> Issue {
        self.now += 1;
        self.expire_overdue();
        if let Some((slot, copy, attempt)) = self.requeue.pop_front() {
            return Issue::Work(self.issue(slot, copy, attempt));
        }
        if self.active.is_none() {
            self.activate_next();
        }
        if let Some((slot, copy, mult)) = self.active {
            self.active = if copy + 1 < mult {
                Some((slot, copy + 1, mult))
            } else {
                None
            };
            return Issue::Work(self.issue(slot, copy, 0));
        }
        if self.in_flight_count > 0 {
            Issue::Idle
        } else {
            debug_assert!(self.is_drained(), "shard: no work, none in flight");
            Issue::Drained
        }
    }

    fn return_result(&mut self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError> {
        let Ok(slot) = self.tasks.binary_search_by_key(&task.0, |t| t.spec.id.0) else {
            // Owned by this shard but never activated: nothing issued yet.
            return Err(ServeError::NotInFlight { task, copy });
        };
        let state = &mut self.tasks[slot];
        if copy >= state.spec.multiplicity {
            return Err(ServeError::CopyOutOfRange {
                task,
                copy,
                multiplicity: state.spec.multiplicity,
            });
        }
        if !matches!(state.copies[copy as usize], CopyState::InFlight { .. }) {
            return Err(ServeError::NotInFlight { task, copy });
        }
        state.copies[copy as usize] = CopyState::Returned;
        state.returned += 1;
        self.returned += 1;
        self.in_flight_count -= 1;
        let complete = u64::from(state.returned + state.lost) == u64::from(state.spec.multiplicity);
        if complete {
            self.judge(slot);
        }
        Ok(ReturnAck {
            task_complete: complete,
        })
    }

    fn issue(&mut self, slot: u32, copy: u32, attempt: u32) -> Assignment {
        let state = &mut self.tasks[slot as usize];
        debug_assert_eq!(state.copies[copy as usize], CopyState::Pending);
        state.copies[copy as usize] = CopyState::InFlight { attempt };
        let spec = state.spec;
        self.inflight.push_back(InFlightRec {
            task: slot,
            copy,
            attempt,
            deadline: self.now + self.timeout,
        });
        self.issued += 1;
        self.in_flight_count += 1;
        Assignment {
            task: spec.id,
            copy,
            multiplicity: spec.multiplicity,
        }
    }

    fn expire_overdue(&mut self) {
        while let Some(rec) = self.inflight.front().copied() {
            if rec.deadline > self.now {
                break;
            }
            self.inflight.pop_front();
            let state = &mut self.tasks[rec.task as usize];
            let live = matches!(
                state.copies[rec.copy as usize],
                CopyState::InFlight { attempt } if attempt == rec.attempt
            );
            if !live {
                continue;
            }
            self.in_flight_count -= 1;
            self.outcome.timeouts += 1;
            if rec.attempt >= self.max_retries {
                state.copies[rec.copy as usize] = CopyState::Lost;
                state.lost += 1;
                self.lost += 1;
                self.outcome.lost_assignments += 1;
                if u64::from(state.returned + state.lost) == u64::from(state.spec.multiplicity) {
                    self.judge(rec.task as usize);
                }
            } else {
                self.outcome.retries += 1;
                state.copies[rec.copy as usize] = CopyState::Pending;
                self.requeue
                    .push_back((rec.task, rec.copy, rec.attempt + 1));
            }
        }
    }

    fn judge(&mut self, slot: usize) {
        let mut buf = std::mem::take(&mut self.results_buf);
        self.completed_tasks += 1;
        judge_completed(
            &self.supervisor,
            &mut self.tasks[slot],
            &mut buf,
            &mut self.outcome,
        );
        self.results_buf = buf;
    }

    /// Revert this shard's in-flight copies to pending, re-queueing each
    /// under its current attempt number (no timeout or retry charged);
    /// both `issued` and the in-flight count roll back so the
    /// conservation invariant holds.
    fn reset_in_flight(&mut self) -> u64 {
        let mut reverted = 0u64;
        while let Some(rec) = self.inflight.pop_front() {
            let state = &mut self.tasks[rec.task as usize];
            let live = matches!(
                state.copies[rec.copy as usize],
                CopyState::InFlight { attempt } if attempt == rec.attempt
            );
            if !live {
                continue;
            }
            state.copies[rec.copy as usize] = CopyState::Pending;
            self.requeue.push_back((rec.task, rec.copy, rec.attempt));
            reverted += 1;
        }
        self.in_flight_count -= reverted;
        self.issued -= reverted;
        reverted
    }

    /// This shard's stats cell, scoped to the slice of the workload it
    /// owns; the session snapshot is the field-wise sum of these.
    fn stats(&self) -> ServeStats {
        ServeStats {
            total_tasks: self.owned_tasks,
            activated_tasks: self.activated_tasks,
            completed_tasks: self.completed_tasks,
            total_copies: self.owned_copies,
            issued: self.issued,
            returned: self.returned,
            in_flight: self.in_flight_count,
            requeued: self.requeue.len() as u64,
            lost: self.lost,
            timeouts: self.outcome.timeouts,
            retries: self.outcome.retries,
            cheats_attempted: self.outcome.total_attempted(),
            cheats_detected: self.outcome.total_detected(),
            wrong_accepted: self.outcome.wrong_accepted,
            false_flags: self.outcome.false_flags,
            unresolved_tasks: self.outcome.unresolved_tasks,
        }
    }

    /// Drain this shard to completion with immediate returns — the
    /// shard-by-shard oracle's inner loop.
    fn drain(&mut self) {
        loop {
            match self.request_work() {
                Issue::Work(a) => {
                    self.return_result(a.task, a.copy)
                        .expect("drain returned an issued copy");
                }
                Issue::Idle => unreachable!("immediate returns leave nothing in flight"),
                Issue::Drained => break,
            }
        }
    }

    fn check_invariants(&self) {
        let mut in_flight = 0u64;
        let mut returned = 0u64;
        let mut lost = 0u64;
        let mut completed = 0u64;
        let mut prev_id: Option<u64> = None;
        for state in &self.tasks {
            assert!(
                prev_id.is_none_or(|p| p < state.spec.id.0),
                "shard task ids not strictly increasing"
            );
            prev_id = Some(state.spec.id.0);
            assert_eq!(
                shard_hash(state.spec.id.0) % self.nshards,
                self.shard,
                "task {} on the wrong shard",
                state.spec.id.0
            );
            let mult = state.spec.multiplicity as usize;
            assert_eq!(state.copies.len(), mult, "copy vector length drifted");
            let mut counts = [0u32; 4];
            for c in &state.copies {
                counts[match c {
                    CopyState::Pending => 0,
                    CopyState::InFlight { .. } => 1,
                    CopyState::Returned => 2,
                    CopyState::Lost => 3,
                }] += 1;
            }
            assert_eq!(
                counts.iter().map(|&c| c as usize).sum::<usize>(),
                mult,
                "copies of task {} not conserved",
                state.spec.id.0
            );
            assert_eq!(counts[2], state.returned, "returned count drifted");
            assert_eq!(counts[3], state.lost, "lost count drifted");
            assert_eq!(
                state.judged,
                u64::from(state.returned + state.lost) == u64::from(state.spec.multiplicity),
                "task {} judged flag inconsistent",
                state.spec.id.0
            );
            in_flight += u64::from(counts[1]);
            returned += u64::from(counts[2]);
            lost += u64::from(counts[3]);
            completed += u64::from(state.judged);
        }
        assert_eq!(in_flight, self.in_flight_count, "in-flight count drifted");
        assert_eq!(returned, self.returned, "returned count drifted");
        assert_eq!(lost, self.lost, "lost count drifted");
        assert_eq!(
            self.tasks.len() as u64,
            self.activated_tasks,
            "activation count drifted"
        );
        assert_eq!(completed, self.completed_tasks, "completion count drifted");
        let mut seen = std::collections::HashSet::new();
        for &(slot, copy, _) in &self.requeue {
            assert!(seen.insert((slot, copy)), "copy re-queued twice");
            assert_eq!(
                self.tasks[slot as usize].copies[copy as usize],
                CopyState::Pending,
                "re-queued copy not pending"
            );
        }
        assert_eq!(
            self.issued,
            self.returned + self.outcome.timeouts + self.in_flight_count,
            "issues leaked"
        );
    }
}

/// The per-shard-locked, per-shard-stream serve store.  Every method takes
/// `&self`: requests route to a shard and lock only that shard, so clients
/// on different shards proceed in parallel.  See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct ConcurrentStore {
    shards: Vec<Mutex<ShardStore>>,
    /// Round-robin routing cursor for `request_work`.
    router: AtomicUsize,
    base_id: u64,
    total_tasks: u64,
    total_copies: u64,
    seed: u64,
}

impl ConcurrentStore {
    /// Build a store over `tasks` (contiguous ids, as
    /// [`expand_plan`](crate::task::expand_plan) produces), with shard
    /// `s`'s stream seeded from `SeedSequence::new(seed).derive(s)`.
    pub fn new(
        tasks: &[TaskSpec],
        config: &CampaignConfig,
        serve: &ServeConfig,
        seed: u64,
    ) -> Result<Self, String> {
        config.validate()?;
        serve.validate()?;
        let groups: Vec<SpecGroup> = grouped_specs(tasks).collect();
        let mut expected = groups.first().map_or(0, |g| g.first_id.0);
        let base_id = expected;
        let mut total_copies = 0u64;
        let nshards = serve.shards as u64;
        let mut owned_tasks = vec![0u64; serve.shards];
        let mut owned_copies = vec![0u64; serve.shards];
        for g in &groups {
            if g.multiplicity == 0 {
                return Err(format!("task {} has multiplicity 0", g.first_id.0));
            }
            if g.first_id.0 != expected {
                return Err(format!(
                    "task ids must be contiguous: expected {expected}, found {}",
                    g.first_id.0
                ));
            }
            expected += g.count;
            total_copies += g.count * u64::from(g.multiplicity);
            for offset in 0..g.count {
                let s = (shard_hash(g.first_id.0 + offset) % nshards) as usize;
                owned_tasks[s] += 1;
                owned_copies[s] += u64::from(g.multiplicity);
            }
        }
        let total_tasks = expected - base_id;
        let groups: std::sync::Arc<[SpecGroup]> = groups.into();
        let seq = SeedSequence::new(seed);
        let shards: Vec<Mutex<ShardStore>> = (0..serve.shards)
            .map(|s| {
                let mut outcome = CampaignOutcome::default();
                if s == 0 {
                    // The session is one campaign; the counter lives on
                    // shard 0 and surfaces through the merged outcome.
                    outcome.campaigns = 1;
                }
                Mutex::new(ShardStore {
                    shard: s as u64,
                    nshards,
                    config: *config,
                    supervisor: Supervisor::new(config.policy),
                    timeout: serve.faults.timeout,
                    max_retries: serve.faults.max_retries,
                    rng: DeterministicRng::new(seq.derive(s as u64)),
                    binomial: BinomialCache::default(),
                    hypergeometric: HypergeometricCache::default(),
                    groups: groups.clone(),
                    group_cursor: 0,
                    group_offset: 0,
                    active: None,
                    tasks: Vec::new(),
                    requeue: VecDeque::new(),
                    inflight: VecDeque::new(),
                    now: 0,
                    issued: 0,
                    returned: 0,
                    in_flight_count: 0,
                    lost: 0,
                    activated_tasks: 0,
                    completed_tasks: 0,
                    owned_tasks: owned_tasks[s],
                    owned_copies: owned_copies[s],
                    outcome,
                    results_buf: Vec::new(),
                })
            })
            .collect();
        Ok(ConcurrentStore {
            shards,
            router: AtomicUsize::new(0),
            base_id,
            total_tasks,
            total_copies,
            seed,
        })
    }

    fn lock(&self, s: usize) -> MutexGuard<'_, ShardStore> {
        self.shards[s].lock().expect("shard lock poisoned")
    }

    /// Number of hash shards (= number of RNG streams and locks).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The seed the per-shard streams were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Copies in the full workload (sum of multiplicities).
    pub fn total_copies(&self) -> u64 {
        self.total_copies
    }

    /// True once every task on every shard has been judged.
    pub fn is_drained(&self) -> bool {
        self.shards.iter().enumerate().all(|(s, _)| {
            let g = self.lock(s);
            g.is_drained()
        })
    }

    /// Hand out the next copy of work, scanning shards round-robin from
    /// the routing cursor and touching one shard lock at a time.
    ///
    /// `Drained` is only answered when *every* shard reported drained in
    /// this scan — and drained-ness is monotone (a judged task never
    /// un-judges), so the answer cannot be a stale race: any shard with
    /// live work forces `Work` or `Idle`.
    pub fn request_work(&self) -> Issue {
        let n = self.shards.len();
        let start = self.router.fetch_add(1, Ordering::Relaxed) % n;
        let mut any_idle = false;
        for k in 0..n {
            let s = (start + k) % n;
            match self.lock(s).request_work() {
                Issue::Work(a) => return Issue::Work(a),
                Issue::Idle => any_idle = true,
                Issue::Drained => {}
            }
        }
        if any_idle {
            Issue::Idle
        } else {
            Issue::Drained
        }
    }

    /// Accept the return of one in-flight copy, locking only the owning
    /// shard.
    pub fn return_result(&self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError> {
        if task
            .0
            .checked_sub(self.base_id)
            .filter(|&i| i < self.total_tasks)
            .is_none()
        {
            return Err(ServeError::UnknownTask(task));
        }
        let s = (shard_hash(task.0) % self.shards.len() as u64) as usize;
        self.lock(s).return_result(task, copy)
    }

    /// The live session snapshot: the field-wise sum of the per-shard
    /// stats cells (each shard is locked once, in order).
    pub fn stats(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for cell in self.per_shard_stats() {
            total.total_tasks += cell.total_tasks;
            total.activated_tasks += cell.activated_tasks;
            total.completed_tasks += cell.completed_tasks;
            total.total_copies += cell.total_copies;
            total.issued += cell.issued;
            total.returned += cell.returned;
            total.in_flight += cell.in_flight;
            total.requeued += cell.requeued;
            total.lost += cell.lost;
            total.timeouts += cell.timeouts;
            total.retries += cell.retries;
            total.cheats_attempted += cell.cheats_attempted;
            total.cheats_detected += cell.cheats_detected;
            total.wrong_accepted += cell.wrong_accepted;
            total.false_flags += cell.false_flags;
            total.unresolved_tasks += cell.unresolved_tasks;
        }
        total
    }

    /// Each shard's own stats cell, scoped to the slice it owns.
    pub fn per_shard_stats(&self) -> Vec<ServeStats> {
        (0..self.shards.len())
            .map(|s| self.lock(s).stats())
            .collect()
    }

    /// Fold the shards' partial outcomes into one [`CampaignOutcome`].
    pub fn merged_outcome(&self) -> CampaignOutcome {
        let mut out = CampaignOutcome::default();
        for s in 0..self.shards.len() {
            out.merge(&self.lock(s).outcome);
        }
        out
    }

    /// A clone of each shard's current RNG state — the per-shard half of
    /// the determinism contract (drained stores must agree on these).
    pub fn final_rngs(&self) -> Vec<DeterministicRng> {
        (0..self.shards.len())
            .map(|s| self.lock(s).rng.clone())
            .collect()
    }

    /// FNV-1a fold over every shard's RNG position (probed by drawing
    /// from a clone): one number that differs whenever any stream does.
    pub fn stream_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (s, rng) in self.final_rngs().iter_mut().enumerate() {
            fold(s as u64);
            fold(rng.next_raw());
            fold(rng.next_raw());
        }
        h
    }

    /// Running `(timeouts, lost)` totals summed over the shard cells.
    pub fn expiry_counters(&self) -> (u64, u64) {
        let mut timeouts = 0u64;
        let mut lost = 0u64;
        for s in 0..self.shards.len() {
            let g = self.lock(s);
            timeouts += g.outcome.timeouts;
            lost += g.lost;
        }
        (timeouts, lost)
    }

    /// Revert every shard's in-flight copies to pending (shard 0 first,
    /// then shard 1, ...), returning the total reverted.  See
    /// [`AssignmentStore::reset_in_flight`](super::AssignmentStore::reset_in_flight)
    /// for the recovery contract.
    pub fn reset_in_flight(&self) -> u64 {
        (0..self.shards.len())
            .map(|s| self.lock(s).reset_in_flight())
            .sum()
    }

    /// Handle one protocol request against this store, formatting the
    /// reply into caller-owned scratch (each connection brings its own
    /// buffer, so concurrent sessions never contend on reply storage).
    /// Returns true on `shutdown`.
    pub fn handle_into(&self, request: &str, reply: &mut String) -> bool {
        let mut src = self;
        handle_request(&mut src, request, reply)
    }

    /// Drain the store to completion with immediate returns through the
    /// round-robin router — the single-client interleaved drain.
    pub fn drain(&self) {
        loop {
            match self.request_work() {
                Issue::Work(a) => {
                    self.return_result(a.task, a.copy)
                        .expect("drain returned an issued copy");
                }
                Issue::Idle => unreachable!("immediate returns leave nothing in flight"),
                Issue::Drained => break,
            }
        }
    }

    /// The sharded-stream oracle: drain shard 0 to completion, then shard
    /// 1, and so on — no interleaving across shards at all.  Any drained
    /// store on the same (tasks, config, serve, seed) must agree with
    /// this one on merged outcome, per-shard final RNGs, and stats.
    pub fn drain_shard_by_shard(&self) {
        for s in 0..self.shards.len() {
            self.lock(s).drain();
        }
    }

    /// Exhaustively re-derive every counter from the per-copy states and
    /// panic on any mismatch — conservation of multiplicity, per shard
    /// and across shards.  Proptest support; never on the hot path.
    pub fn check_invariants(&self) {
        let mut owned = 0u64;
        let mut copies = 0u64;
        for s in 0..self.shards.len() {
            let g = self.lock(s);
            g.check_invariants();
            owned += g.owned_tasks;
            copies += g.owned_copies;
        }
        assert_eq!(owned, self.total_tasks, "shard ownership does not tile");
        assert_eq!(copies, self.total_copies, "shard copies do not tile");
    }
}

impl WorkStore for &ConcurrentStore {
    fn request_work(&mut self) -> Issue {
        ConcurrentStore::request_work(self)
    }

    fn return_result(&mut self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError> {
        ConcurrentStore::return_result(self, task, copy)
    }

    fn stats(&self) -> ServeStats {
        ConcurrentStore::stats(self)
    }

    fn merged_outcome(&self) -> CampaignOutcome {
        ConcurrentStore::merged_outcome(self)
    }

    fn final_rngs(&self) -> Vec<DeterministicRng> {
        ConcurrentStore::final_rngs(self)
    }

    fn is_drained(&self) -> bool {
        ConcurrentStore::is_drained(self)
    }

    fn expiry_counters(&self) -> (u64, u64) {
        ConcurrentStore::expiry_counters(self)
    }

    fn reset_in_flight(&mut self) -> u64 {
        ConcurrentStore::reset_in_flight(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{assert_drain_equivalent, DrainState};
    use super::*;
    use crate::adversary::{AdversaryModel, CheatStrategy};
    use crate::faults::FaultModel;
    use crate::task::expand_plan;
    use redundancy_core::RealizedPlan;

    fn campaign() -> CampaignConfig {
        CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        )
    }

    fn specs(n: u64) -> Vec<TaskSpec> {
        expand_plan(&RealizedPlan::balanced(n, 0.5).unwrap())
    }

    /// A timeout no drain can trip.
    fn patient(shards: usize) -> ServeConfig {
        ServeConfig {
            faults: FaultModel {
                timeout: 1_000_000_000,
                ..FaultModel::none()
            },
            ..ServeConfig::new(shards)
        }
    }

    #[test]
    fn interleaved_drain_matches_the_shard_by_shard_oracle() {
        let tasks = specs(800);
        for shards in [1usize, 2, 4] {
            let oracle = ConcurrentStore::new(&tasks, &campaign(), &patient(shards), 42).unwrap();
            oracle.drain_shard_by_shard();
            let live = ConcurrentStore::new(&tasks, &campaign(), &patient(shards), 42).unwrap();
            live.drain();
            live.check_invariants();
            assert!(live.is_drained());
            assert_drain_equivalent(&DrainState::of(&&live), &DrainState::of(&&oracle));
            assert_eq!(live.per_shard_stats(), oracle.per_shard_stats());
            assert_eq!(live.stream_checksum(), oracle.stream_checksum());
        }
    }

    #[test]
    fn threaded_drain_matches_the_oracle_at_every_client_count() {
        let tasks = specs(600);
        for shards in [1usize, 4] {
            let oracle = ConcurrentStore::new(&tasks, &campaign(), &patient(shards), 7).unwrap();
            oracle.drain_shard_by_shard();
            for clients in [1usize, 2, 8] {
                let live = ConcurrentStore::new(&tasks, &campaign(), &patient(shards), 7).unwrap();
                std::thread::scope(|scope| {
                    for _ in 0..clients {
                        scope.spawn(|| loop {
                            match live.request_work() {
                                Issue::Work(a) => {
                                    live.return_result(a.task, a.copy)
                                        .expect("issued copy must return");
                                }
                                Issue::Idle => std::thread::yield_now(),
                                Issue::Drained => break,
                            }
                        });
                    }
                });
                live.check_invariants();
                assert!(live.is_drained(), "{clients} clients left work behind");
                assert_drain_equivalent(&DrainState::of(&&live), &DrainState::of(&&oracle));
                assert_eq!(live.stats().render(), oracle.stats().render());
            }
        }
    }

    #[test]
    fn per_shard_stats_cells_sum_to_the_session_snapshot() {
        let tasks = specs(500);
        let store = ConcurrentStore::new(&tasks, &campaign(), &patient(3), 9).unwrap();
        // Mid-session: issue a prefix without returning everything.
        for i in 0..257 {
            let Issue::Work(a) = store.request_work() else {
                panic!("store drained too early");
            };
            if i % 3 != 0 {
                store.return_result(a.task, a.copy).unwrap();
            }
        }
        let cells = store.per_shard_stats();
        let total = store.stats();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells.iter().map(|c| c.issued).sum::<u64>(), total.issued);
        assert_eq!(
            cells.iter().map(|c| c.returned).sum::<u64>(),
            total.returned
        );
        assert_eq!(
            cells.iter().map(|c| c.in_flight).sum::<u64>(),
            total.in_flight
        );
        assert_eq!(
            cells.iter().map(|c| c.total_tasks).sum::<u64>(),
            total.total_tasks
        );
        assert_eq!(total.total_tasks, tasks.len() as u64);
        store.check_invariants();
    }

    #[test]
    fn returns_are_validated_per_shard() {
        let tasks = specs(100);
        let store = ConcurrentStore::new(&tasks, &campaign(), &patient(2), 1).unwrap();
        assert_eq!(
            store.return_result(TaskId(999_999), 0),
            Err(ServeError::UnknownTask(TaskId(999_999)))
        );
        assert_eq!(
            store.return_result(TaskId(0), 0),
            Err(ServeError::NotInFlight {
                task: TaskId(0),
                copy: 0
            })
        );
        let Issue::Work(a) = store.request_work() else {
            panic!("fresh store must have work");
        };
        assert_eq!(
            store.return_result(a.task, a.multiplicity),
            Err(ServeError::CopyOutOfRange {
                task: a.task,
                copy: a.multiplicity,
                multiplicity: a.multiplicity
            })
        );
        assert!(store.return_result(a.task, a.copy).is_ok());
        assert_eq!(
            store.return_result(a.task, a.copy),
            Err(ServeError::NotInFlight {
                task: a.task,
                copy: a.copy
            })
        );
    }

    #[test]
    fn timeouts_conserve_every_copy_per_shard() {
        let tasks = specs(60);
        let serve = ServeConfig {
            faults: FaultModel {
                timeout: 2,
                max_retries: 1,
                ..FaultModel::none()
            },
            ..ServeConfig::new(3)
        };
        let store = ConcurrentStore::new(&tasks, &campaign(), &serve, 5).unwrap();
        let mut guard = 0u64;
        loop {
            match store.request_work() {
                Issue::Drained => break,
                _ => {
                    guard += 1;
                    assert!(guard < 1_000_000, "drain did not terminate");
                }
            }
        }
        store.check_invariants();
        let stats = store.stats();
        assert_eq!(stats.completed_tasks, stats.total_tasks);
        assert_eq!(stats.lost, stats.total_copies);
        assert_eq!(stats.returned, 0);
        assert_eq!(stats.unresolved_tasks, stats.total_tasks);
        assert_eq!(stats.issued, 2 * stats.total_copies);
        assert_eq!(stats.retries, stats.total_copies);
        assert_eq!(stats.timeouts, 2 * stats.total_copies);
    }

    #[test]
    fn protocol_replies_match_the_single_stream_formatter() {
        // The same request script through handle_into and through a
        // ServeSession must produce the same reply *shapes* (the payloads
        // differ: different streams hand out different holdings) — and
        // err/bad-request text must be byte-identical.
        let tasks = specs(4);
        let store = ConcurrentStore::new(&tasks, &campaign(), &patient(2), 3).unwrap();
        let mut reply = String::new();
        assert!(!store.handle_into("request-work", &mut reply));
        assert!(reply.starts_with("work "));
        assert!(!store.handle_into("return-result one two", &mut reply));
        assert_eq!(reply, "err bad-request return-result expects <task> <copy>");
        assert!(!store.handle_into("return-result 999999 0", &mut reply));
        assert_eq!(
            reply,
            "err unknown-task task 999999 is not in this workload"
        );
        assert!(!store.handle_into("frobnicate", &mut reply));
        assert_eq!(reply, "err unknown-verb frobnicate");
        assert!(!store.handle_into("stats", &mut reply));
        assert!(reply.contains("issued 1"));
        assert!(reply.contains("checksum 0x"));
        assert!(store.handle_into("shutdown", &mut reply));
        assert_eq!(reply, "bye");
    }

    #[test]
    fn reset_in_flight_recovers_to_the_uninterrupted_endpoint() {
        let tasks = specs(500);
        for shards in [1usize, 3] {
            let oracle = ConcurrentStore::new(&tasks, &campaign(), &patient(shards), 31).unwrap();
            oracle.drain();
            // Crash scenario: issue a prefix, return a third, lose the rest.
            let store = ConcurrentStore::new(&tasks, &campaign(), &patient(shards), 31).unwrap();
            for i in 0..257 {
                let Issue::Work(a) = store.request_work() else {
                    panic!("store drained too early");
                };
                if i % 3 == 0 {
                    store.return_result(a.task, a.copy).unwrap();
                }
            }
            let before = store.stats();
            let reverted = store.reset_in_flight();
            assert_eq!(reverted, before.in_flight);
            store.check_invariants();
            assert_eq!(store.stats().in_flight, 0);
            store.drain();
            store.check_invariants();
            assert_drain_equivalent(&DrainState::of(&&store), &DrainState::of(&&oracle));
        }
    }

    #[test]
    fn stream_mode_parses_and_renders() {
        assert_eq!("single".parse::<StreamMode>().unwrap(), StreamMode::Single);
        assert_eq!(
            "per-shard".parse::<StreamMode>().unwrap(),
            StreamMode::PerShard
        );
        assert!("both".parse::<StreamMode>().is_err());
        assert_eq!(StreamMode::PerShard.to_string(), "per-shard");
        assert_eq!(StreamMode::default(), StreamMode::Single);
    }

    #[test]
    fn empty_workload_drains_immediately() {
        let store = ConcurrentStore::new(&[], &campaign(), &patient(4), 1).unwrap();
        assert!(store.is_drained());
        assert_eq!(store.request_work(), Issue::Drained);
        assert_eq!(store.merged_outcome().campaigns, 1);
        assert_eq!(store.stats().total_tasks, 0);
    }

    #[test]
    fn shard_streams_are_independent_of_the_shard_count_of_other_work() {
        // At different shard counts the streams legitimately differ; at
        // the *same* shard count with a different seed they must differ
        // too (the derive actually feeds the streams).
        let tasks = specs(200);
        let a = ConcurrentStore::new(&tasks, &campaign(), &patient(2), 1).unwrap();
        let b = ConcurrentStore::new(&tasks, &campaign(), &patient(2), 2).unwrap();
        a.drain();
        b.drain();
        assert_ne!(a.stream_checksum(), b.stream_checksum());
        assert_ne!(a.final_rngs(), b.final_rngs());
    }
}
