//! A dependency-free epoll readiness loop for the TCP serve transports.
//!
//! The threaded transports spend one OS thread per connection and park it
//! in blocking reads; under the 8-client contention soak that is eight
//! threads ping-ponging on socket wakeups.  This module replaces them
//! with a single-threaded nonblocking accept + readiness loop over the
//! raw `epoll_create1` / `epoll_ctl` / `epoll_wait` syscalls — declared
//! here directly against libc's ABI, so the workspace stays free of
//! external crates.  Everything is `#[cfg(target_os = "linux")]`-gated;
//! other platforms keep the threaded fallback
//! ([`available`] reports which world we are in).
//!
//! Per connection the loop owns a read buffer (frames are parsed greedily
//! out of it, zero-copy) and a write buffer (replies are queued and
//! flushed as the socket drains, with `EPOLLOUT` interest registered only
//! while bytes are pending) — the same session-owned-buffer discipline as
//! the PR 8 protocol hot path.  Malformed input earns the same structured
//! `err` frames as [`serve_connection`](super::serve_connection): a
//! truncated frame or an oversized prefix answers `err` and closes after
//! the flush; invalid UTF-8 answers `err` and the session continues.
//!
//! Two run modes, chosen by [`LoopOptions::expected_clients`]:
//!
//! * `Some(n)` — **drive mode** (`--clients n`): accept exactly `n`
//!   connections, stop listening, and return once all of them have
//!   closed.
//! * `None` — **daemon mode** (`--port`): accept until some client sends
//!   the `shutdown` verb, then stop listening and return once the
//!   remaining connections drain.  No throwaway self-connection is needed
//!   to wake the acceptor: the listener is just dropped from the interest
//!   set.

#[cfg(not(target_os = "linux"))]
use std::io;
#[cfg(not(target_os = "linux"))]
use std::net::TcpListener;

/// How the readiness loop decides it is done.  See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopOptions {
    /// `Some(n)`: accept exactly `n` connections and return when all have
    /// closed (drive mode).  `None`: run until a `shutdown` verb, then
    /// drain (daemon mode).
    pub expected_clients: Option<usize>,
}

/// True when this build carries the epoll loop (Linux targets).
pub const fn available() -> bool {
    cfg!(target_os = "linux")
}

/// Run the readiness loop on `listener`, dispatching every complete
/// request frame to `handle` (which formats its reply into the provided
/// scratch and returns true on `shutdown`).  See the module docs for the
/// run modes; this is the non-Linux stub.
#[cfg(not(target_os = "linux"))]
pub fn serve_readiness_loop(
    _listener: TcpListener,
    _opts: LoopOptions,
    _handle: impl FnMut(&str, &mut String) -> bool,
) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the epoll readiness loop is only available on linux",
    ))
}

#[cfg(target_os = "linux")]
pub use linux::serve_readiness_loop;

#[cfg(target_os = "linux")]
mod linux {
    use super::LoopOptions;
    use crate::serve::protocol::{write_frame, MAX_FRAME};
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::{AsRawFd, RawFd};

    // The kernel ABI, declared directly: x86-64 packs epoll_event to
    // match the 32-bit layout, other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// RAII wrapper over one epoll instance.
    struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: fd as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn add(&self, fd: RawFd, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events)
        }

        fn modify(&self, fd: RawFd, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events)
        }

        fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0)
        }

        /// Block until at least one fd is ready; retries EINTR.
        fn wait(&self, events: &mut [EpollEvent]) -> io::Result<usize> {
            loop {
                // SAFETY: the buffer is valid for `len` entries for the
                // duration of the call.
                let rc =
                    unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, -1) };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: we own the fd.
            unsafe { close(self.fd) };
        }
    }

    /// One connection's state: the socket plus its session-owned frame
    /// buffers.  `inbuf` accumulates raw bytes until complete frames can
    /// be parsed out; `outbuf`/`outpos` hold replies awaiting flush.
    struct Conn {
        stream: TcpStream,
        inbuf: Vec<u8>,
        outbuf: Vec<u8>,
        outpos: usize,
        /// Stop reading; close once the write buffer drains (set after a
        /// malformed frame, a `shutdown` reply, or EOF).
        closing: bool,
        /// The interest mask currently registered with epoll.
        interest: u32,
    }

    impl Conn {
        fn new(stream: TcpStream) -> Conn {
            Conn {
                stream,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                outpos: 0,
                closing: false,
                interest: EPOLLIN | EPOLLRDHUP,
            }
        }

        fn queue_reply(&mut self, payload: &str) {
            write_frame(&mut self.outbuf, payload).expect("writing to a Vec cannot fail");
        }

        /// Write queued bytes until the socket would block or the buffer
        /// drains.  An I/O error here abandons the connection.
        fn flush(&mut self) -> io::Result<()> {
            while self.outpos < self.outbuf.len() {
                match self.stream.write(&self.outbuf[self.outpos..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "socket accepted zero bytes",
                        ))
                    }
                    Ok(n) => self.outpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            if self.outpos == self.outbuf.len() {
                self.outbuf.clear();
                self.outpos = 0;
            }
            Ok(())
        }

        fn has_pending_output(&self) -> bool {
            self.outpos < self.outbuf.len()
        }
    }

    /// One frame parsed out of a connection's read buffer.
    enum Parsed {
        /// `inbuf[range]` holds a complete payload.
        Frame(std::ops::Range<usize>),
        /// Not enough bytes yet.
        NeedMore,
        /// The prefix declared more than `MAX_FRAME` bytes.
        Oversize(u32),
    }

    fn parse_frame(inbuf: &[u8], at: usize) -> Parsed {
        let Some(prefix) = inbuf.get(at..at + 4) else {
            return Parsed::NeedMore;
        };
        let len = u32::from_be_bytes(prefix.try_into().expect("4-byte slice"));
        if len as usize > MAX_FRAME {
            return Parsed::Oversize(len);
        }
        let start = at + 4;
        let end = start + len as usize;
        if inbuf.len() < end {
            return Parsed::NeedMore;
        }
        Parsed::Frame(start..end)
    }

    /// Run the readiness loop on `listener`.  See the module docs for the
    /// run modes and the error-frame semantics.
    pub fn serve_readiness_loop(
        listener: TcpListener,
        opts: LoopOptions,
        mut handle: impl FnMut(&str, &mut String) -> bool,
    ) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let ep = Epoll::new()?;
        let lfd = listener.as_raw_fd();
        ep.add(lfd, EPOLLIN)?;
        let mut conns: HashMap<RawFd, Conn> = HashMap::new();
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 64];
        let mut reply = String::new();
        let mut accepted = 0usize;
        let mut accepting = true;
        let mut shutting_down = false;
        loop {
            let done = match opts.expected_clients {
                Some(n) => accepted >= n && conns.is_empty(),
                None => shutting_down && conns.is_empty(),
            };
            if done {
                return Ok(());
            }
            let ready = ep.wait(&mut events)?;
            for ev in &events[..ready] {
                // Copy out of the (possibly packed) event before use.
                let mask = ev.events;
                let fd = ev.data as RawFd;
                if fd == lfd {
                    while accepting {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                stream.set_nonblocking(true)?;
                                let _ = stream.set_nodelay(true);
                                let cfd = stream.as_raw_fd();
                                let conn = Conn::new(stream);
                                ep.add(cfd, conn.interest)?;
                                conns.insert(cfd, conn);
                                accepted += 1;
                                if opts.expected_clients == Some(accepted) {
                                    accepting = false;
                                    ep.delete(lfd)?;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    continue;
                }
                let Some(conn) = conns.get_mut(&fd) else {
                    continue;
                };
                let mut abandon = false;
                if mask & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 && !conn.closing {
                    let mut eof = false;
                    let mut scratch = [0u8; 4096];
                    loop {
                        match conn.stream.read(&mut scratch) {
                            Ok(0) => {
                                eof = true;
                                break;
                            }
                            Ok(n) => conn.inbuf.extend_from_slice(&scratch[..n]),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                abandon = true;
                                break;
                            }
                        }
                    }
                    if !abandon {
                        // Greedily parse and answer every complete frame.
                        let mut at = 0usize;
                        while !conn.closing {
                            match parse_frame(&conn.inbuf, at) {
                                Parsed::NeedMore => break,
                                Parsed::Oversize(len) => {
                                    conn.queue_reply(&format!(
                                        "err oversize-frame {len} exceeds {MAX_FRAME}"
                                    ));
                                    conn.closing = true;
                                    at = conn.inbuf.len();
                                }
                                Parsed::Frame(range) => {
                                    at = range.end;
                                    match std::str::from_utf8(&conn.inbuf[range]) {
                                        Err(_) => conn.queue_reply("err invalid-utf8"),
                                        Ok(text) => {
                                            let shutdown = handle(text, &mut reply);
                                            conn.queue_reply(&reply);
                                            if shutdown {
                                                conn.closing = true;
                                                if opts.expected_clients.is_none() {
                                                    shutting_down = true;
                                                    if accepting {
                                                        accepting = false;
                                                        ep.delete(lfd)?;
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        conn.inbuf.drain(..at);
                        if eof && !conn.closing {
                            if !conn.inbuf.is_empty() {
                                // The stream ended mid-prefix or
                                // mid-payload.
                                conn.queue_reply("err truncated-frame");
                            }
                            conn.closing = true;
                        }
                    }
                }
                if !abandon && conn.flush().is_err() {
                    abandon = true;
                }
                if abandon || (conn.closing && !conn.has_pending_output()) {
                    // Dropping the stream closes the fd, which also
                    // removes it from the epoll interest set.
                    conns.remove(&fd);
                    continue;
                }
                let mut want = 0u32;
                if !conn.closing {
                    want |= EPOLLIN | EPOLLRDHUP;
                }
                if conn.has_pending_output() {
                    want |= EPOLLOUT;
                }
                if want != conn.interest {
                    conn.interest = want;
                    ep.modify(fd, want)?;
                }
            }
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryModel, CheatStrategy};
    use crate::engine::CampaignConfig;
    use crate::serve::concurrent::ConcurrentStore;
    use crate::serve::protocol::{decode_frames, script_frames, ServeSession, MAX_FRAME};
    use crate::serve::store::ServeConfig;
    use crate::task::expand_plan;
    use redundancy_core::RealizedPlan;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    fn campaign() -> CampaignConfig {
        CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        )
    }

    fn session(n: u64, mult: usize, seed: u64) -> ServeSession {
        let tasks = expand_plan(&RealizedPlan::k_fold(n, mult, 0.5).unwrap());
        ServeSession::new(&tasks, &campaign(), &ServeConfig::new(2), seed).unwrap()
    }

    /// Run a scripted client against a readiness loop in drive mode and
    /// return the decoded reply frames.
    fn scripted_exchange(script: &[&str], mut session: ServeSession) -> Vec<String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = script_frames(script);
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&bytes).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut out = Vec::new();
            stream.read_to_end(&mut out).unwrap();
            out
        });
        serve_readiness_loop(
            listener,
            LoopOptions {
                expected_clients: Some(1),
            },
            |req, reply| {
                let (text, shutdown) = session.handle_buffered(req);
                reply.clear();
                reply.push_str(text);
                shutdown
            },
        )
        .unwrap();
        decode_frames(&client.join().unwrap())
    }

    #[test]
    fn drive_mode_serves_the_pinned_script() {
        // Same script and session as the protocol test — the epoll
        // transport must produce the same reply bytes as serve_connection.
        let replies = scripted_exchange(
            &[
                "request-work",
                "return-result 0 0",
                "request-work",
                "return-result 0 1",
                "request-work",
                "request-work",
                "return-result 1 1",
                "return-result 1 0",
                "request-work",
                "shutdown",
            ],
            session(2, 2, 1),
        );
        assert_eq!(
            replies,
            vec![
                "work 0 0 2",
                "ok",
                "work 0 1 2",
                "ok complete",
                "work 1 0 2",
                "work 1 1 2",
                "ok",
                "ok complete",
                "drained",
                "bye",
            ]
        );
    }

    #[test]
    fn malformed_frames_answer_err_and_close() {
        for (bytes, want) in [
            (vec![0x00u8, 0x01], "err truncated-frame".to_string()),
            (
                vec![0xFFu8, 0xFF, 0xFF, 0xFF],
                format!("err oversize-frame {} exceeds {MAX_FRAME}", u32::MAX),
            ),
        ] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(&bytes).unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut out = Vec::new();
                stream.read_to_end(&mut out).unwrap();
                out
            });
            let mut s = session(1, 2, 1);
            serve_readiness_loop(
                listener,
                LoopOptions {
                    expected_clients: Some(1),
                },
                |req, reply| {
                    let (text, shutdown) = s.handle_buffered(req);
                    reply.clear();
                    reply.push_str(text);
                    shutdown
                },
            )
            .unwrap();
            assert_eq!(decode_frames(&client.join().unwrap()), vec![want]);
        }
    }

    #[test]
    fn invalid_utf8_answers_err_and_continues() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&3u32.to_be_bytes());
            bytes.extend_from_slice(&[0xFF, 0xFE, 0xFD]);
            bytes.extend_from_slice(&script_frames(&["shutdown"]));
            stream.write_all(&bytes).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut out = Vec::new();
            stream.read_to_end(&mut out).unwrap();
            out
        });
        let mut s = session(1, 2, 1);
        serve_readiness_loop(
            listener,
            LoopOptions {
                expected_clients: Some(1),
            },
            |req, reply| {
                let (text, shutdown) = s.handle_buffered(req);
                reply.clear();
                reply.push_str(text);
                shutdown
            },
        )
        .unwrap();
        assert_eq!(
            decode_frames(&client.join().unwrap()),
            vec!["err invalid-utf8", "bye"]
        );
    }

    #[test]
    fn daemon_mode_exits_on_shutdown_without_a_fake_client() {
        // No expected client count: the loop must return purely because
        // the shutdown verb stopped the acceptor and the last connection
        // drained — the old threaded daemon needed a throwaway
        // self-connection for this.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(&script_frames(&["request-work", "shutdown"]))
                .unwrap();
            let mut out = Vec::new();
            stream.read_to_end(&mut out).unwrap();
            out
        });
        let mut s = session(2, 2, 3);
        serve_readiness_loop(listener, LoopOptions::default(), |req, reply| {
            let (text, shutdown) = s.handle_buffered(req);
            reply.clear();
            reply.push_str(text);
            shutdown
        })
        .unwrap();
        let replies = decode_frames(&client.join().unwrap());
        assert_eq!(replies.len(), 2);
        assert!(replies[0].starts_with("work "));
        assert_eq!(replies[1], "bye");
    }

    #[test]
    fn concurrent_clients_drain_a_per_shard_store_to_the_oracle_state() {
        let tasks = expand_plan(&RealizedPlan::balanced(400, 0.5).unwrap());
        let patient = ServeConfig {
            faults: crate::faults::FaultModel {
                timeout: 1_000_000_000,
                ..crate::faults::FaultModel::none()
            },
            ..ServeConfig::new(4)
        };
        let oracle = ConcurrentStore::new(&tasks, &campaign(), &patient, 11).unwrap();
        oracle.drain_shard_by_shard();

        let store = ConcurrentStore::new(&tasks, &campaign(), &patient, 11).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    loop {
                        crate::serve::protocol::write_frame(&mut stream, "request-work").unwrap();
                        let reply = match crate::serve::protocol::read_frame(&mut stream).unwrap() {
                            crate::serve::protocol::Frame::Message(m) => {
                                String::from_utf8(m).unwrap()
                            }
                            other => panic!("unexpected frame {other:?}"),
                        };
                        if reply == "drained" {
                            break;
                        }
                        if reply == "idle" {
                            continue;
                        }
                        let mut parts = reply.split_whitespace();
                        assert_eq!(parts.next(), Some("work"));
                        let task: u64 = parts.next().unwrap().parse().unwrap();
                        let copy: u32 = parts.next().unwrap().parse().unwrap();
                        crate::serve::protocol::write_frame(
                            &mut stream,
                            &format!("return-result {task} {copy}"),
                        )
                        .unwrap();
                        match crate::serve::protocol::read_frame(&mut stream).unwrap() {
                            crate::serve::protocol::Frame::Message(m) => {
                                let ack = String::from_utf8(m).unwrap();
                                assert!(ack.starts_with("ok"), "unexpected ack {ack}");
                            }
                            other => panic!("unexpected frame {other:?}"),
                        }
                    }
                })
            })
            .collect();
        serve_readiness_loop(
            listener,
            LoopOptions {
                expected_clients: Some(4),
            },
            |req, reply| store.handle_into(req, reply),
        )
        .unwrap();
        for c in clients {
            c.join().unwrap();
        }
        assert!(store.is_drained());
        store.check_invariants();
        assert_eq!(store.merged_outcome(), oracle.merged_outcome());
        assert_eq!(store.final_rngs(), oracle.final_rngs());
        assert_eq!(store.stats().render(), oracle.stats().render());
    }
}
