//! The hand-rolled wire protocol of `redundancy serve`.
//!
//! Frames are a 4-byte big-endian length prefix followed by a UTF-8 text
//! payload of at most [`MAX_FRAME`] bytes.  Requests are single lines —
//!
//! | request                     | response                               |
//! |-----------------------------|----------------------------------------|
//! | `request-work`              | `work <task> <copy> <mult>` \| `idle` \| `drained` |
//! | `return-result <task> <copy>` | `ok` \| `ok complete`                |
//! | `stats`                     | the deterministic key-value dump       |
//! | `shutdown`                  | `bye` (and the session ends)           |
//!
//! — and every failure is a structured `err <code> <detail>` frame, never
//! a hang or a panic: an unknown verb or bad arguments answer `err` and
//! the session continues; a truncated or oversized frame answers `err`
//! and the session ends (the stream cannot be resynchronized).  A clean
//! EOF before a length prefix ends the session silently.
//!
//! The transport is generic over [`Read`]/[`Write`], so the same loop
//! serves stdio (deterministic, byte-fixture-testable), in-memory buffers
//! (the integration tests), and per-connection TCP sockets (the CLI).

use std::io::{self, Read, Write};

use super::store::{AssignmentStore, Issue, ReturnAck, ServeConfig, ServeError, ServeStats};
use super::WorkStore;
use crate::engine::CampaignConfig;
use crate::outcome::CampaignOutcome;
use crate::task::{TaskId, TaskSpec};
use redundancy_stats::DeterministicRng;

/// Maximum frame payload, in bytes.  Requests are one short line and the
/// largest response is the stats dump, so anything bigger is a corrupt or
/// hostile stream.
pub const MAX_FRAME: usize = 4096;

/// A decoded incoming frame (or the reason there isn't one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete payload.
    Message(Vec<u8>),
    /// Clean end of stream before any prefix byte.
    Eof,
    /// The stream ended mid-prefix or mid-payload.
    Truncated,
    /// The prefix declared a payload larger than [`MAX_FRAME`].
    Oversize(u32),
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    debug_assert!(bytes.len() <= MAX_FRAME, "oversized outgoing frame");
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)
}

/// Read up to `buf.len()` bytes, stopping early only at EOF; returns how
/// many bytes were read.
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// What [`read_frame_into`] found, with the payload left in the caller's
/// buffer instead of a fresh allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A complete payload now fills the buffer.
    Message,
    /// Clean end of stream before any prefix byte.
    Eof,
    /// The stream ended mid-prefix or mid-payload.
    Truncated,
    /// The prefix declared a payload larger than [`MAX_FRAME`].
    Oversize(u32),
}

/// Read one frame into `payload` (cleared first), reusing its capacity
/// across calls — the transport loop's steady state allocates nothing.
/// Never blocks past the bytes the prefix promised and never reads the
/// payload of an oversized frame.
pub fn read_frame_into<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> io::Result<FrameKind> {
    payload.clear();
    let mut prefix = [0u8; 4];
    match read_up_to(r, &mut prefix)? {
        0 => return Ok(FrameKind::Eof),
        4 => {}
        _ => return Ok(FrameKind::Truncated),
    }
    let len = u32::from_be_bytes(prefix);
    if len as usize > MAX_FRAME {
        return Ok(FrameKind::Oversize(len));
    }
    payload.resize(len as usize, 0);
    if read_up_to(r, payload)? < payload.len() {
        return Ok(FrameKind::Truncated);
    }
    Ok(FrameKind::Message)
}

/// Read one frame into a fresh buffer (allocating wrapper over
/// [`read_frame_into`] for callers outside the hot loop).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut payload = Vec::new();
    Ok(match read_frame_into(r, &mut payload)? {
        FrameKind::Message => Frame::Message(payload),
        FrameKind::Eof => Frame::Eof,
        FrameKind::Truncated => Frame::Truncated,
        FrameKind::Oversize(len) => Frame::Oversize(len),
    })
}

/// One request's outcome: the response text plus whether the session ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Response payload to frame back to the client.
    pub text: String,
    /// True after `shutdown`: the transport loop should stop.
    pub shutdown: bool,
}

/// How a transport loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client sent `shutdown`.
    Shutdown,
    /// The stream closed cleanly between frames.
    Eof,
    /// A malformed frame (truncated or oversized) ended the session after
    /// a structured `err` response.
    Malformed,
}

/// Parse one request line and format the response into `reply` (cleared
/// first); returns true when the session should end (`shutdown`).  Any
/// [`WorkStore`] — the single-stream [`ServeSession`], the
/// per-shard-stream [`&ConcurrentStore`](super::ConcurrentStore), or a
/// journaling wrapper over either — can sit behind it, and this is the
/// *only* place request text is parsed and reply text is formatted, so
/// the store flavors cannot drift byte-wise.  The reply bytes for every
/// verb are pinned by the protocol tests and the golden snapshots.
pub fn handle_request<S: WorkStore>(src: &mut S, request: &str, reply: &mut String) -> bool {
    use std::fmt::Write as _;
    reply.clear();
    let mut shutdown = false;
    let mut parts = request.split_whitespace();
    match parts.next() {
        Some("request-work") => match src.request_work() {
            Issue::Work(a) => {
                let _ = write!(reply, "work {} {} {}", a.task.0, a.copy, a.multiplicity);
            }
            Issue::Idle => reply.push_str("idle"),
            Issue::Drained => reply.push_str("drained"),
        },
        Some("return-result") => {
            if let (Some(task), Some(copy), None) = (
                parts.next().and_then(|t| t.parse::<u64>().ok()),
                parts.next().and_then(|c| c.parse::<u32>().ok()),
                parts.next(),
            ) {
                match src.return_result(TaskId(task), copy) {
                    Ok(ack) if ack.task_complete => reply.push_str("ok complete"),
                    Ok(_) => reply.push_str("ok"),
                    Err(e) => {
                        let _ = write!(reply, "err {} {e}", e.code());
                    }
                }
            } else {
                reply.push_str("err bad-request return-result expects <task> <copy>");
            }
        }
        Some("stats") => {
            let stats = src.stats().render();
            reply.push_str(&stats);
        }
        Some("shutdown") => {
            src.note_shutdown();
            reply.push_str("bye");
            shutdown = true;
        }
        Some(verb) => {
            let _ = write!(reply, "err unknown-verb {verb}");
        }
        None => reply.push_str("err unknown-verb"),
    }
    shutdown
}

/// A single-client session: the store plus the session RNG, with requests
/// handled as protocol text.  The CLI's TCP listener shares one session
/// across connections behind a mutex; the stdio and in-memory transports
/// own it directly.
#[derive(Debug)]
pub struct ServeSession {
    /// The live assignment store.
    pub store: AssignmentStore,
    /// The session RNG every activation draws from.
    pub rng: DeterministicRng,
    /// Reply scratch reused by [`handle_buffered`](Self::handle_buffered):
    /// after warm-up the per-request path allocates nothing.
    reply_buf: String,
}

impl ServeSession {
    /// A fresh session over `tasks`, seeded deterministically.
    pub fn new(
        tasks: &[TaskSpec],
        config: &CampaignConfig,
        serve: &ServeConfig,
        seed: u64,
    ) -> Result<Self, String> {
        Ok(ServeSession {
            store: AssignmentStore::new(tasks, config, serve)?,
            rng: DeterministicRng::new(seed),
            reply_buf: String::new(),
        })
    }

    /// Handle one request line, producing an owned response (allocating
    /// wrapper over [`handle_buffered`](Self::handle_buffered) for callers
    /// that need to hold the reply past the next request).
    pub fn handle(&mut self, request: &str) -> Reply {
        let (text, shutdown) = self.handle_buffered(request);
        Reply {
            text: text.to_owned(),
            shutdown,
        }
    }

    /// Handle one request line into the session's reusable reply buffer,
    /// returning the response text and whether the session should end.
    /// The borrow ends at the next call, so hot loops (the bench drain,
    /// the transport loop) pay zero allocations per request.
    pub fn handle_buffered(&mut self, request: &str) -> (&str, bool) {
        let mut reply = std::mem::take(&mut self.reply_buf);
        let shutdown = handle_request(self, request, &mut reply);
        self.reply_buf = reply;
        (&self.reply_buf, shutdown)
    }
}

impl WorkStore for ServeSession {
    fn request_work(&mut self) -> Issue {
        self.store.request_work(&mut self.rng)
    }

    fn return_result(&mut self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError> {
        self.store.return_result(task, copy)
    }

    fn stats(&self) -> ServeStats {
        self.store.stats()
    }

    fn merged_outcome(&self) -> CampaignOutcome {
        self.store.merged_outcome()
    }

    fn final_rngs(&self) -> Vec<DeterministicRng> {
        vec![self.rng.clone()]
    }

    fn is_drained(&self) -> bool {
        self.store.is_drained()
    }

    fn expiry_counters(&self) -> (u64, u64) {
        self.store.expiry_counters()
    }

    fn reset_in_flight(&mut self) -> u64 {
        self.store.reset_in_flight()
    }
}

/// Run the framed request/response loop over any byte stream, delegating
/// each decoded request to `handle` (typically [`ServeSession::handle`],
/// possibly behind a lock).  Responses are flushed per frame so interactive
/// transports never stall.
pub fn serve_connection<R: Read, W: Write>(
    r: &mut R,
    w: &mut W,
    mut handle: impl FnMut(&str) -> Reply,
) -> io::Result<SessionEnd> {
    // One decode buffer for the whole connection: after the largest frame
    // has been seen, the read side stops allocating.
    let mut payload = Vec::new();
    loop {
        match read_frame_into(r, &mut payload)? {
            FrameKind::Eof => return Ok(SessionEnd::Eof),
            FrameKind::Truncated => {
                write_frame(w, "err truncated-frame")?;
                w.flush()?;
                return Ok(SessionEnd::Malformed);
            }
            FrameKind::Oversize(len) => {
                write_frame(w, &format!("err oversize-frame {len} exceeds {MAX_FRAME}"))?;
                w.flush()?;
                return Ok(SessionEnd::Malformed);
            }
            FrameKind::Message => {
                let Ok(text) = std::str::from_utf8(&payload) else {
                    write_frame(w, "err invalid-utf8")?;
                    w.flush()?;
                    continue;
                };
                let reply = handle(text);
                write_frame(w, &reply.text)?;
                w.flush()?;
                if reply.shutdown {
                    return Ok(SessionEnd::Shutdown);
                }
            }
        }
    }
}

/// Encode a scripted client session as raw frame bytes — the integration
/// tests and the CI stdio smoke build their byte fixtures with this.
pub fn script_frames(requests: &[&str]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for req in requests {
        write_frame(&mut bytes, req).expect("writing to a Vec cannot fail");
    }
    bytes
}

/// Decode a response stream into its frame payloads (lossy UTF-8), for
/// asserting scripted sessions byte-for-byte.
pub fn decode_frames(mut bytes: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    loop {
        match read_frame(&mut bytes).expect("reading from a slice cannot fail") {
            Frame::Message(payload) => out.push(String::from_utf8_lossy(&payload).into_owned()),
            Frame::Eof => return out,
            Frame::Truncated => {
                out.push("<truncated>".into());
                return out;
            }
            Frame::Oversize(len) => {
                out.push(format!("<oversize {len}>"));
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryModel, CheatStrategy};
    use crate::task::expand_plan;
    use redundancy_core::RealizedPlan;

    fn session(n: u64, mult: usize, seed: u64) -> ServeSession {
        let tasks = expand_plan(&RealizedPlan::k_fold(n, mult, 0.5).unwrap());
        let config = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        ServeSession::new(&tasks, &config, &ServeConfig::new(2), seed).unwrap()
    }

    #[test]
    fn frame_round_trip() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, "request-work").unwrap();
        write_frame(&mut bytes, "").unwrap();
        let mut r: &[u8] = &bytes;
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Frame::Message(b"request-work".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Message(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Eof);
    }

    #[test]
    fn read_frame_into_reuses_the_buffer_and_matches_read_frame() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, "a longer first frame").unwrap();
        write_frame(&mut bytes, "short").unwrap();
        write_frame(&mut bytes, "").unwrap();
        let mut r: &[u8] = &bytes;
        let mut buf = Vec::new();
        assert_eq!(
            read_frame_into(&mut r, &mut buf).unwrap(),
            FrameKind::Message
        );
        assert_eq!(buf, b"a longer first frame");
        let cap = buf.capacity();
        assert_eq!(
            read_frame_into(&mut r, &mut buf).unwrap(),
            FrameKind::Message
        );
        assert_eq!(buf, b"short");
        assert_eq!(buf.capacity(), cap, "shorter frame must not reallocate");
        assert_eq!(
            read_frame_into(&mut r, &mut buf).unwrap(),
            FrameKind::Message
        );
        assert!(buf.is_empty());
        assert_eq!(read_frame_into(&mut r, &mut buf).unwrap(), FrameKind::Eof);
        // The malformed classifications agree with the allocating reader.
        let mut t: &[u8] = &[0x00, 0x00];
        assert_eq!(
            read_frame_into(&mut t, &mut buf).unwrap(),
            FrameKind::Truncated
        );
        let mut o: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert_eq!(
            read_frame_into(&mut o, &mut buf).unwrap(),
            FrameKind::Oversize(u32::MAX)
        );
    }

    #[test]
    fn handle_buffered_matches_handle_across_a_session() {
        let mut buffered = session(2, 2, 5);
        let mut owned = session(2, 2, 5);
        for req in [
            "request-work",
            "stats",
            "return-result 0 0",
            "return-result 0 0",
            "bogus verb",
            "request-work",
            "shutdown",
        ] {
            let want = owned.handle(req);
            let (text, shutdown) = buffered.handle_buffered(req);
            assert_eq!(text, want.text, "request {req}");
            assert_eq!(shutdown, want.shutdown, "request {req}");
        }
    }

    #[test]
    fn malformed_frames_are_classified() {
        // Truncated prefix.
        let mut r: &[u8] = &[0x00, 0x00];
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Truncated);
        // Truncated payload.
        let mut r: &[u8] = &[0x00, 0x00, 0x00, 0x05, b'h', b'i'];
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Truncated);
        // Oversize prefix: payload is never read.
        let mut r: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Oversize(u32::MAX));
    }

    #[test]
    fn scripted_session_drains_a_tiny_workload() {
        // 2 tasks x 2 copies: the dispatch order is fixed, so the whole
        // exchange is scriptable.
        let mut s = session(2, 2, 1);
        let script = [
            "request-work",
            "return-result 0 0",
            "request-work",
            "return-result 0 1",
            "request-work",
            "request-work",
            "return-result 1 1",
            "return-result 1 0",
            "request-work",
            "shutdown",
        ];
        let mut input: &[u8] = &script_frames(&script)[..];
        let mut output = Vec::new();
        let end = serve_connection(&mut input, &mut output, |req| s.handle(req)).unwrap();
        assert_eq!(end, SessionEnd::Shutdown);
        let replies = decode_frames(&output);
        assert_eq!(
            replies,
            vec![
                "work 0 0 2",
                "ok",
                "work 0 1 2",
                "ok complete",
                "work 1 0 2",
                "work 1 1 2",
                "ok",
                "ok complete",
                "drained",
                "bye",
            ]
        );
        assert!(s.store.is_drained());
    }

    #[test]
    fn unknown_verbs_and_bad_arguments_answer_err_and_continue() {
        let mut s = session(1, 2, 1);
        assert_eq!(
            s.handle("frobnicate now").text,
            "err unknown-verb frobnicate"
        );
        assert_eq!(s.handle("").text, "err unknown-verb");
        assert_eq!(
            s.handle("return-result one two").text,
            "err bad-request return-result expects <task> <copy>"
        );
        assert_eq!(
            s.handle("return-result 0").text,
            "err bad-request return-result expects <task> <copy>"
        );
        assert_eq!(
            s.handle("return-result 0 0 0").text,
            "err bad-request return-result expects <task> <copy>"
        );
        // The session is still alive and serves work.
        assert!(s.handle("request-work").text.starts_with("work "));
        assert_eq!(
            s.handle("return-result 99 0").text,
            "err unknown-task task 99 is not in this workload"
        );
    }

    #[test]
    fn truncated_and_oversize_frames_end_the_session_with_err() {
        let mut s = session(1, 2, 1);
        let mut input: &[u8] = &[0x00, 0x01];
        let mut output = Vec::new();
        let end = serve_connection(&mut input, &mut output, |req| s.handle(req)).unwrap();
        assert_eq!(end, SessionEnd::Malformed);
        assert_eq!(decode_frames(&output), vec!["err truncated-frame"]);

        let mut input: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        let mut output = Vec::new();
        let end = serve_connection(&mut input, &mut output, |req| s.handle(req)).unwrap();
        assert_eq!(end, SessionEnd::Malformed);
        assert_eq!(
            decode_frames(&output),
            vec![format!(
                "err oversize-frame {} exceeds {MAX_FRAME}",
                u32::MAX
            )]
        );
    }

    #[test]
    fn invalid_utf8_answers_err_and_continues() {
        let mut s = session(1, 2, 1);
        let mut input = Vec::new();
        input.extend_from_slice(&3u32.to_be_bytes());
        input.extend_from_slice(&[0xFF, 0xFE, 0xFD]);
        write_frame(&mut input, "shutdown").unwrap();
        let mut r: &[u8] = &input;
        let mut output = Vec::new();
        let end = serve_connection(&mut r, &mut output, |req| s.handle(req)).unwrap();
        assert_eq!(end, SessionEnd::Shutdown);
        assert_eq!(decode_frames(&output), vec!["err invalid-utf8", "bye"]);
    }

    #[test]
    fn stats_verb_serves_the_live_snapshot() {
        let mut s = session(3, 2, 7);
        let before = s.handle("stats").text;
        assert!(before.contains("tasks-total 3"));
        assert!(before.contains("issued 0"));
        let _ = s.handle("request-work");
        let after = s.handle("stats").text;
        assert!(after.contains("issued 1"));
        assert!(after.contains("in-flight 1"));
        assert_eq!(after, s.store.stats().render());
    }

    #[test]
    fn eof_between_frames_is_a_clean_end() {
        let mut s = session(1, 2, 1);
        let mut input: &[u8] = &script_frames(&["request-work"])[..];
        let mut output = Vec::new();
        let end = serve_connection(&mut input, &mut output, |req| s.handle(req)).unwrap();
        assert_eq!(end, SessionEnd::Eof);
        assert_eq!(decode_frames(&output).len(), 1);
    }
}
