//! The live supervisor: `redundancy serve`'s sharded assignment store and
//! its length-prefixed wire protocol.
//!
//! Everything else in this crate runs the paper's redundancy scheme as a
//! *batch*: expand the plan, loop the kernel, read the tallies.  This
//! module runs it as a *system* — a long-lived supervisor that hands out
//! task copies on demand, tracks them in flight with tick-based timeouts,
//! judges returns incrementally, and answers a tiny request/response
//! protocol ([`protocol`]) over any byte stream.
//!
//! Two store flavors implement the same [`WorkSource`] protocol surface,
//! trading different determinism contracts for different concurrency:
//!
//! * [`store`] — the **single-stream** [`AssignmentStore`]: one session
//!   RNG, centralized dispatch.  A drained session reproduces the batch
//!   kernel **bit for bit** — same
//!   [`CampaignOutcome`](crate::CampaignOutcome), same final RNG state —
//!   at any shard count and under any client interleaving.  This is the
//!   bit-compat oracle the `ext_serve` snapshots pin; clients serialize
//!   on one lock.
//! * [`concurrent`] — the **per-shard-stream** [`ConcurrentStore`]: each
//!   shard owns its own lock, free-list, sampler caches, stats cell, and
//!   a `SeedSequence::derive(shard)` RNG stream, so clients on different
//!   shards proceed in parallel.  A drained store's merged outcome,
//!   per-shard final RNGs, and stats are byte-identical across any
//!   client count and request schedule at a fixed shard count; the
//!   matching oracle drains shard-by-shard.
//!
//! [`epoll`] supplies the Linux readiness-loop transport both TCP serve
//! modes run on (with the threaded loop kept as the portable fallback).

pub mod concurrent;
pub mod epoll;
pub mod protocol;
pub mod store;

pub use concurrent::{ConcurrentStore, StreamMode};
pub use epoll::{serve_readiness_loop, LoopOptions};
pub use protocol::{
    decode_frames, handle_request, read_frame, read_frame_into, script_frames, serve_connection,
    write_frame, Frame, FrameKind, Reply, ServeSession, SessionEnd, WorkSource, MAX_FRAME,
};
pub use store::{
    drain_session, serve_experiment, Assignment, AssignmentStore, Issue, ReturnAck, ServeConfig,
    ServeError, ServeStats,
};
