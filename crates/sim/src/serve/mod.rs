//! The live supervisor: `redundancy serve`'s sharded assignment store and
//! its length-prefixed wire protocol.
//!
//! Everything else in this crate runs the paper's redundancy scheme as a
//! *batch*: expand the plan, loop the kernel, read the tallies.  This
//! module runs it as a *system* — a long-lived supervisor that hands out
//! task copies on demand, tracks them in flight with tick-based timeouts,
//! judges returns incrementally, and answers a tiny request/response
//! protocol ([`protocol`]) over any byte stream.
//!
//! Two store flavors implement the same [`WorkStore`] surface, trading
//! different determinism contracts for different concurrency:
//!
//! * [`store`] — the **single-stream** [`AssignmentStore`]: one session
//!   RNG, centralized dispatch.  A drained session reproduces the batch
//!   kernel **bit for bit** — same
//!   [`CampaignOutcome`](crate::CampaignOutcome), same final RNG state —
//!   at any shard count and under any client interleaving.  This is the
//!   bit-compat oracle the `ext_serve` snapshots pin; clients serialize
//!   on one lock.
//! * [`concurrent`] — the **per-shard-stream** [`ConcurrentStore`]: each
//!   shard owns its own lock, free-list, sampler caches, stats cell, and
//!   a `SeedSequence::derive(shard)` RNG stream, so clients on different
//!   shards proceed in parallel.  A drained store's merged outcome,
//!   per-shard final RNGs, and stats are byte-identical across any
//!   client count and request schedule at a fixed shard count; the
//!   matching oracle drains shard-by-shard.
//!
//! [`epoll`] supplies the Linux readiness-loop transport both TCP serve
//! modes run on (with the threaded loop kept as the portable fallback),
//! and [`journal`] layers an append-only, checksummed event log over any
//! [`WorkStore`] so a crashed session can be [`replay`]ed back to a
//! bit-identical store.

pub mod concurrent;
pub mod epoll;
pub mod journal;
pub mod protocol;
pub mod store;

pub use concurrent::{ConcurrentStore, StreamMode};
pub use epoll::{serve_readiness_loop, LoopOptions};
pub use journal::{
    parse_journal, replay, replay_with, workload_fingerprint, JournalError, JournalSink,
    JournalWriter, JournaledStore, ParsedJournal, Record, ReplayOptions, Replayed, SessionHeader,
    SharedBuf, SyncPolicy,
};
pub use protocol::{
    decode_frames, handle_request, read_frame, read_frame_into, script_frames, serve_connection,
    write_frame, Frame, FrameKind, Reply, ServeSession, SessionEnd, MAX_FRAME,
};
pub use store::{
    drain_session, serve_experiment, Assignment, AssignmentStore, Issue, ReturnAck, ServeConfig,
    ServeError, ServeStats,
};

use crate::engine::CampaignConfig;
use crate::outcome::CampaignOutcome;
use crate::task::{TaskId, TaskSpec};
use redundancy_stats::DeterministicRng;

/// Everything a serve transport or driver needs from a live store: the
/// protocol verbs (issue/return/stats), the drained-state surface the
/// determinism oracles compare (outcome, final RNG streams, stats), and
/// the recovery hooks the journal layer wraps.
///
/// Both store flavors implement it — [`ServeSession`] (single stream,
/// `&mut self` behind one lock) and [`&ConcurrentStore`](ConcurrentStore)
/// (per-shard locks, so the *shared reference* is the mutable handle) —
/// as do the [`StoreEnum`] dispatcher and the journaling decorator
/// [`JournaledStore`], so [`handle_request`] and the CLI's serve driver
/// are written once, generically.
pub trait WorkStore {
    /// Hand out the next copy of work (advancing the tick clock, which
    /// expires overdue in-flight copies).
    fn request_work(&mut self) -> Issue;

    /// Accept the return of one in-flight copy.
    fn return_result(&mut self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError>;

    /// The live session snapshot.
    fn stats(&self) -> ServeStats;

    /// Fold the partial outcomes into one [`CampaignOutcome`].
    fn merged_outcome(&self) -> CampaignOutcome;

    /// A clone of every RNG stream's current state: one element for the
    /// single-stream store, one per shard for the concurrent store.  The
    /// drained-state oracles (and journal replay) compare these exactly.
    fn final_rngs(&self) -> Vec<DeterministicRng>;

    /// True once every task has been judged.
    fn is_drained(&self) -> bool;

    /// Running `(timeouts, lost)` totals.  The journal layer snapshots
    /// these around [`request_work`](Self::request_work) so timeout
    /// expiries — the one state change a tick makes besides the issue
    /// itself — land in the log as explicit deltas.
    fn expiry_counters(&self) -> (u64, u64);

    /// Revert every in-flight copy to pending and re-queue it under its
    /// current attempt number (no timeout or retry is charged), returning
    /// how many copies were reverted.  Recovery calls this after a crash:
    /// the issued copies died with their clients, and re-queueing them
    /// as-is lets a recovered drain end in exactly the state an
    /// uninterrupted drain would have reached.
    fn reset_in_flight(&mut self) -> u64;

    /// Hook invoked by [`handle_request`] when a client sends `shutdown`
    /// (the journal layer logs and flushes here).  Default: no-op.
    fn note_shutdown(&mut self) {}

    /// Drain to completion, returning every copy as soon as it is issued.
    fn drain(&mut self) {
        loop {
            match self.request_work() {
                Issue::Work(a) => {
                    self.return_result(a.task, a.copy)
                        .expect("drain returned an issued copy");
                }
                Issue::Idle => continue,
                Issue::Drained => break,
            }
        }
    }
}

/// A store of either flavor behind one concrete type, so drivers that
/// choose the flavor at runtime (the CLI, journal [`replay`]) don't need
/// trait objects over [`WorkStore`]'s non-object-safe surface.
// One store exists per session and it is never moved on the hot path,
// so the size gap between the inline `ServeSession` and the
// mutex-backed `ConcurrentStore` costs nothing worth a Box.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum StoreEnum {
    /// The single-stream [`ServeSession`] (store + session RNG).
    Single(ServeSession),
    /// The per-shard-stream [`ConcurrentStore`].
    PerShard(ConcurrentStore),
}

impl StoreEnum {
    /// Build the store flavor `mode` selects over `tasks`.
    pub fn new(
        tasks: &[TaskSpec],
        config: &CampaignConfig,
        serve: &ServeConfig,
        seed: u64,
        mode: StreamMode,
    ) -> Result<Self, String> {
        Ok(match mode {
            StreamMode::Single => StoreEnum::Single(ServeSession::new(tasks, config, serve, seed)?),
            StreamMode::PerShard => {
                StoreEnum::PerShard(ConcurrentStore::new(tasks, config, serve, seed)?)
            }
        })
    }

    /// Which stream mode this store runs under.
    pub fn mode(&self) -> StreamMode {
        match self {
            StoreEnum::Single(_) => StreamMode::Single,
            StoreEnum::PerShard(_) => StreamMode::PerShard,
        }
    }

    /// The concurrent store, if this is the per-shard flavor.
    pub fn as_concurrent(&self) -> Option<&ConcurrentStore> {
        match self {
            StoreEnum::Single(_) => None,
            StoreEnum::PerShard(c) => Some(c),
        }
    }

    /// Unwrap into the concurrent store, if this is the per-shard flavor.
    pub fn into_concurrent(self) -> Option<ConcurrentStore> {
        match self {
            StoreEnum::Single(_) => None,
            StoreEnum::PerShard(c) => Some(c),
        }
    }
}

impl WorkStore for StoreEnum {
    fn request_work(&mut self) -> Issue {
        match self {
            StoreEnum::Single(s) => WorkStore::request_work(s),
            StoreEnum::PerShard(c) => c.request_work(),
        }
    }

    fn return_result(&mut self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError> {
        match self {
            StoreEnum::Single(s) => WorkStore::return_result(s, task, copy),
            StoreEnum::PerShard(c) => c.return_result(task, copy),
        }
    }

    fn stats(&self) -> ServeStats {
        match self {
            StoreEnum::Single(s) => s.store.stats(),
            StoreEnum::PerShard(c) => c.stats(),
        }
    }

    fn merged_outcome(&self) -> CampaignOutcome {
        match self {
            StoreEnum::Single(s) => s.store.merged_outcome(),
            StoreEnum::PerShard(c) => c.merged_outcome(),
        }
    }

    fn final_rngs(&self) -> Vec<DeterministicRng> {
        match self {
            StoreEnum::Single(s) => vec![s.rng.clone()],
            StoreEnum::PerShard(c) => c.final_rngs(),
        }
    }

    fn is_drained(&self) -> bool {
        match self {
            StoreEnum::Single(s) => s.store.is_drained(),
            StoreEnum::PerShard(c) => c.is_drained(),
        }
    }

    fn expiry_counters(&self) -> (u64, u64) {
        match self {
            StoreEnum::Single(s) => s.store.expiry_counters(),
            StoreEnum::PerShard(c) => c.expiry_counters(),
        }
    }

    fn reset_in_flight(&mut self) -> u64 {
        match self {
            StoreEnum::Single(s) => s.store.reset_in_flight(),
            StoreEnum::PerShard(c) => c.reset_in_flight(),
        }
    }
}

/// The comparable endpoint of a drained (or replayed) store: outcome,
/// final RNG streams, and — when the source tracks them — live stats.
///
/// Every serve determinism oracle compares two of these: batch kernel vs
/// drained session (no stats on the batch side), interleaved drain vs
/// shard-by-shard drain, original session vs journal replay.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainState {
    /// The merged campaign outcome.
    pub outcome: CampaignOutcome,
    /// Every RNG stream's final state (one per shard, or just the session
    /// stream).
    pub rngs: Vec<DeterministicRng>,
    /// The final stats snapshot; `None` for sources (the batch kernel)
    /// that have no serve-side counters to compare.
    pub stats: Option<ServeStats>,
}

impl DrainState {
    /// Snapshot a live store's comparable state.
    pub fn of<S: WorkStore>(store: &S) -> Self {
        DrainState {
            outcome: store.merged_outcome(),
            rngs: store.final_rngs(),
            stats: Some(store.stats()),
        }
    }

    /// The batch kernel's endpoint: an outcome and one RNG, no stats.
    pub fn batch(outcome: CampaignOutcome, rng: DeterministicRng) -> Self {
        DrainState {
            outcome,
            rngs: vec![rng],
            stats: None,
        }
    }
}

/// Compare two drained states field by field, naming the first divergence.
/// Stats are compared only when both sides carry them.
pub fn drain_equivalence(a: &DrainState, b: &DrainState) -> Result<(), String> {
    if a.outcome != b.outcome {
        return Err("merged outcome diverged".into());
    }
    if a.rngs != b.rngs {
        if a.rngs.len() != b.rngs.len() {
            return Err(format!(
                "stream count diverged: {} vs {}",
                a.rngs.len(),
                b.rngs.len()
            ));
        }
        let s = a
            .rngs
            .iter()
            .zip(&b.rngs)
            .position(|(x, y)| x != y)
            .unwrap_or(0);
        return Err(format!("final RNG state of stream {s} diverged"));
    }
    if let (Some(x), Some(y)) = (&a.stats, &b.stats) {
        if let Some(field) = first_stats_divergence(x, y) {
            return Err(format!("stats field `{field}` diverged"));
        }
    }
    Ok(())
}

/// Panic unless two drained states are equivalent per
/// [`drain_equivalence`] — the assertion every serve oracle shares.
#[track_caller]
pub fn assert_drain_equivalent(a: &DrainState, b: &DrainState) {
    if let Err(e) = drain_equivalence(a, b) {
        panic!("drained stores are not equivalent: {e}");
    }
}

/// The name of the first [`ServeStats`] counter that differs.
fn first_stats_divergence(a: &ServeStats, b: &ServeStats) -> Option<&'static str> {
    let pairs = [
        ("total_tasks", a.total_tasks, b.total_tasks),
        ("activated_tasks", a.activated_tasks, b.activated_tasks),
        ("completed_tasks", a.completed_tasks, b.completed_tasks),
        ("total_copies", a.total_copies, b.total_copies),
        ("issued", a.issued, b.issued),
        ("returned", a.returned, b.returned),
        ("in_flight", a.in_flight, b.in_flight),
        ("requeued", a.requeued, b.requeued),
        ("lost", a.lost, b.lost),
        ("timeouts", a.timeouts, b.timeouts),
        ("retries", a.retries, b.retries),
        ("cheats_attempted", a.cheats_attempted, b.cheats_attempted),
        ("cheats_detected", a.cheats_detected, b.cheats_detected),
        ("wrong_accepted", a.wrong_accepted, b.wrong_accepted),
        ("false_flags", a.false_flags, b.false_flags),
        ("unresolved_tasks", a.unresolved_tasks, b.unresolved_tasks),
    ];
    pairs
        .iter()
        .find(|(_, x, y)| x != y)
        .map(|(name, _, _)| *name)
}
