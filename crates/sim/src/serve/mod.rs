//! The live supervisor: `redundancy serve`'s sharded assignment store and
//! its length-prefixed wire protocol.
//!
//! Everything else in this crate runs the paper's redundancy scheme as a
//! *batch*: expand the plan, loop the kernel, read the tallies.  This
//! module runs it as a *system* — a long-lived supervisor that hands out
//! task copies on demand ([`store`]), tracks them in flight with
//! tick-based timeouts, judges returns incrementally, and answers a tiny
//! request/response protocol ([`protocol`]) over any byte stream.
//!
//! The design constraint throughout is the repo's standing oracle
//! discipline: a drained serve session must reproduce the batch kernel
//! **bit for bit** — same [`CampaignOutcome`](crate::CampaignOutcome),
//! same final RNG state — at any shard count and under any client
//! interleaving.  See [`store`] for how activation order makes that hold.

pub mod protocol;
pub mod store;

pub use protocol::{
    decode_frames, read_frame, read_frame_into, script_frames, serve_connection, write_frame,
    Frame, FrameKind, Reply, ServeSession, SessionEnd, MAX_FRAME,
};
pub use store::{
    drain_session, serve_experiment, Assignment, AssignmentStore, Issue, ReturnAck, ServeConfig,
    ServeError, ServeStats,
};
