//! The sharded in-memory assignment store behind `redundancy serve`.
//!
//! The store turns the batch campaign kernel inside out: instead of one
//! loop that draws, materializes, and judges every task, tasks are
//! *activated on demand* as clients call [`AssignmentStore::request_work`],
//! copies are tracked in flight with tick-based timeouts (reusing the
//! [`FaultModel`] retry policy), and a task is judged the moment its last
//! copy returns or is abandoned.  The Balanced/S_m multiplicity mix is
//! maintained incrementally: the activation cursor walks the
//! [`grouped_specs`] runs in task-id order, so the multiset of
//! multiplicities handed out is — at every moment — a prefix of the exact
//! mix the batch kernel would deal.
//!
//! # Bit-identity with the batch kernel
//!
//! Activation consumes the session RNG in *exactly* the order
//! [`run_campaign_with_scratch`](crate::engine::run_campaign_with_scratch)
//! does: one holdings draw per task through the shared
//! [`prepare_holdings`] sampler caches, then (only when
//! `honest_error_rate > 0`) the honest copies' fault draws.  Returns and
//! judging consume no randomness, and every [`CampaignOutcome`] counter is
//! a commutative sum, so a *drained* session — every copy returned, no
//! timeouts — produces an outcome and a final RNG state bit-identical to
//! the batch kernel on the same tasks, config, and seed, regardless of
//! shard count or the interleaving of client requests.  The `ext_serve`
//! exhibit and the serve proptests pin this end to end.
//!
//! # Sharding
//!
//! Task state lives in one of `shards` sub-stores selected by an FNV-1a
//! hash of the task id; each shard owns its slice of task state *and* its
//! own partial [`CampaignOutcome`], merged only when queried.  Dispatch
//! order (and therefore RNG order) is centralized in the activation
//! cursor, which is why the shard count cannot perturb outcomes.

use std::collections::VecDeque;

use crate::engine::{judge_task, prepare_holdings, CampaignConfig};
use crate::experiment::{DetectionEstimate, ExperimentConfig};
use crate::faults::FaultModel;
use crate::outcome::CampaignOutcome;
use crate::supervisor::Supervisor;
use crate::task::{
    colluded_wrong_result, correct_result, expand_plan, faulty_result, grouped_specs, ResultValue,
    SpecGroup, TaskId, TaskSpec,
};
use redundancy_core::RealizedPlan;
use redundancy_stats::parallel::{run_trials, TrialConfig};
use redundancy_stats::{BinomialCache, DeterministicRng, HypergeometricCache};

/// Configuration of the live store beyond the campaign itself.
///
/// Only the *retry* half of the [`FaultModel`] applies here — `timeout`
/// and `max_retries` govern in-flight copies — because in a live session
/// the delivery hazards (drops, stragglers, corruption) are the clients'
/// behavior, not the store's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of hash shards task state is spread over (must be ≥ 1).
    pub shards: usize,
    /// Retry policy for in-flight copies: a copy outstanding for more than
    /// `faults.timeout` ticks (one tick per `request-work`) is re-queued,
    /// up to `faults.max_retries` times, then abandoned.
    pub faults: FaultModel,
}

impl ServeConfig {
    /// `shards` hash shards with the default (fault-free) retry policy.
    pub fn new(shards: usize) -> Self {
        ServeConfig {
            shards,
            faults: FaultModel::none(),
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shard count must be at least 1".into());
        }
        self.faults.validate()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new(1)
    }
}

/// One unit of work handed to a client: one copy of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The task this copy belongs to.
    pub task: TaskId,
    /// Copy index within the task, `0..multiplicity`.
    pub copy: u32,
    /// The task's total multiplicity (how many copies exist).
    pub multiplicity: u32,
}

/// The store's answer to a work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Issue {
    /// A copy to work on.
    Work(Assignment),
    /// Nothing to hand out *right now* — every remaining copy is in
    /// flight.  Poll again (polling advances the tick clock, which is what
    /// eventually expires overdue copies).
    Idle,
    /// The workload is complete: every task has been judged.
    Drained,
}

/// Acknowledgement of an accepted `return-result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReturnAck {
    /// True if this return completed the task (its verdict is now folded
    /// into the live outcome).
    pub task_complete: bool,
}

/// A rejected `return-result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The task id is outside this session's workload.
    UnknownTask(TaskId),
    /// The copy index is not below the task's multiplicity.
    CopyOutOfRange {
        /// The offending task.
        task: TaskId,
        /// The copy index the client sent.
        copy: u32,
        /// The task's actual multiplicity.
        multiplicity: u32,
    },
    /// The copy is not currently in flight: never issued, already
    /// returned, or timed out and re-queued (a stale return).
    NotInFlight {
        /// The offending task.
        task: TaskId,
        /// The copy index the client sent.
        copy: u32,
    },
}

impl ServeError {
    /// Stable machine-readable error code (the protocol's second token).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownTask(_) => "unknown-task",
            ServeError::CopyOutOfRange { .. } => "copy-out-of-range",
            ServeError::NotInFlight { .. } => "not-in-flight",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTask(t) => write!(f, "task {} is not in this workload", t.0),
            ServeError::CopyOutOfRange {
                task,
                copy,
                multiplicity,
            } => write!(
                f,
                "copy {copy} of task {} out of range (multiplicity {multiplicity})",
                task.0
            ),
            ServeError::NotInFlight { task, copy } => {
                write!(f, "copy {copy} of task {} is not in flight", task.0)
            }
        }
    }
}

/// A deterministic snapshot of the live session, queryable at any moment.
///
/// All fields are exact counters (`Eq`, like the churn soak's report);
/// the derived rates are methods so the struct itself stays bit-comparable
/// between identical-seed runs — the CI concurrency soak `cmp`s two
/// rendered snapshots byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Tasks in the workload.
    pub total_tasks: u64,
    /// Tasks whose holdings have been drawn (dealt at least one copy).
    pub activated_tasks: u64,
    /// Tasks judged (all copies returned or abandoned).
    pub completed_tasks: u64,
    /// Copies in the full workload (sum of multiplicities).
    pub total_copies: u64,
    /// Work issues, re-issues included.
    pub issued: u64,
    /// Copies returned and accepted.
    pub returned: u64,
    /// Copies currently in flight.
    pub in_flight: u64,
    /// Copies waiting in the re-queue after a timeout.
    pub requeued: u64,
    /// Copies abandoned after exhausting their retry budget.
    pub lost: u64,
    /// Timeout expiries (each re-queues or abandons a copy).
    pub timeouts: u64,
    /// Re-issues granted after a timeout.
    pub retries: u64,
    /// Attacked tasks judged so far.
    pub cheats_attempted: u64,
    /// Of those, flagged by the supervisor.
    pub cheats_detected: u64,
    /// Wrong results accepted (recorded) by the supervisor.
    pub wrong_accepted: u64,
    /// Honest tasks flagged anyway.
    pub false_flags: u64,
    /// Tasks abandoned with no copy returned at all.
    pub unresolved_tasks: u64,
}

impl ServeStats {
    /// The live mix's achieved detection probability `P̂_k` (None before
    /// any attacked task has been judged).
    pub fn detection_rate(&self) -> Option<f64> {
        if self.cheats_attempted == 0 {
            None
        } else {
            Some(self.cheats_detected as f64 / self.cheats_attempted as f64)
        }
    }

    /// Realized redundancy factor: issues (re-issues included) per
    /// completed task (None before any task completed).
    pub fn realized_factor(&self) -> Option<f64> {
        if self.completed_tasks == 0 {
            None
        } else {
            Some(self.issued as f64 / self.completed_tasks as f64)
        }
    }

    /// FNV-1a fold over every counter: one number that differs whenever
    /// any tally differs (same idiom as the churn soak checksum).
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(self.total_tasks);
        fold(self.activated_tasks);
        fold(self.completed_tasks);
        fold(self.total_copies);
        fold(self.issued);
        fold(self.returned);
        fold(self.in_flight);
        fold(self.requeued);
        fold(self.lost);
        fold(self.timeouts);
        fold(self.retries);
        fold(self.cheats_attempted);
        fold(self.cheats_detected);
        fold(self.wrong_accepted);
        fold(self.false_flags);
        fold(self.unresolved_tasks);
        h
    }

    /// The deterministic key-value dump served for the `stats` verb (and
    /// `cmp`ed between identical-seed soak runs in CI).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "tasks-total {}", self.total_tasks);
        let _ = writeln!(s, "tasks-activated {}", self.activated_tasks);
        let _ = writeln!(s, "tasks-completed {}", self.completed_tasks);
        let _ = writeln!(s, "copies-total {}", self.total_copies);
        let _ = writeln!(s, "issued {}", self.issued);
        let _ = writeln!(s, "returned {}", self.returned);
        let _ = writeln!(s, "in-flight {}", self.in_flight);
        let _ = writeln!(s, "requeued {}", self.requeued);
        let _ = writeln!(s, "lost {}", self.lost);
        let _ = writeln!(s, "timeouts {}", self.timeouts);
        let _ = writeln!(s, "retries {}", self.retries);
        let _ = writeln!(s, "cheats-attempted {}", self.cheats_attempted);
        let _ = writeln!(s, "cheats-detected {}", self.cheats_detected);
        let _ = writeln!(s, "wrong-accepted {}", self.wrong_accepted);
        let _ = writeln!(s, "false-flags {}", self.false_flags);
        let _ = writeln!(s, "unresolved-tasks {}", self.unresolved_tasks);
        let _ = match self.detection_rate() {
            Some(d) => writeln!(s, "detection {d:.4}"),
            None => writeln!(s, "detection -"),
        };
        let _ = match self.realized_factor() {
            Some(r) => writeln!(s, "realized-factor {r:.4}"),
            None => writeln!(s, "realized-factor -"),
        };
        let _ = writeln!(s, "checksum {:#018x}", self.checksum());
        s
    }
}

/// State of one copy of one activated task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CopyState {
    /// Not currently issued: never dealt, or re-queued after a timeout.
    Pending,
    /// Handed to a client; `attempt` counts prior re-issues.
    InFlight { attempt: u32 },
    /// Returned and accepted.
    Returned,
    /// Abandoned after exhausting the retry budget.
    Lost,
}

/// Per-task live state, owned by one shard.
#[derive(Debug)]
pub(crate) struct TaskState {
    pub(crate) spec: TaskSpec,
    pub(crate) held: u32,
    pub(crate) cheats: bool,
    /// The value each copy will return, materialized at activation in the
    /// batch kernel's RNG order: adversary copies first, then honest ones.
    pub(crate) values: Vec<ResultValue>,
    pub(crate) copies: Vec<CopyState>,
    pub(crate) returned: u32,
    pub(crate) lost: u32,
    pub(crate) judged: bool,
}

/// One hash shard: its slice of task state plus its partial outcome.
#[derive(Debug, Default)]
struct Shard {
    tasks: Vec<TaskState>,
    outcome: CampaignOutcome,
}

/// Where an activated task's state lives: `(shard, slot)`.
#[derive(Debug, Clone, Copy)]
struct SlotRef {
    shard: u32,
    slot: u32,
}

const UNASSIGNED: SlotRef = SlotRef {
    shard: u32::MAX,
    slot: u32::MAX,
};

/// An in-flight record awaiting return or expiry.  Deadlines are
/// nondecreasing in issue order (the timeout is constant), so the front of
/// the queue always expires first; records invalidated by a return are
/// skipped lazily at expiry time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlightRec {
    pub(crate) task: u32,
    pub(crate) copy: u32,
    pub(crate) attempt: u32,
    pub(crate) deadline: u64,
}

/// FNV-1a over the task id's little-endian bytes — the shard hash.  Both
/// the single-stream store and the per-shard-stream concurrent store
/// partition ids with this hash, so a task lives on the same shard in
/// either mode.
pub(crate) fn shard_hash(id: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Draw one task's holdings and materialize the value each copy will
/// return, consuming `rng` in exactly the batch kernel's order: one
/// holdings draw through the shared sampler caches, then (only when
/// `honest_error_rate > 0`) the honest copies' fault draws.  Shared by
/// the single-stream [`AssignmentStore`] and the per-shard-stream
/// [`ConcurrentStore`](super::ConcurrentStore) so both activation paths
/// stay draw-for-draw identical.
pub(crate) fn materialize_task(
    config: &CampaignConfig,
    binomial: &mut BinomialCache,
    hypergeometric: &mut HypergeometricCache,
    id: TaskId,
    mult: u64,
    rng: &mut DeterministicRng,
) -> (u32, bool, Vec<ResultValue>) {
    let sampler = prepare_holdings(
        config,
        mult,
        binomial,
        hypergeometric,
        redundancy_stats::SamplerMode::BitCompat,
    );
    let held = sampler.sample(rng) as u32;
    let cheats = config.strategy.cheats_on(held);
    let wrong = colluded_wrong_result(id);
    let right = correct_result(id);
    let mut values = Vec::with_capacity(mult as usize);
    for _ in 0..held {
        values.push(if cheats { wrong } else { right });
    }
    for j in u64::from(held)..mult {
        let faulty = config.honest_error_rate > 0.0 && rng.bernoulli(config.honest_error_rate);
        values.push(if faulty {
            faulty_result(id, j ^ rng.next_raw())
        } else {
            right
        });
    }
    (held, cheats, values)
}

/// Judge a task whose copies have all returned or been abandoned, folding
/// the verdict into `outcome` — the same tail as the batch kernels.
/// `buf` is caller-owned scratch for the returned values.
pub(crate) fn judge_completed(
    supervisor: &Supervisor,
    state: &mut TaskState,
    buf: &mut Vec<ResultValue>,
    outcome: &mut CampaignOutcome,
) {
    debug_assert!(!state.judged);
    state.judged = true;
    buf.clear();
    for (value, copy) in state.values.iter().zip(&state.copies) {
        if matches!(copy, CopyState::Returned) {
            buf.push(*value);
        }
    }
    let mult = u64::from(state.spec.multiplicity);
    let returned = buf.len() as u64;
    if returned < mult {
        outcome.degraded.record((mult - returned) as usize);
    }
    if returned == 0 {
        outcome.unresolved_tasks += 1;
    } else {
        judge_task(
            supervisor,
            &state.spec,
            buf,
            state.held,
            state.cheats,
            colluded_wrong_result(state.spec.id),
            outcome,
        );
    }
}

/// The live sharded assignment store.  See the module docs for the
/// activation/judging contract.
#[derive(Debug)]
pub struct AssignmentStore {
    config: CampaignConfig,
    supervisor: Supervisor,
    timeout: u64,
    max_retries: u32,
    groups: Vec<SpecGroup>,
    base_id: u64,
    total_tasks: u64,
    total_copies: u64,
    // Activation cursor: walks groups in task-id order.
    group_cursor: usize,
    group_offset: u64,
    /// The task currently being dealt, with its next copy index.
    active: Option<(u32, u32, u32)>, // (task index, next copy, multiplicity)
    binomial: BinomialCache,
    hypergeometric: HypergeometricCache,
    shards: Vec<Shard>,
    slots: Vec<SlotRef>,
    requeue: VecDeque<(u32, u32, u32)>, // (task index, copy, attempt)
    inflight: VecDeque<InFlightRec>,
    now: u64,
    issued: u64,
    returned: u64,
    in_flight_count: u64,
    lost: u64,
    activated_tasks: u64,
    completed_tasks: u64,
    results_buf: Vec<ResultValue>,
}

impl AssignmentStore {
    /// Build a store over `tasks` (contiguous ids, as [`expand_plan`]
    /// produces) for one campaign.
    pub fn new(
        tasks: &[TaskSpec],
        config: &CampaignConfig,
        serve: &ServeConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        serve.validate()?;
        let groups: Vec<SpecGroup> = grouped_specs(tasks).collect();
        let mut expected = groups.first().map_or(0, |g| g.first_id.0);
        let base_id = expected;
        let mut total_copies = 0u64;
        for g in &groups {
            if g.multiplicity == 0 {
                return Err(format!("task {} has multiplicity 0", g.first_id.0));
            }
            if g.first_id.0 != expected {
                return Err(format!(
                    "task ids must be contiguous: expected {expected}, found {}",
                    g.first_id.0
                ));
            }
            expected += g.count;
            total_copies += g.count * u64::from(g.multiplicity);
        }
        let total_tasks = expected - base_id;
        let mut shards: Vec<Shard> = (0..serve.shards).map(|_| Shard::default()).collect();
        // The session is one campaign; the counter lives on shard 0 and
        // surfaces through the merged outcome.
        shards[0].outcome.campaigns = 1;
        Ok(AssignmentStore {
            config: *config,
            supervisor: Supervisor::new(config.policy),
            timeout: serve.faults.timeout,
            max_retries: serve.faults.max_retries,
            groups,
            base_id,
            total_tasks,
            total_copies,
            group_cursor: 0,
            group_offset: 0,
            active: None,
            binomial: BinomialCache::default(),
            hypergeometric: HypergeometricCache::default(),
            shards,
            slots: vec![UNASSIGNED; total_tasks as usize],
            requeue: VecDeque::new(),
            inflight: VecDeque::new(),
            now: 0,
            issued: 0,
            returned: 0,
            in_flight_count: 0,
            lost: 0,
            activated_tasks: 0,
            completed_tasks: 0,
            results_buf: Vec::new(),
        })
    }

    /// Number of hash shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// True once every task has been judged.
    pub fn is_drained(&self) -> bool {
        self.completed_tasks == self.total_tasks
    }

    /// Hand out the next copy of work.
    ///
    /// Advances the tick clock by one, expires overdue in-flight copies
    /// (re-queueing or abandoning them per the retry policy), then serves
    /// re-queued copies first and freshly activated tasks after.
    pub fn request_work(&mut self, rng: &mut DeterministicRng) -> Issue {
        self.now += 1;
        self.expire_overdue();
        if let Some((task, copy, attempt)) = self.requeue.pop_front() {
            return Issue::Work(self.issue(task, copy, attempt));
        }
        if self.active.is_none() {
            self.activate_next(rng);
        }
        if let Some((task, copy, mult)) = self.active {
            self.active = if copy + 1 < mult {
                Some((task, copy + 1, mult))
            } else {
                None
            };
            return Issue::Work(self.issue(task, copy, 0));
        }
        if self.in_flight_count > 0 {
            Issue::Idle
        } else {
            debug_assert!(self.is_drained(), "no work, none in flight, not drained");
            Issue::Drained
        }
    }

    /// Accept the return of one in-flight copy; judges the task when it
    /// was the last outstanding copy.
    pub fn return_result(&mut self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError> {
        let idx = task
            .0
            .checked_sub(self.base_id)
            .filter(|&i| i < self.total_tasks)
            .ok_or(ServeError::UnknownTask(task))? as usize;
        let slot = self.slots[idx];
        if slot.shard == u32::MAX {
            // Never activated, so no copy of it was ever issued.
            return Err(ServeError::NotInFlight { task, copy });
        }
        let shard = &mut self.shards[slot.shard as usize];
        let state = &mut shard.tasks[slot.slot as usize];
        if copy >= state.spec.multiplicity {
            return Err(ServeError::CopyOutOfRange {
                task,
                copy,
                multiplicity: state.spec.multiplicity,
            });
        }
        if !matches!(state.copies[copy as usize], CopyState::InFlight { .. }) {
            return Err(ServeError::NotInFlight { task, copy });
        }
        state.copies[copy as usize] = CopyState::Returned;
        state.returned += 1;
        self.returned += 1;
        self.in_flight_count -= 1;
        let complete = u64::from(state.returned + state.lost) == u64::from(state.spec.multiplicity);
        if complete {
            self.judge(slot);
        }
        Ok(ReturnAck {
            task_complete: complete,
        })
    }

    /// The live session snapshot.
    pub fn stats(&self) -> ServeStats {
        let mut attempted = 0u64;
        let mut detected = 0u64;
        let mut wrong_accepted = 0u64;
        let mut false_flags = 0u64;
        let mut unresolved = 0u64;
        let mut timeouts = 0u64;
        let mut retries = 0u64;
        for shard in &self.shards {
            attempted += shard.outcome.total_attempted();
            detected += shard.outcome.total_detected();
            wrong_accepted += shard.outcome.wrong_accepted;
            false_flags += shard.outcome.false_flags;
            unresolved += shard.outcome.unresolved_tasks;
            timeouts += shard.outcome.timeouts;
            retries += shard.outcome.retries;
        }
        ServeStats {
            total_tasks: self.total_tasks,
            activated_tasks: self.activated_tasks,
            completed_tasks: self.completed_tasks,
            total_copies: self.total_copies,
            issued: self.issued,
            returned: self.returned,
            in_flight: self.in_flight_count,
            requeued: self.requeue.len() as u64,
            lost: self.lost,
            timeouts,
            retries,
            cheats_attempted: attempted,
            cheats_detected: detected,
            wrong_accepted,
            false_flags,
            unresolved_tasks: unresolved,
        }
    }

    /// Fold the shards' partial outcomes into one [`CampaignOutcome`] —
    /// bit-identical to the batch kernel's once the session is drained.
    pub fn merged_outcome(&self) -> CampaignOutcome {
        let mut out = CampaignOutcome::default();
        for shard in &self.shards {
            out.merge(&shard.outcome);
        }
        out
    }

    /// Draw holdings and materialize result values for the next task in id
    /// order, making it the active dispatch target.  Returns false when the
    /// workload is fully activated.
    fn activate_next(&mut self, rng: &mut DeterministicRng) -> bool {
        let group = loop {
            let Some(g) = self.groups.get(self.group_cursor) else {
                return false;
            };
            if self.group_offset < g.count {
                break *g;
            }
            self.group_cursor += 1;
            self.group_offset = 0;
        };
        let mult = u64::from(group.multiplicity);
        let id = TaskId(group.first_id.0 + self.group_offset);
        self.group_offset += 1;
        // Same sampler caches, same draw order as the batch kernel.
        // The live store promises bit-identity with the batch kernel, so
        // it always draws in bit-compat mode.
        let (held, cheats, values) = materialize_task(
            &self.config,
            &mut self.binomial,
            &mut self.hypergeometric,
            id,
            mult,
            rng,
        );
        let shard_ix = (shard_hash(id.0) % self.shards.len() as u64) as u32;
        let shard = &mut self.shards[shard_ix as usize];
        shard.outcome.tasks += 1;
        shard.outcome.assignments += mult;
        shard.outcome.holdings.record(held as usize);
        let slot = shard.tasks.len() as u32;
        shard.tasks.push(TaskState {
            spec: TaskSpec {
                id,
                multiplicity: group.multiplicity,
                precomputed: group.precomputed,
            },
            held,
            cheats,
            values,
            copies: vec![CopyState::Pending; group.multiplicity as usize],
            returned: 0,
            lost: 0,
            judged: false,
        });
        let idx = (id.0 - self.base_id) as usize;
        self.slots[idx] = SlotRef {
            shard: shard_ix,
            slot,
        };
        self.active = Some((idx as u32, 0, group.multiplicity));
        self.activated_tasks += 1;
        true
    }

    /// Mark one copy in flight and register its deadline.
    fn issue(&mut self, task: u32, copy: u32, attempt: u32) -> Assignment {
        let slot = self.slots[task as usize];
        let state = &mut self.shards[slot.shard as usize].tasks[slot.slot as usize];
        debug_assert_eq!(state.copies[copy as usize], CopyState::Pending);
        state.copies[copy as usize] = CopyState::InFlight { attempt };
        let spec = state.spec;
        self.inflight.push_back(InFlightRec {
            task,
            copy,
            attempt,
            deadline: self.now + self.timeout,
        });
        self.issued += 1;
        self.in_flight_count += 1;
        Assignment {
            task: spec.id,
            copy,
            multiplicity: spec.multiplicity,
        }
    }

    /// Expire overdue in-flight copies: re-queue within the retry budget,
    /// abandon beyond it.  Records invalidated by a return are skipped.
    fn expire_overdue(&mut self) {
        while let Some(rec) = self.inflight.front().copied() {
            if rec.deadline > self.now {
                break;
            }
            self.inflight.pop_front();
            let slot = self.slots[rec.task as usize];
            let shard = &mut self.shards[slot.shard as usize];
            let state = &mut shard.tasks[slot.slot as usize];
            let live = matches!(
                state.copies[rec.copy as usize],
                CopyState::InFlight { attempt } if attempt == rec.attempt
            );
            if !live {
                continue;
            }
            self.in_flight_count -= 1;
            shard.outcome.timeouts += 1;
            if rec.attempt >= self.max_retries {
                state.copies[rec.copy as usize] = CopyState::Lost;
                state.lost += 1;
                self.lost += 1;
                shard.outcome.lost_assignments += 1;
                if u64::from(state.returned + state.lost) == u64::from(state.spec.multiplicity) {
                    self.judge(slot);
                }
            } else {
                shard.outcome.retries += 1;
                state.copies[rec.copy as usize] = CopyState::Pending;
                self.requeue
                    .push_back((rec.task, rec.copy, rec.attempt + 1));
            }
        }
    }

    /// Judge a task whose copies have all returned or been abandoned,
    /// folding the verdict into its shard's outcome — the same tail as the
    /// batch kernels.
    fn judge(&mut self, slot: SlotRef) {
        let mut buf = std::mem::take(&mut self.results_buf);
        let Shard { tasks, outcome } = &mut self.shards[slot.shard as usize];
        let state = &mut tasks[slot.slot as usize];
        self.completed_tasks += 1;
        judge_completed(&self.supervisor, state, &mut buf, outcome);
        self.results_buf = buf;
    }

    /// Running `(timeouts, lost)` totals — the deltas the journal layer
    /// logs around `request_work` to make timeout expiries replayable.
    pub fn expiry_counters(&self) -> (u64, u64) {
        let timeouts: u64 = self.shards.iter().map(|s| s.outcome.timeouts).sum();
        (timeouts, self.lost)
    }

    /// Revert every in-flight copy to pending and re-queue it under its
    /// current attempt number, returning how many copies were reverted.
    ///
    /// No timeout or retry is charged: the copies didn't expire, their
    /// clients died with a crashed session.  Both `issued` and the
    /// in-flight count are rolled back so re-issuing the re-queued copies
    /// lands the drained session in exactly the counters an uninterrupted
    /// drain reaches (conservation: `issued = returned + timeouts +
    /// in-flight` holds before and after).
    pub fn reset_in_flight(&mut self) -> u64 {
        let mut reverted = 0u64;
        while let Some(rec) = self.inflight.pop_front() {
            let slot = self.slots[rec.task as usize];
            let state = &mut self.shards[slot.shard as usize].tasks[slot.slot as usize];
            let live = matches!(
                state.copies[rec.copy as usize],
                CopyState::InFlight { attempt } if attempt == rec.attempt
            );
            if !live {
                continue;
            }
            state.copies[rec.copy as usize] = CopyState::Pending;
            self.requeue.push_back((rec.task, rec.copy, rec.attempt));
            reverted += 1;
        }
        self.in_flight_count -= reverted;
        self.issued -= reverted;
        reverted
    }

    /// Exhaustively re-derive every counter from the per-copy states and
    /// panic on any mismatch — conservation of multiplicity.  Used by the
    /// serve proptests after arbitrary interleavings; cheap enough to call
    /// inside test loops, never called on the hot path.
    pub fn check_invariants(&self) {
        let mut in_flight = 0u64;
        let mut returned = 0u64;
        let mut lost = 0u64;
        let mut activated = 0u64;
        let mut completed = 0u64;
        for shard in &self.shards {
            for state in &shard.tasks {
                activated += 1;
                let mult = state.spec.multiplicity as usize;
                assert_eq!(state.copies.len(), mult, "copy vector length drifted");
                let mut counts = [0u32; 4];
                for c in &state.copies {
                    counts[match c {
                        CopyState::Pending => 0,
                        CopyState::InFlight { .. } => 1,
                        CopyState::Returned => 2,
                        CopyState::Lost => 3,
                    }] += 1;
                }
                assert_eq!(
                    counts.iter().map(|&c| c as usize).sum::<usize>(),
                    mult,
                    "copies of task {} not conserved",
                    state.spec.id.0
                );
                assert_eq!(counts[2], state.returned, "returned count drifted");
                assert_eq!(counts[3], state.lost, "lost count drifted");
                assert_eq!(
                    state.judged,
                    u64::from(state.returned + state.lost) == u64::from(state.spec.multiplicity),
                    "task {} judged flag inconsistent",
                    state.spec.id.0
                );
                in_flight += u64::from(counts[1]);
                returned += u64::from(counts[2]);
                lost += u64::from(counts[3]);
                completed += u64::from(state.judged);
            }
        }
        assert_eq!(in_flight, self.in_flight_count, "in-flight count drifted");
        assert_eq!(returned, self.returned, "returned count drifted");
        assert_eq!(lost, self.lost, "lost count drifted");
        assert_eq!(activated, self.activated_tasks, "activation count drifted");
        assert_eq!(completed, self.completed_tasks, "completion count drifted");
        // Every re-queued copy is Pending, and no copy is queued twice.
        let mut seen = std::collections::HashSet::new();
        for &(task, copy, _) in &self.requeue {
            assert!(seen.insert((task, copy)), "copy re-queued twice");
            let slot = self.slots[task as usize];
            let state = &self.shards[slot.shard as usize].tasks[slot.slot as usize];
            assert_eq!(
                state.copies[copy as usize],
                CopyState::Pending,
                "re-queued copy not pending"
            );
        }
        // Every issue is accounted for: it either returned, timed out, or
        // is still in flight.
        let timeouts: u64 = self.shards.iter().map(|s| s.outcome.timeouts).sum();
        assert_eq!(
            self.issued,
            self.returned + timeouts + self.in_flight_count,
            "issues leaked"
        );
    }
}

/// Drain one session to completion, returning each copy as soon as it is
/// issued — the canonical single-client session the `ext_serve` oracle
/// compares against the batch kernel.  The merged outcome is folded into
/// `outcome`; the final [`ServeStats`] snapshot is returned.
pub fn drain_session(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    serve: &ServeConfig,
    rng: &mut DeterministicRng,
    outcome: &mut CampaignOutcome,
) -> ServeStats {
    let mut store = AssignmentStore::new(tasks, config, serve).expect("invalid serve session");
    loop {
        match store.request_work(rng) {
            Issue::Work(a) => {
                store
                    .return_result(a.task, a.copy)
                    .expect("drain returned an issued copy");
            }
            Issue::Idle => unreachable!("immediate returns leave nothing in flight"),
            Issue::Drained => break,
        }
    }
    outcome.merge(&store.merged_outcome());
    store.stats()
}

/// Monte-Carlo wrapper: run `config.campaigns` independent drained serve
/// sessions of `plan` under the chunked trial driver — same seeds, same
/// chunking as [`detection_experiment_with`]
/// (`crate::experiment::detection_experiment_with`), so the aggregate
/// outcome must match it bit for bit at any shard or thread count.
pub fn serve_experiment(
    plan: &RealizedPlan,
    campaign: &CampaignConfig,
    serve: &ServeConfig,
    config: &ExperimentConfig,
) -> DetectionEstimate {
    campaign.validate().expect("invalid campaign configuration");
    serve.validate().expect("invalid serve configuration");
    let tasks: Vec<TaskSpec> = expand_plan(plan);
    let trial_cfg = TrialConfig {
        trials: config.campaigns,
        chunk_size: config.chunk_size,
        threads: config.threads,
        seed: config.seed,
        // The store draws bit-compat regardless; the serve oracle promises
        // bit-identity with the batch kernel.
        sampler: Default::default(),
    };
    #[derive(Default)]
    struct ServeAccumulator {
        outcome: CampaignOutcome,
    }
    let acc: ServeAccumulator = run_trials(
        &trial_cfg,
        |rng, _i, acc: &mut ServeAccumulator| {
            drain_session(&tasks, campaign, serve, rng, &mut acc.outcome);
        },
        |a, b| a.outcome.merge(&b.outcome),
    );
    DetectionEstimate {
        outcome: acc.outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{assert_drain_equivalent, DrainState};
    use super::*;
    use crate::adversary::{AdversaryModel, CheatStrategy};
    use crate::engine::{run_campaign_with_scratch, CampaignScratch};
    use crate::experiment::detection_experiment_with;
    use crate::supervisor::VerificationPolicy;

    fn campaign() -> CampaignConfig {
        CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        )
    }

    fn specs(n: u64) -> Vec<TaskSpec> {
        expand_plan(&RealizedPlan::balanced(n, 0.5).unwrap())
    }

    #[test]
    fn drained_session_is_bit_identical_to_batch_kernel() {
        let tasks = specs(1_500);
        let mut configs = vec![campaign()];
        // Error path (per-task materialization) and Majority judging too.
        let mut errorful = campaign();
        errorful.honest_error_rate = 0.02;
        errorful.policy = VerificationPolicy::Majority;
        configs.push(errorful);
        for cfg in configs {
            for shards in [1usize, 2, 4] {
                let mut batch_rng = DeterministicRng::new(99);
                let mut serve_rng = batch_rng.clone();
                let mut batch_out = CampaignOutcome::default();
                let mut serve_out = CampaignOutcome::default();
                let mut scratch = CampaignScratch::new();
                run_campaign_with_scratch(
                    &tasks,
                    &cfg,
                    &mut batch_rng,
                    &mut batch_out,
                    &mut scratch,
                );
                drain_session(
                    &tasks,
                    &cfg,
                    &ServeConfig::new(shards),
                    &mut serve_rng,
                    &mut serve_out,
                );
                assert_drain_equivalent(
                    &DrainState::batch(batch_out, batch_rng),
                    &DrainState::batch(serve_out, serve_rng),
                );
            }
        }
    }

    #[test]
    fn serve_experiment_matches_detection_experiment_bitwise() {
        let plan = RealizedPlan::balanced(800, 0.5).unwrap();
        let cfg = ExperimentConfig::new(8, 20_050_926);
        let baseline = detection_experiment_with(&plan, &campaign(), &cfg);
        for shards in [1usize, 3] {
            let est = serve_experiment(&plan, &campaign(), &ServeConfig::new(shards), &cfg);
            assert_eq!(est.outcome, baseline.outcome, "diverged at {shards} shards");
        }
    }

    #[test]
    fn out_of_order_returns_reach_the_same_outcome() {
        let tasks = specs(300);
        let mut batch_rng = DeterministicRng::new(7);
        let mut serve_rng = batch_rng.clone();
        let mut batch_out = CampaignOutcome::default();
        let mut scratch = CampaignScratch::new();
        run_campaign_with_scratch(
            &tasks,
            &campaign(),
            &mut batch_rng,
            &mut batch_out,
            &mut scratch,
        );

        // Buffer up to 64 assignments, then return them LIFO — a wildly
        // different interleaving than the sequential drain.
        let serve = ServeConfig {
            faults: FaultModel {
                timeout: 1_000_000,
                ..FaultModel::none()
            },
            ..ServeConfig::new(2)
        };
        let mut store = AssignmentStore::new(&tasks, &campaign(), &serve).unwrap();
        let mut held: Vec<Assignment> = Vec::new();
        loop {
            match store.request_work(&mut serve_rng) {
                Issue::Work(a) => {
                    held.push(a);
                    if held.len() == 64 {
                        while let Some(a) = held.pop() {
                            store.return_result(a.task, a.copy).unwrap();
                        }
                    }
                }
                Issue::Idle => {
                    let a = held.pop().expect("idle with nothing held");
                    store.return_result(a.task, a.copy).unwrap();
                }
                Issue::Drained => break,
            }
        }
        while let Some(a) = held.pop() {
            store.return_result(a.task, a.copy).unwrap();
        }
        // Late returns can leave tasks unjudged only if copies are still
        // out; here everything was returned.
        assert!(store.is_drained());
        store.check_invariants();
        assert_drain_equivalent(
            &DrainState::batch(batch_out, batch_rng),
            &DrainState::batch(store.merged_outcome(), serve_rng),
        );
    }

    #[test]
    fn reset_in_flight_requeues_and_recovered_drain_matches_uninterrupted() {
        let tasks = specs(400);
        let serve = ServeConfig {
            faults: FaultModel {
                timeout: 1_000_000,
                ..FaultModel::none()
            },
            ..ServeConfig::new(3)
        };
        // Reference: one uninterrupted drain.
        let mut ref_rng = DeterministicRng::new(23);
        let mut ref_out = CampaignOutcome::default();
        let ref_stats = drain_session(&tasks, &campaign(), &serve, &mut ref_rng, &mut ref_out);

        // Crash scenario: issue a prefix, return a third of it, then lose
        // the clients — reset and drain the rest.
        let mut rng = DeterministicRng::new(23);
        let mut store = AssignmentStore::new(&tasks, &campaign(), &serve).unwrap();
        let mut outstanding = Vec::new();
        for i in 0..300 {
            let Issue::Work(a) = store.request_work(&mut rng) else {
                panic!("store drained too early");
            };
            if i % 3 == 0 {
                store.return_result(a.task, a.copy).unwrap();
            } else {
                outstanding.push(a);
            }
        }
        let before = store.stats();
        let reverted = store.reset_in_flight();
        assert_eq!(reverted, outstanding.len() as u64);
        store.check_invariants();
        let after = store.stats();
        assert_eq!(after.in_flight, 0);
        assert_eq!(after.requeued, before.requeued + reverted);
        assert_eq!(after.issued, before.issued - reverted);
        // Stale returns of reverted copies are rejected, not double-counted.
        let a = outstanding[0];
        assert_eq!(
            store.return_result(a.task, a.copy),
            Err(ServeError::NotInFlight {
                task: a.task,
                copy: a.copy
            })
        );
        // Finish the drain; the endpoint must match the uninterrupted run.
        loop {
            match store.request_work(&mut rng) {
                Issue::Work(a) => {
                    store.return_result(a.task, a.copy).unwrap();
                }
                Issue::Idle => unreachable!("immediate returns leave nothing in flight"),
                Issue::Drained => break,
            }
        }
        store.check_invariants();
        let mut recovered = DrainState::batch(store.merged_outcome(), rng);
        recovered.stats = Some(store.stats());
        let mut reference = DrainState::batch(ref_out, ref_rng);
        reference.stats = Some(ref_stats);
        assert_drain_equivalent(&reference, &recovered);
    }

    #[test]
    fn returns_are_validated() {
        let tasks = specs(100);
        let mut rng = DeterministicRng::new(1);
        let mut store = AssignmentStore::new(&tasks, &campaign(), &ServeConfig::new(2)).unwrap();
        // Nothing issued yet: everything is rejected.
        assert_eq!(
            store.return_result(TaskId(0), 0),
            Err(ServeError::NotInFlight {
                task: TaskId(0),
                copy: 0
            })
        );
        assert_eq!(
            store.return_result(TaskId(999_999), 0),
            Err(ServeError::UnknownTask(TaskId(999_999)))
        );
        let Issue::Work(a) = store.request_work(&mut rng) else {
            panic!("fresh store must have work");
        };
        assert_eq!(
            store.return_result(a.task, a.multiplicity),
            Err(ServeError::CopyOutOfRange {
                task: a.task,
                copy: a.multiplicity,
                multiplicity: a.multiplicity
            })
        );
        assert!(store.return_result(a.task, a.copy).is_ok());
        // Double return is stale.
        assert_eq!(
            store.return_result(a.task, a.copy),
            Err(ServeError::NotInFlight {
                task: a.task,
                copy: a.copy
            })
        );
        store.check_invariants();
    }

    #[test]
    fn timeouts_requeue_then_abandon_and_conserve_copies() {
        let tasks = specs(60);
        let serve = ServeConfig {
            faults: FaultModel {
                timeout: 2,
                max_retries: 1,
                ..FaultModel::none()
            },
            ..ServeConfig::new(3)
        };
        let mut rng = DeterministicRng::new(5);
        let mut store = AssignmentStore::new(&tasks, &campaign(), &serve).unwrap();
        // Never return anything: every copy must time out, retry once, and
        // eventually be abandoned; the store still drains (all tasks judged
        // as unresolved) with every copy accounted for.
        let mut guard = 0u64;
        loop {
            match store.request_work(&mut rng) {
                Issue::Drained => break,
                _ => {
                    guard += 1;
                    assert!(guard < 1_000_000, "drain did not terminate");
                }
            }
        }
        store.check_invariants();
        let stats = store.stats();
        assert_eq!(stats.completed_tasks, stats.total_tasks);
        assert_eq!(stats.lost, stats.total_copies);
        assert_eq!(stats.returned, 0);
        assert_eq!(stats.unresolved_tasks, stats.total_tasks);
        // Each copy: first issue + exactly one retry.
        assert_eq!(stats.issued, 2 * stats.total_copies);
        assert_eq!(stats.retries, stats.total_copies);
        assert_eq!(stats.timeouts, 2 * stats.total_copies);
        let out = store.merged_outcome();
        assert_eq!(out.unresolved_tasks, stats.total_tasks);
        assert_eq!(out.lost_assignments, stats.total_copies);
    }

    #[test]
    fn late_return_after_loss_is_stale() {
        let tasks = specs(50);
        let serve = ServeConfig {
            faults: FaultModel {
                timeout: 1,
                max_retries: 0,
                ..FaultModel::none()
            },
            ..ServeConfig::new(1)
        };
        let mut rng = DeterministicRng::new(9);
        let mut store = AssignmentStore::new(&tasks, &campaign(), &serve).unwrap();
        let Issue::Work(first) = store.request_work(&mut rng) else {
            panic!("fresh store must have work");
        };
        // The next request pushes the clock to the deadline; with no retry
        // budget the copy is abandoned, so its late return is stale.
        let _ = store.request_work(&mut rng);
        assert_eq!(
            store.return_result(first.task, first.copy),
            Err(ServeError::NotInFlight {
                task: first.task,
                copy: first.copy
            })
        );
        assert_eq!(store.stats().lost, 1);
        store.check_invariants();
    }

    #[test]
    fn partial_loss_judges_degraded_tuples() {
        // Lose exactly the adversary-free copies of nothing in particular:
        // drop every third issued copy and let it be abandoned; judged
        // tuples shrink, degraded histogram fills, outcome stays conserved.
        let tasks = specs(200);
        let serve = ServeConfig {
            faults: FaultModel {
                timeout: 3,
                max_retries: 0,
                ..FaultModel::none()
            },
            ..ServeConfig::new(2)
        };
        let mut rng = DeterministicRng::new(17);
        let mut store = AssignmentStore::new(&tasks, &campaign(), &serve).unwrap();
        let mut dropped = 0u64;
        let mut n = 0u64;
        let mut guard = 0u64;
        loop {
            match store.request_work(&mut rng) {
                Issue::Work(a) => {
                    n += 1;
                    if n.is_multiple_of(3) {
                        dropped += 1;
                    } else {
                        store.return_result(a.task, a.copy).unwrap();
                    }
                }
                Issue::Idle => {}
                Issue::Drained => break,
            }
            guard += 1;
            assert!(guard < 1_000_000, "drain did not terminate");
        }
        store.check_invariants();
        let stats = store.stats();
        assert_eq!(stats.completed_tasks, stats.total_tasks);
        assert_eq!(stats.lost, dropped);
        assert_eq!(stats.returned + stats.lost, stats.total_copies);
        let out = store.merged_outcome();
        assert_eq!(out.lost_assignments, dropped);
        // One degraded record per task that lost at least one copy.
        assert!(out.degraded.total() > 0);
    }

    #[test]
    fn stats_render_is_deterministic_and_checksummed() {
        let tasks = specs(400);
        let mut rng = DeterministicRng::new(3);
        let mut out = CampaignOutcome::default();
        let a = drain_session(
            &tasks,
            &campaign(),
            &ServeConfig::new(2),
            &mut rng,
            &mut out,
        );
        let mut rng2 = DeterministicRng::new(3);
        let mut out2 = CampaignOutcome::default();
        let b = drain_session(
            &tasks,
            &campaign(),
            &ServeConfig::new(2),
            &mut rng2,
            &mut out2,
        );
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("checksum 0x"));
        // A drained clean session realizes exactly the planned factor.
        let planned = a.total_copies as f64 / a.total_tasks as f64;
        assert!((a.realized_factor().unwrap() - planned).abs() < 1e-12);
        assert_eq!(a.detection_rate(), out.overall_detection_rate());
    }

    #[test]
    fn empty_workload_drains_immediately() {
        let mut rng = DeterministicRng::new(1);
        let mut store = AssignmentStore::new(&[], &campaign(), &ServeConfig::new(4)).unwrap();
        assert!(store.is_drained());
        assert_eq!(store.request_work(&mut rng), Issue::Drained);
        assert_eq!(store.merged_outcome().campaigns, 1);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let tasks = specs(10);
        assert!(AssignmentStore::new(&tasks, &campaign(), &ServeConfig::new(0)).is_err());
        let bad_faults = ServeConfig {
            faults: FaultModel {
                timeout: 0,
                ..FaultModel::none()
            },
            ..ServeConfig::new(1)
        };
        assert!(AssignmentStore::new(&tasks, &campaign(), &bad_faults).is_err());
        // Discontiguous ids are refused up front.
        let gap = [
            TaskSpec {
                id: TaskId(0),
                multiplicity: 2,
                precomputed: false,
            },
            TaskSpec {
                id: TaskId(5),
                multiplicity: 2,
                precomputed: false,
            },
        ];
        assert!(AssignmentStore::new(&gap, &campaign(), &ServeConfig::new(1)).is_err());
    }
}
