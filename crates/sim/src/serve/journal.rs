//! Append-only journal and bit-identical replay for the serve stores.
//!
//! The live supervisor is the sole bookkeeper of which client holds which
//! task copy; this module makes that ledger durable.  A
//! [`JournaledStore`] wraps any [`WorkStore`] and appends one record per
//! state-mutating event — a session header, every issue, every accepted
//! return, idle/drained ticks, timeout-expiry deltas, in-flight resets,
//! and shutdown — through a [`JournalWriter`] with a configurable fsync
//! policy ([`SyncPolicy`]).
//!
//! # Record framing
//!
//! Every record is `[u32 BE payload length][payload][u64 LE chain]`.  The
//! payload is a tag byte followed by little-endian fields; the trailing
//! chain value is an FNV-1a fold over the *previous* chain value and the
//! payload bytes, so each record checksums both its own bytes and its
//! position in the stream — a reordered, corrupted, or torn record breaks
//! the chain at exactly that index.
//!
//! # Replay
//!
//! Because a drained store is a pure function of `(seed, shards, stream
//! mode)` and every inter-call decision the store makes is deterministic
//! (see THEORY.md on the derived-streams law), the journal does not need
//! to snapshot any state: [`replay`] rebuilds a fresh store from the
//! header and re-executes the logged calls, *verifying* at each step that
//! the store reproduces what the journal recorded (issue identities,
//! expiry deltas, reset counts).  The result is byte-identical to the
//! original store — same outcome, same final RNG streams, same stats —
//! or a structured [`JournalError`] naming the first diverging record;
//! never a panic, never silent divergence.  Torn tails (a crash mid-
//! append) are detected by the chain checksum and, under
//! [`ReplayOptions::allow_torn_tail`], truncated away so recovery resumes
//! from the last durable record.

use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use super::concurrent::StreamMode;
use super::store::{Issue, ReturnAck, ServeConfig, ServeError, ServeStats};
use super::{StoreEnum, WorkStore};
use crate::engine::CampaignConfig;
use crate::faults::FaultModel;
use crate::outcome::CampaignOutcome;
use crate::task::{grouped_specs, TaskId, TaskSpec};
use redundancy_stats::DeterministicRng;

/// Magic bytes opening every journal's header record.
pub const MAGIC: [u8; 4] = *b"RJRN";

/// Journal format version written by this build.
pub const VERSION: u32 = 1;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Buffered appends flush to the sink once the staging buffer holds this
/// many bytes (under `batch` additionally fsyncing).
const FLUSH_THRESHOLD: usize = 8 * 1024;

/// Fold `prev` and `payload` into the next running chain value (FNV-1a).
fn chain_next(prev: u64, payload: &[u8]) -> u64 {
    let mut h = FNV_BASIS;
    let mut fold = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for b in prev.to_le_bytes() {
        fold(b);
    }
    for &b in payload {
        fold(b);
    }
    h
}

/// FNV-1a over the workload shape (grouped task specs) and the campaign
/// configuration — stamped into the session header so a journal cannot be
/// replayed against a different workload without a structured
/// [`JournalError::WorkloadMismatch`].
pub fn workload_fingerprint(tasks: &[TaskSpec], campaign: &CampaignConfig) -> u64 {
    let mut h = FNV_BASIS;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for g in grouped_specs(tasks) {
        fold(g.first_id.0);
        fold(g.count);
        fold(u64::from(g.multiplicity));
        fold(u64::from(g.precomputed));
    }
    for b in format!("{campaign:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The journal's opening record: everything [`replay`] needs to rebuild
/// the store the session started from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionHeader {
    /// The session seed the RNG stream(s) derive from.
    pub seed: u64,
    /// Hash shard count.
    pub shards: u32,
    /// Which store flavor the session ran ([`StreamMode`]).
    pub mode: StreamMode,
    /// In-flight timeout, in ticks.
    pub timeout: u64,
    /// Maximum re-issues per copy.
    pub max_retries: u32,
    /// [`workload_fingerprint`] of the tasks and campaign served.
    pub fingerprint: u64,
    /// Tasks in the workload (redundant with the fingerprint; kept for
    /// `journal-inspect` without the workload at hand).
    pub total_tasks: u64,
}

/// One journaled event.  Tag bytes are part of the on-disk format and
/// must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// Tag 1: the session header (always record 0).
    Header(SessionHeader),
    /// Tag 2: `request-work` issued this copy.
    Issue {
        /// Issued task id.
        task: u64,
        /// Issued copy index.
        copy: u32,
    },
    /// Tag 3: `request-work` answered `idle`.
    TickIdle,
    /// Tag 4: `request-work` answered `drained`.
    TickDrained,
    /// Tag 5: this copy was returned and accepted.
    Return {
        /// Returned task id.
        task: u64,
        /// Returned copy index.
        copy: u32,
    },
    /// Tag 6: the tick that follows expired overdue copies, growing the
    /// `(timeouts, lost)` totals by these deltas.  Always immediately
    /// followed by the tick's own record (`Issue`/`TickIdle`/
    /// `TickDrained`) unless a crash intervened.
    TimeoutRequeue {
        /// Timeout expiries this tick charged.
        timeouts: u64,
        /// Copies this tick abandoned (retry budget exhausted).
        lost: u64,
    },
    /// Tag 7: a client sent `shutdown` (the writer flushes here).
    Shutdown,
    /// Tag 8: recovery reverted this many in-flight copies to pending
    /// (see [`WorkStore::reset_in_flight`]).
    Reset {
        /// Copies reverted.
        reverted: u64,
    },
}

impl Record {
    /// Append this record's payload bytes (tag + fields) to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Record::Header(h) => {
                buf.push(1);
                buf.extend_from_slice(&MAGIC);
                buf.extend_from_slice(&VERSION.to_le_bytes());
                buf.extend_from_slice(&h.seed.to_le_bytes());
                buf.extend_from_slice(&h.shards.to_le_bytes());
                buf.push(match h.mode {
                    StreamMode::Single => 0,
                    StreamMode::PerShard => 1,
                });
                buf.extend_from_slice(&h.timeout.to_le_bytes());
                buf.extend_from_slice(&h.max_retries.to_le_bytes());
                buf.extend_from_slice(&h.fingerprint.to_le_bytes());
                buf.extend_from_slice(&h.total_tasks.to_le_bytes());
            }
            Record::Issue { task, copy } => {
                buf.push(2);
                buf.extend_from_slice(&task.to_le_bytes());
                buf.extend_from_slice(&copy.to_le_bytes());
            }
            Record::TickIdle => buf.push(3),
            Record::TickDrained => buf.push(4),
            Record::Return { task, copy } => {
                buf.push(5);
                buf.extend_from_slice(&task.to_le_bytes());
                buf.extend_from_slice(&copy.to_le_bytes());
            }
            Record::TimeoutRequeue { timeouts, lost } => {
                buf.push(6);
                buf.extend_from_slice(&timeouts.to_le_bytes());
                buf.extend_from_slice(&lost.to_le_bytes());
            }
            Record::Shutdown => buf.push(7),
            Record::Reset { reverted } => {
                buf.push(8);
                buf.extend_from_slice(&reverted.to_le_bytes());
            }
        }
    }

    /// Decode one payload (everything between the length prefix and the
    /// chain value).  `index` is only for error attribution.
    fn decode(payload: &[u8], index: u64) -> Result<Record, JournalError> {
        let mut c = Cursor {
            bytes: payload,
            pos: 0,
            index,
        };
        let tag = c.u8()?;
        let rec = match tag {
            1 => {
                let mut magic = [0u8; 4];
                for b in &mut magic {
                    *b = c.u8()?;
                }
                if magic != MAGIC {
                    return Err(JournalError::BadMagic);
                }
                let version = c.u32()?;
                if version != VERSION {
                    return Err(JournalError::BadVersion(version));
                }
                let seed = c.u64()?;
                let shards = c.u32()?;
                let mode = match c.u8()? {
                    0 => StreamMode::Single,
                    1 => StreamMode::PerShard,
                    m => {
                        return Err(JournalError::BadRecord {
                            index,
                            detail: format!("unknown stream mode byte {m}"),
                        })
                    }
                };
                let timeout = c.u64()?;
                let max_retries = c.u32()?;
                let fingerprint = c.u64()?;
                let total_tasks = c.u64()?;
                Record::Header(SessionHeader {
                    seed,
                    shards,
                    mode,
                    timeout,
                    max_retries,
                    fingerprint,
                    total_tasks,
                })
            }
            2 => Record::Issue {
                task: c.u64()?,
                copy: c.u32()?,
            },
            3 => Record::TickIdle,
            4 => Record::TickDrained,
            5 => Record::Return {
                task: c.u64()?,
                copy: c.u32()?,
            },
            6 => Record::TimeoutRequeue {
                timeouts: c.u64()?,
                lost: c.u64()?,
            },
            7 => Record::Shutdown,
            8 => Record::Reset { reverted: c.u64()? },
            tag => return Err(JournalError::UnknownTag { index, tag }),
        };
        c.done()?;
        Ok(rec)
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Record::Header(h) => write!(
                f,
                "header seed={} shards={} mode={} timeout={} retries={} tasks={} fingerprint={:#018x}",
                h.seed, h.shards, h.mode, h.timeout, h.max_retries, h.total_tasks, h.fingerprint
            ),
            Record::Issue { task, copy } => write!(f, "issue task={task} copy={copy}"),
            Record::TickIdle => f.write_str("tick idle"),
            Record::TickDrained => f.write_str("tick drained"),
            Record::Return { task, copy } => write!(f, "return task={task} copy={copy}"),
            Record::TimeoutRequeue { timeouts, lost } => {
                write!(f, "timeout-requeue timeouts=+{timeouts} lost=+{lost}")
            }
            Record::Shutdown => f.write_str("shutdown"),
            Record::Reset { reverted } => write!(f, "reset reverted={reverted}"),
        }
    }
}

/// Bounds-checked little-endian reader over one record payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    index: u64,
}

impl Cursor<'_> {
    fn short(&self) -> JournalError {
        JournalError::BadRecord {
            index: self.index,
            detail: "payload shorter than its tag requires".into(),
        }
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.short())?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        let end = self.pos + 4;
        let s = self.bytes.get(self.pos..end).ok_or_else(|| self.short())?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let end = self.pos + 8;
        let s = self.bytes.get(self.pos..end).ok_or_else(|| self.short())?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    fn done(&self) -> Result<(), JournalError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(JournalError::BadRecord {
                index: self.index,
                detail: format!("payload has {} trailing bytes", self.bytes.len() - self.pos),
            })
        }
    }
}

/// Everything that can go wrong reading, verifying, or replaying a
/// journal.  Every variant is a structured report — corrupt input never
/// panics and never yields a silently diverged store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O error from the sink or source.
    Io(String),
    /// The header record does not open with the journal magic bytes.
    BadMagic,
    /// The header declares a format version this build cannot read.
    BadVersion(u32),
    /// The journal is empty or does not begin with a header record.
    MissingHeader,
    /// The stream ends mid-record (torn write or external truncation).
    TruncatedRecord {
        /// Index of the incomplete record.
        index: u64,
        /// Byte offset where the incomplete record starts.
        offset: u64,
    },
    /// A record's chain checksum does not match its bytes and position.
    ChecksumMismatch {
        /// Index of the corrupt record.
        index: u64,
        /// Byte offset where the corrupt record starts.
        offset: u64,
    },
    /// A record carries a tag this build does not know.
    UnknownTag {
        /// Index of the offending record.
        index: u64,
        /// The unknown tag byte.
        tag: u8,
    },
    /// A record's payload is structurally invalid for its tag.
    BadRecord {
        /// Index of the offending record.
        index: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// The journal was written for a different workload or campaign.
    WorkloadMismatch {
        /// Fingerprint the journal's header carries.
        expected: u64,
        /// Fingerprint of the workload offered for replay.
        found: u64,
    },
    /// Replay executed a record and the store did not reproduce it.
    Diverged {
        /// Index of the first diverging record.
        index: u64,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::BadMagic => f.write_str("journal header lacks the RJRN magic"),
            JournalError::BadVersion(v) => {
                write!(f, "journal format version {v} is not supported (want {VERSION})")
            }
            JournalError::MissingHeader => {
                f.write_str("journal is empty or does not begin with a header record")
            }
            JournalError::TruncatedRecord { index, offset } => {
                write!(f, "record {index} at byte {offset} is truncated mid-record")
            }
            JournalError::ChecksumMismatch { index, offset } => {
                write!(f, "record {index} at byte {offset} fails its chain checksum")
            }
            JournalError::UnknownTag { index, tag } => {
                write!(f, "record {index} carries unknown tag {tag}")
            }
            JournalError::BadRecord { index, detail } => {
                write!(f, "record {index} is malformed: {detail}")
            }
            JournalError::WorkloadMismatch { expected, found } => write!(
                f,
                "journal was recorded over a different workload (header fingerprint {expected:#018x}, offered workload {found:#018x})"
            ),
            JournalError::Diverged { index, detail } => {
                write!(f, "replay diverged at record {index}: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// When the buffered appender hands bytes to the operating system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Flush and fsync after every record: maximum durability, one
    /// syscall pair per event.
    Always,
    /// Flush and fsync when the staging buffer fills (and at flush
    /// points): bounded loss window, amortized cost.
    #[default]
    Batch,
    /// Flush when the buffer fills but never fsync: the OS decides when
    /// bytes reach disk.  Cheapest; survives process crashes but not
    /// host crashes.
    Off,
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "batch" => Ok(SyncPolicy::Batch),
            "off" => Ok(SyncPolicy::Off),
            other => Err(format!(
                "unknown sync policy '{other}' (expected always, batch, or off)"
            )),
        }
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
            SyncPolicy::Off => "off",
        })
    }
}

/// Where journal bytes go: any writer, plus an optional durability
/// barrier (`sync`).  Files fsync; in-memory sinks treat `sync` as a
/// no-op.
pub trait JournalSink: Write {
    /// Force written bytes to durable storage (fsync for files).
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl JournalSink for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl JournalSink for Vec<u8> {}

/// A cloneable, shared in-memory sink: the crash-recovery oracles write
/// through one handle and snapshot the accumulated bytes through another,
/// truncating at arbitrary offsets without any filesystem involvement.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A fresh, empty shared buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// A copy of the bytes written so far.
    pub fn snapshot(&self) -> Vec<u8> {
        self.0.lock().expect("journal buffer poisoned").clone()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.lock().expect("journal buffer poisoned").len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("journal buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl JournalSink for SharedBuf {}

/// The buffered appender: frames, chains, and stages records, flushing
/// and fsyncing per its [`SyncPolicy`].
pub struct JournalWriter {
    sink: Box<dyn JournalSink + Send>,
    /// Staged framed bytes not yet handed to the sink.
    buf: Vec<u8>,
    /// Payload encoding scratch, reused across appends.
    scratch: Vec<u8>,
    policy: SyncPolicy,
    chain: u64,
    records: u64,
    bytes: u64,
    synced: u64,
}

impl fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalWriter")
            .field("policy", &self.policy)
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .field("synced", &self.synced)
            .field("chain", &self.chain)
            .finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// A writer over a fresh sink, chain seeded at the FNV basis.
    pub fn new<K: JournalSink + Send + 'static>(sink: K, policy: SyncPolicy) -> Self {
        JournalWriter {
            sink: Box::new(sink),
            buf: Vec::with_capacity(FLUSH_THRESHOLD + 128),
            scratch: Vec::with_capacity(64),
            policy,
            chain: FNV_BASIS,
            records: 0,
            bytes: 0,
            synced: 0,
        }
    }

    /// Resume appending to a journal whose valid prefix holds `records`
    /// records over `bytes` bytes ending with chain value `chain` — the
    /// `--recover` path, after the torn tail (if any) was truncated away.
    pub fn resume<K: JournalSink + Send + 'static>(
        sink: K,
        policy: SyncPolicy,
        chain: u64,
        records: u64,
        bytes: u64,
    ) -> Self {
        let mut w = JournalWriter::new(sink, policy);
        w.chain = chain;
        w.records = records;
        w.bytes = bytes;
        w
    }

    /// Append one record, flushing/fsyncing per the sync policy.
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        rec.encode_into(&mut payload);
        self.chain = chain_next(self.chain, &payload);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(&payload);
        self.buf.extend_from_slice(&self.chain.to_le_bytes());
        self.bytes += 4 + payload.len() as u64 + 8;
        self.records += 1;
        self.scratch = payload;
        match self.policy {
            SyncPolicy::Always => {
                self.flush_staged()?;
                self.sink.sync()?;
                self.synced += 1;
            }
            SyncPolicy::Batch => {
                if self.buf.len() >= FLUSH_THRESHOLD {
                    self.flush_staged()?;
                    self.sink.sync()?;
                    self.synced += 1;
                }
            }
            SyncPolicy::Off => {
                if self.buf.len() >= FLUSH_THRESHOLD {
                    self.flush_staged()?;
                }
            }
        }
        Ok(())
    }

    /// Hand staged bytes to the sink (no durability barrier).
    fn flush_staged(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.sink.flush()
    }

    /// Flush staged bytes and, unless the policy is `off`, fsync.
    pub fn flush(&mut self) -> io::Result<()> {
        self.flush_staged()?;
        if self.policy != SyncPolicy::Off {
            self.sink.sync()?;
            self.synced += 1;
        }
        Ok(())
    }

    /// Records appended so far (including any the writer resumed past).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Framed bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Fsync barriers issued so far.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// The running chain value after the last appended record.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// The writer's sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }
}

/// A journaling decorator over any [`WorkStore`]: every state-mutating
/// call is appended to the journal before the caller sees its result.
/// Append failures are latched into an error slot (checked via
/// [`error`](Self::error) / [`finish`](Self::finish)) rather than
/// disturbing the serve path — the store stays correct, the journal
/// stops being trustworthy, and the driver reports it at session end.
#[derive(Debug)]
pub struct JournaledStore<S: WorkStore> {
    store: S,
    writer: Option<JournalWriter>,
    error: Option<JournalError>,
}

impl<S: WorkStore> JournaledStore<S> {
    /// Wrap `store`; with `writer: None` this is a zero-cost pass-through
    /// (the journal-disabled serve path).
    pub fn new(store: S, writer: Option<JournalWriter>) -> Self {
        JournaledStore {
            store,
            writer,
            error: None,
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The writer, if journaling is enabled.
    pub fn writer(&self) -> Option<&JournalWriter> {
        self.writer.as_ref()
    }

    /// The first append error, if any occurred.
    pub fn error(&self) -> Option<&JournalError> {
        self.error.as_ref()
    }

    fn append(&mut self, rec: &Record) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.append(rec) {
                self.error = Some(JournalError::Io(e.to_string()));
            }
        }
    }

    /// Flush the journal and unwrap: the store and writer on success, the
    /// first journal error otherwise.
    pub fn finish(self) -> Result<(S, Option<JournalWriter>), JournalError> {
        let JournaledStore {
            store,
            mut writer,
            mut error,
        } = self;
        if error.is_none() {
            if let Some(w) = &mut writer {
                if let Err(e) = w.flush() {
                    error = Some(JournalError::Io(e.to_string()));
                }
            }
        }
        match error {
            Some(e) => Err(e),
            None => Ok((store, writer)),
        }
    }
}

impl<S: WorkStore> WorkStore for JournaledStore<S> {
    fn request_work(&mut self) -> Issue {
        let before = self.store.expiry_counters();
        let issue = self.store.request_work();
        let after = self.store.expiry_counters();
        if after != before {
            self.append(&Record::TimeoutRequeue {
                timeouts: after.0 - before.0,
                lost: after.1 - before.1,
            });
        }
        match issue {
            Issue::Work(a) => self.append(&Record::Issue {
                task: a.task.0,
                copy: a.copy,
            }),
            Issue::Idle => self.append(&Record::TickIdle),
            Issue::Drained => self.append(&Record::TickDrained),
        }
        issue
    }

    fn return_result(&mut self, task: TaskId, copy: u32) -> Result<ReturnAck, ServeError> {
        let r = self.store.return_result(task, copy);
        if r.is_ok() {
            self.append(&Record::Return { task: task.0, copy });
        }
        r
    }

    fn stats(&self) -> ServeStats {
        self.store.stats()
    }

    fn merged_outcome(&self) -> CampaignOutcome {
        self.store.merged_outcome()
    }

    fn final_rngs(&self) -> Vec<DeterministicRng> {
        self.store.final_rngs()
    }

    fn is_drained(&self) -> bool {
        self.store.is_drained()
    }

    fn expiry_counters(&self) -> (u64, u64) {
        self.store.expiry_counters()
    }

    fn reset_in_flight(&mut self) -> u64 {
        let reverted = self.store.reset_in_flight();
        self.append(&Record::Reset { reverted });
        reverted
    }

    fn note_shutdown(&mut self) {
        self.store.note_shutdown();
        self.append(&Record::Shutdown);
        if self.error.is_none() {
            if let Some(w) = &mut self.writer {
                if let Err(e) = w.flush() {
                    self.error = Some(JournalError::Io(e.to_string()));
                }
            }
        }
    }
}

/// How [`parse_journal`] / [`replay_with`] treat an invalid tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayOptions {
    /// Tolerate a torn tail: stop at the last fully verified record
    /// instead of reporting the truncation/corruption as an error.  This
    /// is the `--recover` semantic (a crash mid-append is expected); the
    /// strict default is the integrity-checking semantic.
    pub allow_torn_tail: bool,
}

/// A structurally verified journal: every record parsed, framed, and
/// chain-checked.
#[derive(Debug, Clone)]
pub struct ParsedJournal {
    /// The session header (always `records[0]`).
    pub header: SessionHeader,
    /// Every verified record, header included.
    pub records: Vec<Record>,
    /// Bytes covered by the verified records; anything past this is a
    /// torn tail.
    pub valid_len: u64,
    /// The chain value after the last verified record.
    pub chain: u64,
    /// True when a torn tail was tolerated (bytes past `valid_len`).
    pub torn_tail: bool,
}

/// Parse and chain-verify a journal byte stream.  Under
/// [`ReplayOptions::allow_torn_tail`] an invalid tail truncates the
/// parse; otherwise it is an error.  Structural errors *behind* a valid
/// checksum (unknown tag, short payload) are always errors — they mean a
/// format problem, not a torn write.
pub fn parse_journal(bytes: &[u8], opts: ReplayOptions) -> Result<ParsedJournal, JournalError> {
    let mut pos = 0usize;
    let mut chain = FNV_BASIS;
    let mut records: Vec<Record> = Vec::new();
    let mut torn: Option<JournalError> = None;
    while pos < bytes.len() {
        let index = records.len() as u64;
        let Some(prefix) = bytes.get(pos..pos + 4) else {
            torn = Some(JournalError::TruncatedRecord {
                index,
                offset: pos as u64,
            });
            break;
        };
        let len = u32::from_be_bytes(prefix.try_into().expect("4-byte slice")) as usize;
        let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
            torn = Some(JournalError::TruncatedRecord {
                index,
                offset: pos as u64,
            });
            break;
        };
        let Some(chain_bytes) = bytes.get(pos + 4 + len..pos + 4 + len + 8) else {
            torn = Some(JournalError::TruncatedRecord {
                index,
                offset: pos as u64,
            });
            break;
        };
        let next = chain_next(chain, payload);
        if u64::from_le_bytes(chain_bytes.try_into().expect("8-byte slice")) != next {
            torn = Some(JournalError::ChecksumMismatch {
                index,
                offset: pos as u64,
            });
            break;
        }
        let rec = Record::decode(payload, index)?;
        match (&rec, records.is_empty()) {
            (Record::Header(_), true) => {}
            (Record::Header(_), false) => {
                return Err(JournalError::BadRecord {
                    index,
                    detail: "duplicate header record".into(),
                })
            }
            (_, true) => return Err(JournalError::MissingHeader),
            (_, false) => {}
        }
        chain = next;
        records.push(rec);
        pos += 4 + len + 8;
    }
    let Some(Record::Header(header)) = records.first().copied() else {
        // Nothing durable at all: empty file, or a torn header record.
        return Err(torn.unwrap_or(JournalError::MissingHeader));
    };
    let torn_tail = match torn {
        Some(e) if !opts.allow_torn_tail => return Err(e),
        Some(_) => true,
        None => false,
    };
    Ok(ParsedJournal {
        header,
        records,
        valid_len: pos as u64,
        chain,
        torn_tail,
    })
}

/// A journal replayed back into a live store.
#[derive(Debug)]
pub struct Replayed {
    /// The reconstructed store — bit-identical (outcome, RNG streams,
    /// stats) to the store that wrote the verified prefix.
    pub store: StoreEnum,
    /// The session header the store was rebuilt from.
    pub header: SessionHeader,
    /// Verified records replayed (header included).
    pub records: u64,
    /// Bytes covered by the verified records.
    pub valid_len: u64,
    /// The chain value after the last verified record — the session's
    /// replay checksum.
    pub chain: u64,
    /// True when a torn tail was truncated away.
    pub torn_tail: bool,
}

/// Strictly replay a journal against the workload it was recorded over:
/// any truncation, corruption, or divergence is a structured error.
pub fn replay(
    bytes: &[u8],
    tasks: &[TaskSpec],
    campaign: &CampaignConfig,
) -> Result<Replayed, JournalError> {
    replay_with(bytes, tasks, campaign, ReplayOptions::default())
}

/// [`replay`] with explicit tail handling (see [`ReplayOptions`]).
pub fn replay_with(
    bytes: &[u8],
    tasks: &[TaskSpec],
    campaign: &CampaignConfig,
    opts: ReplayOptions,
) -> Result<Replayed, JournalError> {
    let parsed = parse_journal(bytes, opts)?;
    let header = parsed.header;
    let found = workload_fingerprint(tasks, campaign);
    if found != header.fingerprint {
        return Err(JournalError::WorkloadMismatch {
            expected: header.fingerprint,
            found,
        });
    }
    let serve = ServeConfig {
        shards: header.shards as usize,
        faults: FaultModel {
            timeout: header.timeout,
            max_retries: header.max_retries,
            ..FaultModel::none()
        },
    };
    let mut store = StoreEnum::new(tasks, campaign, &serve, header.seed, header.mode)
        .map_err(|detail| JournalError::BadRecord { index: 0, detail })?;
    // The `(timeouts, lost)` deltas the next tick must reproduce.
    let mut pending: Option<(u64, u64)> = None;
    for (i, rec) in parsed.records.iter().enumerate().skip(1) {
        let index = i as u64;
        match *rec {
            Record::Header(_) => unreachable!("parse_journal rejects duplicate headers"),
            Record::TimeoutRequeue { timeouts, lost } => {
                if pending.is_some() {
                    return Err(JournalError::BadRecord {
                        index,
                        detail: "consecutive timeout-requeue records".into(),
                    });
                }
                pending = Some((timeouts, lost));
            }
            Record::Issue { task, copy } => match verified_tick(&mut store, &mut pending, index)? {
                Issue::Work(a) if a.task.0 == task && a.copy == copy => {}
                other => {
                    return Err(JournalError::Diverged {
                        index,
                        detail: format!(
                            "journal issued task {task} copy {copy}, replay produced {other:?}"
                        ),
                    })
                }
            },
            Record::TickIdle => match verified_tick(&mut store, &mut pending, index)? {
                Issue::Idle => {}
                other => {
                    return Err(JournalError::Diverged {
                        index,
                        detail: format!("journal recorded idle, replay produced {other:?}"),
                    })
                }
            },
            Record::TickDrained => match verified_tick(&mut store, &mut pending, index)? {
                Issue::Drained => {}
                other => {
                    return Err(JournalError::Diverged {
                        index,
                        detail: format!("journal recorded drained, replay produced {other:?}"),
                    })
                }
            },
            Record::Return { task, copy } => {
                expect_no_pending(&pending, index)?;
                if let Err(e) = store.return_result(TaskId(task), copy) {
                    return Err(JournalError::Diverged {
                        index,
                        detail: format!("return of task {task} copy {copy} rejected: {e}"),
                    });
                }
            }
            Record::Reset { reverted } => {
                expect_no_pending(&pending, index)?;
                let n = store.reset_in_flight();
                if n != reverted {
                    return Err(JournalError::Diverged {
                        index,
                        detail: format!("reset reverted {n} copies, journal recorded {reverted}"),
                    });
                }
            }
            Record::Shutdown => expect_no_pending(&pending, index)?,
        }
    }
    // A dangling trailing timeout-requeue means the crash landed between
    // it and its tick record; the store is at the last call boundary,
    // which is exactly the state the verified prefix describes.
    Ok(Replayed {
        store,
        header,
        records: parsed.records.len() as u64,
        valid_len: parsed.valid_len,
        chain: parsed.chain,
        torn_tail: parsed.torn_tail,
    })
}

/// Execute one tick and verify its expiry deltas against the pending
/// timeout-requeue record (or no change, if none was logged).
fn verified_tick(
    store: &mut StoreEnum,
    pending: &mut Option<(u64, u64)>,
    index: u64,
) -> Result<Issue, JournalError> {
    let before = store.expiry_counters();
    let got = store.request_work();
    let after = store.expiry_counters();
    let delta = (after.0 - before.0, after.1 - before.1);
    let expected = pending.take().unwrap_or((0, 0));
    if delta != expected {
        return Err(JournalError::Diverged {
            index,
            detail: format!(
                "tick expired (timeouts +{}, lost +{}) but journal recorded (timeouts +{}, lost +{})",
                delta.0, delta.1, expected.0, expected.1
            ),
        });
    }
    Ok(got)
}

/// A timeout-requeue record must be followed by its tick, nothing else.
fn expect_no_pending(pending: &Option<(u64, u64)>, index: u64) -> Result<(), JournalError> {
    if pending.is_some() {
        return Err(JournalError::BadRecord {
            index,
            detail: "timeout-requeue not followed by a tick record".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::store::Assignment;
    use super::super::{assert_drain_equivalent, DrainState};
    use super::*;
    use crate::adversary::{AdversaryModel, CheatStrategy};
    use crate::task::expand_plan;
    use redundancy_core::RealizedPlan;

    fn campaign() -> CampaignConfig {
        CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        )
    }

    fn specs(n: u64) -> Vec<TaskSpec> {
        expand_plan(&RealizedPlan::balanced(n, 0.5).unwrap())
    }

    fn serve_config(shards: usize, timeout: u64) -> ServeConfig {
        ServeConfig {
            faults: FaultModel {
                timeout,
                max_retries: 2,
                ..FaultModel::none()
            },
            ..ServeConfig::new(shards)
        }
    }

    fn header_for(
        tasks: &[TaskSpec],
        cfg: &CampaignConfig,
        serve: &ServeConfig,
        seed: u64,
        mode: StreamMode,
    ) -> SessionHeader {
        SessionHeader {
            seed,
            shards: serve.shards as u32,
            mode,
            timeout: serve.faults.timeout,
            max_retries: serve.faults.max_retries,
            fingerprint: workload_fingerprint(tasks, cfg),
            total_tasks: tasks.len() as u64,
        }
    }

    /// Byte offset of the end of each framed record.
    fn record_ends(bytes: &[u8]) -> Vec<usize> {
        let mut ends = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let len =
                u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("length prefix")) as usize;
            pos += 4 + len + 8;
            ends.push(pos);
        }
        assert_eq!(*ends.last().expect("nonempty journal"), bytes.len());
        ends
    }

    /// The journaled state at record count `r`: the last call-boundary
    /// snapshot whose record count does not exceed `r`.  (A prefix ending
    /// on a dangling timeout-requeue record replays to the boundary
    /// *before* the tick that wrote it.)
    fn expected_state(snaps: &[(u64, DrainState)], r: u64) -> &DrainState {
        &snaps
            .iter()
            .rev()
            .find(|(records, _)| *records <= r)
            .expect("snapshot at or before record count")
            .1
    }

    /// Journal a full session under a withholding client schedule (so
    /// idles, timeout expiries, retries, and lost copies all hit the log),
    /// snapshotting the drained-comparable state after every store call.
    fn journal_session(
        tasks: &[TaskSpec],
        cfg: &CampaignConfig,
        serve: &ServeConfig,
        seed: u64,
        mode: StreamMode,
    ) -> (Vec<u8>, Vec<(u64, DrainState)>) {
        let buf = SharedBuf::new();
        let mut writer = JournalWriter::new(buf.clone(), SyncPolicy::Always);
        writer
            .append(&Record::Header(header_for(tasks, cfg, serve, seed, mode)))
            .unwrap();
        let store = StoreEnum::new(tasks, cfg, serve, seed, mode).unwrap();
        let mut js = JournaledStore::new(store, Some(writer));
        let mut snaps = vec![(1u64, DrainState::of(&js))];
        let mut held: Vec<Assignment> = Vec::new();
        let mut issued = 0u64;
        loop {
            let issue = js.request_work();
            snaps.push((js.writer().unwrap().records(), DrainState::of(&js)));
            match issue {
                Issue::Work(a) => {
                    issued += 1;
                    if issued.is_multiple_of(3) {
                        js.return_result(a.task, a.copy).unwrap();
                        snaps.push((js.writer().unwrap().records(), DrainState::of(&js)));
                    } else {
                        held.push(a);
                    }
                    // Trickle held copies back out of order; some have
                    // already timed out and are rejected (not journaled).
                    if issued.is_multiple_of(7) && !held.is_empty() {
                        let a = held.remove(0);
                        let _ = js.return_result(a.task, a.copy);
                        snaps.push((js.writer().unwrap().records(), DrainState::of(&js)));
                    }
                }
                Issue::Idle => {
                    // Only withheld copies remain: flush them all.
                    for a in held.drain(..) {
                        let _ = js.return_result(a.task, a.copy);
                        snaps.push((js.writer().unwrap().records(), DrainState::of(&js)));
                    }
                }
                Issue::Drained => break,
            }
        }
        js.note_shutdown();
        snaps.push((js.writer().unwrap().records(), DrainState::of(&js)));
        assert!(
            js.error().is_none(),
            "journal append failed: {:?}",
            js.error()
        );
        let (_store, writer) = js.finish().unwrap();
        let writer = writer.unwrap();
        let bytes = buf.snapshot();
        assert_eq!(writer.bytes(), bytes.len() as u64);
        assert_eq!(writer.records(), snaps.last().unwrap().0);
        (bytes, snaps)
    }

    /// The crash-recovery oracle: truncate the journal at *every* record
    /// boundary and verify strict replay reconstructs exactly the state
    /// the session had when that record was durable; truncate *mid*-record
    /// and verify strict replay reports the torn write while tolerant
    /// replay recovers the preceding boundary.
    fn crash_oracle(mode: StreamMode, shards: usize, seed: u64) {
        let tasks = specs(60);
        let cfg = campaign();
        let serve = serve_config(shards, 4);
        let (bytes, snaps) = journal_session(&tasks, &cfg, &serve, seed, mode);
        let ends = record_ends(&bytes);
        // The withholding schedule must actually exercise the expiry path.
        let final_state = &snaps.last().unwrap().1;
        assert!(
            final_state.stats.unwrap().timeouts > 0,
            "schedule produced no timeouts; the oracle is not covering requeues"
        );
        for r in 1..=ends.len() {
            let prefix = &bytes[..ends[r - 1]];
            let rep = replay(prefix, &tasks, &cfg)
                .unwrap_or_else(|e| panic!("strict replay of {r}-record prefix failed: {e}"));
            assert_eq!(rep.records, r as u64);
            assert_eq!(rep.valid_len, prefix.len() as u64);
            assert!(!rep.torn_tail);
            assert_eq!(rep.header.seed, seed);
            assert_drain_equivalent(
                &DrainState::of(&rep.store),
                expected_state(&snaps, r as u64),
            );
        }
        // Full-journal replay chain matches the writer's running chain.
        let full = replay(&bytes, &tasks, &cfg).unwrap();
        assert_eq!(
            full.chain,
            {
                let mut chain = FNV_BASIS;
                let mut pos = 0usize;
                while pos < bytes.len() {
                    let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                    chain = chain_next(chain, &bytes[pos + 4..pos + 4 + len]);
                    pos += 4 + len + 8;
                }
                chain
            },
            "replay chain does not match a direct re-fold of the stream"
        );
        for r in 2..=ends.len() {
            let torn = &bytes[..ends[r - 1] - 3];
            match replay(torn, &tasks, &cfg) {
                Err(JournalError::TruncatedRecord { index, .. }) => {
                    assert_eq!(index, (r - 1) as u64)
                }
                other => panic!("mid-record truncation at record {r} gave {other:?}"),
            }
            let rep = replay_with(
                torn,
                &tasks,
                &cfg,
                ReplayOptions {
                    allow_torn_tail: true,
                },
            )
            .unwrap_or_else(|e| panic!("tolerant replay of torn record {r} failed: {e}"));
            assert!(rep.torn_tail);
            assert_eq!(rep.records, (r - 1) as u64);
            assert_eq!(rep.valid_len, ends[r - 2] as u64);
            assert_drain_equivalent(
                &DrainState::of(&rep.store),
                expected_state(&snaps, (r - 1) as u64),
            );
        }
    }

    #[test]
    fn replay_matches_every_record_boundary_single_stream() {
        crash_oracle(StreamMode::Single, 3, 20_050_926);
    }

    #[test]
    fn replay_matches_every_record_boundary_per_shard() {
        crash_oracle(StreamMode::PerShard, 2, 7);
    }

    #[test]
    fn reset_record_replays_a_recovered_session() {
        for mode in [StreamMode::Single, StreamMode::PerShard] {
            let tasks = specs(200);
            let cfg = campaign();
            let serve = serve_config(3, 1_000_000);
            let buf = SharedBuf::new();
            let mut writer = JournalWriter::new(buf.clone(), SyncPolicy::Always);
            writer
                .append(&Record::Header(header_for(&tasks, &cfg, &serve, 7, mode)))
                .unwrap();
            let store = StoreEnum::new(&tasks, &cfg, &serve, 7, mode).unwrap();
            let mut js = JournaledStore::new(store, Some(writer));
            let mut held = 0u64;
            for i in 0..60 {
                let Issue::Work(a) = js.request_work() else {
                    panic!("drained too early");
                };
                if i % 2 == 0 {
                    js.return_result(a.task, a.copy).unwrap();
                } else {
                    held += 1;
                }
            }
            // Crash: the clients holding copies are gone.
            assert_eq!(js.reset_in_flight(), held);
            js.drain();
            js.note_shutdown();
            assert!(js.is_drained());
            assert!(js.error().is_none());
            let state = DrainState::of(&js);
            let replayed = replay(&buf.snapshot(), &tasks, &cfg).unwrap();
            assert_drain_equivalent(&DrainState::of(&replayed.store), &state);
            // And the recovered endpoint is the uninterrupted endpoint.
            let mut oracle = StoreEnum::new(&tasks, &cfg, &serve, 7, mode).unwrap();
            oracle.drain();
            assert_drain_equivalent(&DrainState::of(&oracle), &state);
        }
    }

    #[test]
    fn every_byte_flip_is_a_structured_error_or_detected_corruption() {
        let tasks = specs(12);
        let cfg = campaign();
        let serve = serve_config(2, 4);
        let (bytes, _) = journal_session(&tasks, &cfg, &serve, 3, StreamMode::Single);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x20;
            // Must never panic, and a flipped byte can never replay clean
            // (the chain covers every payload byte and the length prefix
            // misframes the chain itself).
            let err = replay(&corrupt, &tasks, &cfg)
                .err()
                .unwrap_or_else(|| panic!("byte flip at {pos} replayed without error"));
            let _ = err.to_string();
        }
        let ends = record_ends(&bytes);
        for cut in 0..bytes.len() {
            let err = match replay(&bytes[..cut], &tasks, &cfg) {
                Err(e) => e,
                Ok(_) => {
                    // Only a cut at an exact record boundary is a valid
                    // journal in its own right.
                    assert!(
                        ends.contains(&cut),
                        "non-boundary cut at {cut} replayed clean"
                    );
                    continue;
                }
            };
            let _ = err.to_string();
        }
    }

    #[test]
    fn sync_policies_stage_identical_bytes() {
        let tasks = specs(40);
        let cfg = campaign();
        let serve = serve_config(2, 1_000_000);
        let mut streams = Vec::new();
        for policy in [SyncPolicy::Always, SyncPolicy::Batch, SyncPolicy::Off] {
            let buf = SharedBuf::new();
            let mut writer = JournalWriter::new(buf.clone(), policy);
            writer
                .append(&Record::Header(header_for(
                    &tasks,
                    &cfg,
                    &serve,
                    5,
                    StreamMode::Single,
                )))
                .unwrap();
            let store = StoreEnum::new(&tasks, &cfg, &serve, 5, StreamMode::Single).unwrap();
            let mut js = JournaledStore::new(store, Some(writer));
            js.drain();
            js.note_shutdown();
            let (_store, writer) = js.finish().unwrap();
            let mut writer = writer.unwrap();
            writer.flush().unwrap();
            if policy == SyncPolicy::Always {
                assert!(writer.synced() >= writer.records());
            }
            streams.push(buf.snapshot());
        }
        assert_eq!(streams[0], streams[1], "batch staging changed the bytes");
        assert_eq!(streams[0], streams[2], "no-sync staging changed the bytes");
        let rep = replay(&streams[0], &tasks, &cfg).unwrap();
        assert!(rep.store.is_drained());
    }

    #[test]
    fn sync_policy_parses_and_displays() {
        for (s, p) in [
            ("always", SyncPolicy::Always),
            ("batch", SyncPolicy::Batch),
            ("off", SyncPolicy::Off),
        ] {
            assert_eq!(s.parse::<SyncPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        assert!("fsync".parse::<SyncPolicy>().is_err());
    }

    #[test]
    fn wrong_workload_is_a_fingerprint_mismatch() {
        let tasks = specs(30);
        let cfg = campaign();
        let serve = serve_config(2, 1_000_000);
        let (bytes, _) = journal_session(&tasks, &cfg, &serve, 11, StreamMode::Single);
        let other = specs(31);
        match replay(&bytes, &other, &cfg) {
            Err(JournalError::WorkloadMismatch { expected, found }) => {
                assert_ne!(expected, found)
            }
            other => panic!("wrong workload gave {other:?}"),
        }
        let mut other_cfg = campaign();
        other_cfg.honest_error_rate = 0.25;
        assert!(matches!(
            replay(&bytes, &tasks, &other_cfg),
            Err(JournalError::WorkloadMismatch { .. })
        ));
    }

    #[test]
    fn structural_errors_are_structured() {
        // Empty stream.
        assert_eq!(
            parse_journal(&[], ReplayOptions::default()).unwrap_err(),
            JournalError::MissingHeader
        );
        // A chain-valid first record that is not a header.
        let buf = SharedBuf::new();
        let mut w = JournalWriter::new(buf.clone(), SyncPolicy::Always);
        w.append(&Record::TickIdle).unwrap();
        assert_eq!(
            parse_journal(&buf.snapshot(), ReplayOptions::default()).unwrap_err(),
            JournalError::MissingHeader
        );
        // Wrong magic under a valid chain: hand-frame the payload.
        let mut payload = vec![1u8];
        payload.extend_from_slice(b"XXXX");
        payload.extend_from_slice(&VERSION.to_le_bytes());
        payload.extend_from_slice(&[0u8; 33]);
        let mut framed = Vec::new();
        framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&chain_next(FNV_BASIS, &payload).to_le_bytes());
        assert_eq!(
            parse_journal(&framed, ReplayOptions::default()).unwrap_err(),
            JournalError::BadMagic
        );
        // Unknown tag under a valid chain.
        let payload = vec![99u8];
        let mut framed = Vec::new();
        framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&chain_next(FNV_BASIS, &payload).to_le_bytes());
        assert_eq!(
            parse_journal(&framed, ReplayOptions::default()).unwrap_err(),
            JournalError::UnknownTag { index: 0, tag: 99 }
        );
    }

    #[test]
    fn records_round_trip_through_encode_and_display() {
        let header = SessionHeader {
            seed: 42,
            shards: 3,
            mode: StreamMode::PerShard,
            timeout: 8,
            max_retries: 2,
            fingerprint: 0xdead_beef,
            total_tasks: 10,
        };
        let all = [
            Record::Header(header),
            Record::Issue { task: 7, copy: 1 },
            Record::TickIdle,
            Record::TickDrained,
            Record::Return { task: 7, copy: 1 },
            Record::TimeoutRequeue {
                timeouts: 2,
                lost: 1,
            },
            Record::Shutdown,
            Record::Reset { reverted: 5 },
        ];
        let buf = SharedBuf::new();
        let mut w = JournalWriter::new(buf.clone(), SyncPolicy::Always);
        for rec in &all {
            w.append(rec).unwrap();
        }
        let parsed = parse_journal(&buf.snapshot(), ReplayOptions::default()).unwrap();
        assert_eq!(parsed.records, all.to_vec());
        assert_eq!(parsed.header, header);
        assert!(!parsed.torn_tail);
        for rec in &all {
            assert!(!rec.to_string().is_empty());
        }
        assert!(all[0].to_string().contains("mode=per-shard"));
    }
}
