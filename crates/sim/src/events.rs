//! Deterministic discrete-event queue for the churn engine.
//!
//! `std`'s [`BinaryHeap`] makes no promise about the relative order of
//! *equal* elements, and a churn run schedules many events on the same
//! tick (a census, several departures, an arrival).  If tie order leaked
//! from heap internals, two runs of the same seed could diverge the moment
//! the heap's sift path changed — so every entry carries an explicit
//! `(tick, seq)` key, with `seq` assigned monotonically at scheduling time.
//! The pop order is therefore a pure function of the schedule calls:
//! earliest tick first, and first-scheduled first within a tick.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled event.  Ordering is **only** the `(tick, seq)` pair; the
/// payload never participates, so payload types need no `Ord`.
#[derive(Debug, Clone)]
struct Entry<T> {
    tick: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.tick, self.seq) == (other.tick, other.seq)
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.tick, self.seq).cmp(&(other.tick, other.seq))
    }
}

/// A min-queue of `(tick, payload)` events with deterministic tie-breaking.
///
/// Ties on `tick` pop in scheduling order (`seq` is a monotone counter),
/// so the pop sequence never depends on [`BinaryHeap`] internals.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at `tick`; returns the entry's sequence number
    /// (its tie-break rank among same-tick events).
    pub fn schedule(&mut self, tick: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { tick, seq, payload }));
        seq
    }

    /// Pop the earliest event: smallest tick, then smallest seq.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.tick, e.payload))
    }

    /// Tick of the next event without removing it.
    pub fn peek_tick(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.tick)
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the next seq to be assigned).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_stats::DeterministicRng;

    #[test]
    fn pops_in_tick_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "e");
        q.schedule(1, "a");
        q.schedule(3, "c");
        q.schedule(2, "b");
        q.schedule(4, "d");
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            popped,
            vec![(1, "a"), (2, "b"), (3, "c"), (4, "d"), (5, "e")]
        );
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        // Many events on one tick: FIFO by seq, never heap order.
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule(7, i);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_insertion_of_distinct_ticks_pops_identically() {
        // With all ticks distinct, the pop sequence is determined by the
        // ticks alone — identical across every insertion order.
        let baseline: Vec<(u64, u64)> = (0..256u64).map(|t| (t, t * 10)).collect();
        let mut rng = DeterministicRng::new(99);
        for _ in 0..32 {
            let mut shuffled = baseline.clone();
            rng.shuffle(&mut shuffled);
            let mut q = EventQueue::new();
            for &(tick, payload) in &shuffled {
                q.schedule(tick, payload);
            }
            let popped: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(popped, baseline, "pop order depended on insertion order");
        }
    }

    #[test]
    fn randomized_schedule_matches_sorted_oracle() {
        // Random ticks with heavy collisions: the pop sequence must equal
        // a stable sort of the entries by (tick, seq).
        let mut rng = DeterministicRng::new(1234);
        for round in 0..16u64 {
            let mut q = EventQueue::new();
            let mut oracle: Vec<(u64, u64, u64)> = Vec::new();
            for i in 0..500u64 {
                let tick = rng.below(20); // ~25 events per tick
                let seq = q.schedule(tick, round * 1_000 + i);
                oracle.push((tick, seq, round * 1_000 + i));
            }
            oracle.sort();
            let popped: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop()).collect();
            let expected: Vec<(u64, u64)> = oracle.iter().map(|&(t, _, p)| (t, p)).collect();
            assert_eq!(popped, expected);
        }
    }

    #[test]
    fn interleaved_pops_and_pushes_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.peek_tick(), Some(10));
        assert_eq!(q.pop(), Some((10, 'a')));
        // Scheduling after a pop still orders by tick first.
        q.schedule(15, 'c');
        assert_eq!(q.pop(), Some((15, 'c')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert!(q.is_empty());
        assert_eq!(q.scheduled(), 3);
    }
}
