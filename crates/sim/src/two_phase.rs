//! Appendix A: collusion under two-phase simple redundancy.
//!
//! Each task is assigned once in phase one and once in phase two (the
//! "only one copy outstanding at a time" variant of simple redundancy).
//! An adversary controlling proportion `p` of participants receives `p·N`
//! of the assignments in each phase; the number of tasks she receives in
//! *both* phases — tasks she fully controls — is hypergeometric with mean
//! `(pN)²/N = p²·N`.  She is expected to fully control at least one task
//! as soon as `p ≥ 1/√N`: at SETI@home scale (millions of tasks), a
//! fraction of a percent of the participants suffices.

use redundancy_stats::samplers::sample_hypergeometric;
use redundancy_stats::{DeterministicRng, RunningMoments};

/// Parameters of the two-phase protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseConfig {
    /// Number of tasks `N`.
    pub n_tasks: u64,
    /// Adversary's proportion of participants (and hence of each phase's
    /// assignments), `0 ≤ p < 1`.
    pub proportion: f64,
}

impl TwoPhaseConfig {
    /// Create a validated configuration.
    ///
    /// # Panics
    /// Panics on `n_tasks == 0` or `p ∉ [0, 1)`.
    pub fn new(n_tasks: u64, proportion: f64) -> Self {
        assert!(n_tasks > 0, "need at least one task");
        assert!(
            proportion.is_finite() && (0.0..1.0).contains(&proportion),
            "proportion {proportion} outside [0, 1)"
        );
        TwoPhaseConfig {
            n_tasks,
            proportion,
        }
    }

    /// Assignments the adversary receives per phase: `⌊p·N⌋`.
    pub fn per_phase_holdings(&self) -> u64 {
        (self.proportion * self.n_tasks as f64).floor() as u64
    }

    /// Appendix A's closed-form expectation of fully controlled tasks,
    /// `≈ p²·N` (exactly `w²/N` with `w = ⌊pN⌋`).
    pub fn expected_full_control(&self) -> f64 {
        let w = self.per_phase_holdings() as f64;
        w * w / self.n_tasks as f64
    }

    /// The critical proportion `1/√N` above which the adversary expects to
    /// fully control at least one task.
    pub fn critical_proportion(&self) -> f64 {
        1.0 / (self.n_tasks as f64).sqrt()
    }
}

/// Result of a batch of two-phase trials.
#[derive(Debug, Clone, Default)]
pub struct TwoPhaseOutcome {
    /// Moments of the fully-controlled task count.
    pub full_control: RunningMoments,
    /// Trials in which at least one task was fully controlled (⇒ the
    /// adversary can cheat with impunity on it).
    pub cheatable_trials: u64,
    /// Total trials.
    pub trials: u64,
}

impl TwoPhaseOutcome {
    /// Fraction of trials where the adversary could cheat undetected.
    pub fn cheatable_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.cheatable_trials as f64 / self.trials as f64
        }
    }

    /// Merge another outcome.
    pub fn merge(&mut self, other: &TwoPhaseOutcome) {
        self.full_control.merge(&other.full_control);
        self.cheatable_trials += other.cheatable_trials;
        self.trials += other.trials;
    }
}

/// One two-phase trial: draw the overlap between the adversary's phase-one
/// and phase-two task sets.
///
/// Phase one hands her a uniform `w`-subset of the `N` tasks; phase two,
/// independently, another; the overlap is `Hypergeometric(N, w, w)`.
pub fn two_phase_trial(config: &TwoPhaseConfig, rng: &mut DeterministicRng) -> u64 {
    let w = config.per_phase_holdings();
    sample_hypergeometric(rng, config.n_tasks, w, w)
}

/// Run `trials` independent two-phase trials.
pub fn two_phase_batch(
    config: &TwoPhaseConfig,
    trials: u64,
    rng: &mut DeterministicRng,
) -> TwoPhaseOutcome {
    let mut out = TwoPhaseOutcome::default();
    for _ in 0..trials {
        let overlap = two_phase_trial(config, rng);
        out.full_control.push(overlap as f64);
        if overlap >= 1 {
            out.cheatable_trials += 1;
        }
        out.trials += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_matches_p_squared_n() {
        // E[overlap] = w²/N ≈ p²N; Monte Carlo must agree within CI.
        let cfg = TwoPhaseConfig::new(10_000, 0.05);
        let mut rng = DeterministicRng::new(42);
        let out = two_phase_batch(&cfg, 4_000, &mut rng);
        let expect = cfg.expected_full_control(); // 25.0
        assert!((expect - 25.0).abs() < 1e-9);
        let mean = out.full_control.mean();
        let se = out.full_control.standard_error();
        assert!(
            (mean - expect).abs() < 4.0 * se + 0.05,
            "mean {mean} vs {expect} (se {se})"
        );
    }

    #[test]
    fn critical_proportion_threshold() {
        // Just above 1/√N the adversary almost always controls some task;
        // far below, almost never.
        let n = 10_000u64;
        let crit = TwoPhaseConfig::new(n, 0.5).critical_proportion();
        assert!((crit - 0.01).abs() < 1e-12);

        let mut rng = DeterministicRng::new(7);
        let above = two_phase_batch(&TwoPhaseConfig::new(n, 3.0 * crit), 500, &mut rng);
        // E = 9 tasks ⇒ nearly every trial is cheatable.
        assert!(
            above.cheatable_fraction() > 0.95,
            "{}",
            above.cheatable_fraction()
        );

        let below = two_phase_batch(&TwoPhaseConfig::new(n, crit / 10.0), 500, &mut rng);
        // E = 0.01 ⇒ almost never.
        assert!(
            below.cheatable_fraction() < 0.1,
            "{}",
            below.cheatable_fraction()
        );
    }

    #[test]
    fn zero_proportion_never_controls() {
        let cfg = TwoPhaseConfig::new(100, 0.0);
        let mut rng = DeterministicRng::new(1);
        let out = two_phase_batch(&cfg, 50, &mut rng);
        assert_eq!(out.cheatable_trials, 0);
        assert_eq!(out.full_control.max(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let cfg = TwoPhaseConfig::new(1_000, 0.1);
        let mut rng = DeterministicRng::new(2);
        let mut a = two_phase_batch(&cfg, 100, &mut rng);
        let b = two_phase_batch(&cfg, 100, &mut rng);
        a.merge(&b);
        assert_eq!(a.trials, 200);
        assert_eq!(a.full_control.count(), 200);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_proportion_panics() {
        TwoPhaseConfig::new(10, 1.0);
    }
}
