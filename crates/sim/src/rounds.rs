//! Multi-round platform operation: reputations, bans, re-verification, and
//! credit accounting.
//!
//! A real volunteer platform is not one campaign but a stream of them.  The
//! supervisor carries state across rounds:
//!
//! * every *flagged* task is re-issued to fresh (honest, by assumption
//!   after a ban wave) participants, so the computation itself always
//!   completes correctly — the adversary's damage is the wrong results
//!   that were **accepted**, plus the redundant work re-verification costs;
//! * accounts implicated in a flagged task lose **reputation**; at a
//!   configurable threshold they are **banned** and their share of the
//!   platform shrinks — the "reactive measures" the paper alludes to;
//! * participants earn **credit** per returned assignment (the paper's
//!   second threat: "participants claim credit for work not completed" —
//!   a cheater banks credit until banned).
//!
//! The analysis the paper leaves qualitative becomes measurable here: with
//! the Balanced distribution at threshold ε, an adversary controlling
//! proportion `p` loses a `1 − (1−ε)^{1−p}` fraction of her accounts'
//! cover *per attacked task*, so her platform share — and with it the
//! damage rate — decays geometrically across rounds.

use crate::adversary::CheatStrategy;
use crate::faults::FaultModel;
use crate::retry::deliver_assignment;
use crate::task::{expand_plan, TaskSpec};
use redundancy_core::RealizedPlan;
use redundancy_stats::samplers::sample_hypergeometric;
use redundancy_stats::DeterministicRng;

/// Platform configuration for a multi-round simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Honest volunteer accounts at start.
    pub honest_accounts: u32,
    /// Adversary Sybil accounts at start.
    pub sybil_accounts: u32,
    /// Reputation lost by every account implicated in a flagged task.
    pub reputation_penalty: u32,
    /// Reputation at/below which an account is banned (accounts start at
    /// `ban_threshold + starting_margin`).
    pub ban_threshold: u32,
    /// Starting reputation margin above the ban threshold.
    pub starting_margin: u32,
    /// Credit granted per returned assignment.
    pub credit_per_assignment: u64,
    /// The adversary's cheating strategy.
    pub strategy: CheatStrategy,
}

impl PlatformConfig {
    /// A platform where one flagged implication bans the account.
    pub fn strict(honest: u32, sybil: u32, strategy: CheatStrategy) -> Self {
        PlatformConfig {
            honest_accounts: honest,
            sybil_accounts: sybil,
            reputation_penalty: 1,
            ban_threshold: 0,
            starting_margin: 1,
            credit_per_assignment: 1,
            strategy,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.honest_accounts == 0 {
            return Err("platform needs honest accounts".into());
        }
        if self.starting_margin == 0 {
            return Err("accounts must start above the ban threshold".into());
        }
        Ok(())
    }
}

/// Snapshot of one round's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u32,
    /// Adversary accounts still active at the start of the round.
    pub active_sybils: u32,
    /// Tasks the adversary attacked this round.
    pub attacks: u64,
    /// Attacked tasks that were flagged.
    pub detected: u64,
    /// Attacked tasks whose wrong result was accepted.
    pub wrong_accepted: u64,
    /// Assignments re-issued to settle flagged tasks.
    pub reverification_cost: u64,
    /// Credit banked by adversary accounts this round.
    pub sybil_credit: u64,
    /// Sybil accounts banned during this round.
    pub banned: u32,
    /// Fault injection: assignment attempts that dropped outright.
    pub drops: u64,
    /// Fault injection: attempts discarded after the timeout.
    pub timeouts: u64,
    /// Fault injection: assignments re-issued by the supervisor.
    pub retries: u64,
}

/// Aggregate of a whole multi-round run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlatformHistory {
    /// Per-round reports, in order.
    pub rounds: Vec<RoundReport>,
}

impl PlatformHistory {
    /// Total wrong results accepted across all rounds.
    pub fn total_wrong_accepted(&self) -> u64 {
        self.rounds.iter().map(|r| r.wrong_accepted).sum()
    }

    /// Total re-verification assignments across all rounds.
    pub fn total_reverification(&self) -> u64 {
        self.rounds.iter().map(|r| r.reverification_cost).sum()
    }

    /// Total credit stolen (banked by eventually-banned Sybils).
    pub fn total_sybil_credit(&self) -> u64 {
        self.rounds.iter().map(|r| r.sybil_credit).sum()
    }

    /// The first round in which no Sybil remained active, if any.
    pub fn extinction_round(&self) -> Option<u32> {
        self.rounds
            .iter()
            .find(|r| r.active_sybils == 0)
            .map(|r| r.round)
    }
}

impl redundancy_json::ToJson for RoundReport {
    fn to_json(&self) -> redundancy_json::Json {
        redundancy_json::obj(vec![
            ("round", redundancy_json::num_u64(self.round as u64)),
            (
                "active_sybils",
                redundancy_json::num_u64(self.active_sybils as u64),
            ),
            ("attacks", redundancy_json::num_u64(self.attacks)),
            ("detected", redundancy_json::num_u64(self.detected)),
            (
                "wrong_accepted",
                redundancy_json::num_u64(self.wrong_accepted),
            ),
            (
                "reverification_cost",
                redundancy_json::num_u64(self.reverification_cost),
            ),
            ("sybil_credit", redundancy_json::num_u64(self.sybil_credit)),
            ("banned", redundancy_json::num_u64(self.banned as u64)),
            ("drops", redundancy_json::num_u64(self.drops)),
            ("timeouts", redundancy_json::num_u64(self.timeouts)),
            ("retries", redundancy_json::num_u64(self.retries)),
        ])
    }
}

impl redundancy_json::FromJson for RoundReport {
    fn from_json(value: &redundancy_json::Json) -> Result<Self, redundancy_json::JsonError> {
        Ok(RoundReport {
            round: value.field_u64("round")? as u32,
            active_sybils: value.field_u64("active_sybils")? as u32,
            attacks: value.field_u64("attacks")?,
            detected: value.field_u64("detected")?,
            wrong_accepted: value.field_u64("wrong_accepted")?,
            reverification_cost: value.field_u64("reverification_cost")?,
            sybil_credit: value.field_u64("sybil_credit")?,
            banned: value.field_u64("banned")? as u32,
            drops: value.field_u64("drops")?,
            timeouts: value.field_u64("timeouts")?,
            retries: value.field_u64("retries")?,
        })
    }
}

impl redundancy_json::ToJson for PlatformHistory {
    fn to_json(&self) -> redundancy_json::Json {
        redundancy_json::obj(vec![("rounds", self.rounds.to_json())])
    }
}

impl redundancy_json::FromJson for PlatformHistory {
    fn from_json(value: &redundancy_json::Json) -> Result<Self, redundancy_json::JsonError> {
        Ok(PlatformHistory {
            rounds: Vec::<RoundReport>::from_json(value.field("rounds")?)?,
        })
    }
}

/// Internal per-Sybil account state (honest accounts need no state: they
/// are never implicated unless a fault model is added, which this
/// simulation keeps off to isolate the adversarial dynamics).
#[derive(Debug, Clone, Copy)]
struct Sybil {
    reputation: i64,
    banned: bool,
}

/// Run `rounds` successive campaigns of `plan` on a stateful platform.
///
/// Each round: every task's copies go to distinct accounts drawn from the
/// currently active pool; the adversary colludes across her active Sybils;
/// flagged tasks implicate every assigned account (honest ones are assumed
/// to clear investigation — the paper's supervisor verifies flagged tasks
/// itself) and cost `multiplicity` re-issued assignments.
pub fn run_platform(
    plan: &RealizedPlan,
    config: &PlatformConfig,
    rounds: u32,
    rng: &mut DeterministicRng,
) -> PlatformHistory {
    run_platform_with_faults(plan, config, &FaultModel::none(), rounds, rng)
}

/// [`run_platform`] under a [`FaultModel`]: every assignment passes through
/// the retry loop before the round's bookkeeping.
///
/// The analytic detection rule adapts to what actually *returned*: a
/// cheated ringer is caught iff any adversary copy came back; a cheated
/// normal task is caught iff at least one adversary copy **and** one honest
/// copy returned (otherwise there is nothing to disagree with and the wrong
/// result is accepted); an attack none of whose copies returned fizzles —
/// neither caught nor damaging.  Sybil credit is paid only for returned
/// copies, and only returned copies implicate accounts.  Corruption flips
/// values, not delivery, so this comparison-count model ignores
/// `corrupt_rate` — the materialized engine in [`crate::engine`] covers it.
///
/// With an inactive model this is bit-for-bit [`run_platform`]: the fault
/// layer consumes no randomness.
pub fn run_platform_with_faults(
    plan: &RealizedPlan,
    config: &PlatformConfig,
    faults: &FaultModel,
    rounds: u32,
    rng: &mut DeterministicRng,
) -> PlatformHistory {
    config.validate().expect("invalid platform configuration");
    debug_assert!(faults.validate().is_ok(), "invalid fault model");
    let tasks: Vec<TaskSpec> = expand_plan(plan);
    let start_rep = config.ban_threshold as i64 + config.starting_margin as i64;
    let mut sybils: Vec<Sybil> = (0..config.sybil_accounts)
        .map(|_| Sybil {
            reputation: start_rep,
            banned: false,
        })
        .collect();
    let mut history = PlatformHistory::default();

    for round in 0..rounds {
        let active: Vec<usize> = sybils
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.banned)
            .map(|(i, _)| i)
            .collect();
        let active_sybils = active.len() as u32;
        let pool_total = config.honest_accounts as u64 + active_sybils as u64;
        let mut report = RoundReport {
            round,
            active_sybils,
            attacks: 0,
            detected: 0,
            wrong_accepted: 0,
            reverification_cost: 0,
            sybil_credit: 0,
            banned: 0,
            drops: 0,
            timeouts: 0,
            retries: 0,
        };

        for task in &tasks {
            let mult = task.multiplicity as u64;
            let held = if active_sybils == 0 {
                0
            } else {
                sample_hypergeometric(rng, pool_total, active_sybils as u64, mult.min(pool_total))
            } as u32;
            // Deliver every copy through the retry loop; with an inactive
            // model this collapses to "all copies return, no draws".
            let (returned_adv, returned_honest) = if faults.is_active() {
                let mut deliver = |n: u64| {
                    let mut returned = 0u64;
                    for _ in 0..n {
                        let d = deliver_assignment(faults, rng);
                        report.drops += d.drops;
                        report.timeouts += d.timeouts;
                        report.retries += d.retries;
                        returned += u64::from(d.returned);
                    }
                    returned
                };
                let adv = deliver(u64::from(held));
                (adv, deliver(mult - u64::from(held)))
            } else {
                (u64::from(held), mult - u64::from(held))
            };
            // Credit: every returned assignment pays, cheated or not —
            // that is exactly the "credit for work not completed" threat.
            report.sybil_credit += returned_adv * config.credit_per_assignment;
            if held == 0 || !config.strategy.cheats_on(held) {
                continue;
            }
            report.attacks += 1;
            if returned_adv == 0 {
                // The attack fizzled: no wrong copy ever arrived.
                continue;
            }
            let detected = task.precomputed || returned_honest > 0;
            if !detected {
                report.wrong_accepted += 1;
                continue;
            }
            report.detected += 1;
            report.reverification_cost += mult;
            // Implicate the returned copies' accounts: penalize that many
            // random active Sybils (which specific ones does not matter
            // statistically — accounts are exchangeable).
            for _ in 0..returned_adv.min(active_sybils as u64) {
                let pick = active[rng.below(active.len() as u64) as usize];
                let s = &mut sybils[pick];
                if !s.banned {
                    s.reputation -= config.reputation_penalty as i64;
                    if s.reputation <= config.ban_threshold as i64 {
                        s.banned = true;
                        report.banned += 1;
                    }
                }
            }
        }
        history.rounds.push(report);
        if sybils.iter().all(|s| s.banned) && round + 1 < rounds {
            // Record the post-extinction round explicitly and stop early.
            history.rounds.push(RoundReport {
                round: round + 1,
                active_sybils: 0,
                attacks: 0,
                detected: 0,
                wrong_accepted: 0,
                reverification_cost: 0,
                sybil_credit: 0,
                banned: 0,
                drops: 0,
                timeouts: 0,
                retries: 0,
            });
            break;
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> RealizedPlan {
        RealizedPlan::balanced(5_000, 0.75).unwrap()
    }

    #[test]
    fn config_validation() {
        let ok = PlatformConfig::strict(100, 10, CheatStrategy::Always);
        assert!(ok.validate().is_ok());
        let mut bad = ok;
        bad.honest_accounts = 0;
        assert!(bad.validate().is_err());
        let mut bad2 = ok;
        bad2.starting_margin = 0;
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn strict_bans_drive_sybils_extinct() {
        let plan = plan();
        let cfg = PlatformConfig::strict(9_000, 1_000, CheatStrategy::AtLeast { min_copies: 1 });
        let mut rng = DeterministicRng::new(42);
        let history = run_platform(&plan, &cfg, 20, &mut rng);
        // With ε = 0.75 almost every attack costs accounts; the Sybil army
        // must be gone quickly.
        let ext = history.extinction_round();
        assert!(ext.is_some(), "sybils survived 20 rounds");
        assert!(ext.unwrap() <= 10, "extinction at {ext:?}");
        // Damage bounded: wrong-accepted only in early rounds.
        let late_damage: u64 = history
            .rounds
            .iter()
            .filter(|r| r.round >= ext.unwrap())
            .map(|r| r.wrong_accepted)
            .sum();
        assert_eq!(late_damage, 0);
    }

    #[test]
    fn adversary_share_decays_monotonically_under_strict_bans() {
        let plan = plan();
        let cfg = PlatformConfig::strict(9_000, 2_000, CheatStrategy::AtLeast { min_copies: 1 });
        let mut rng = DeterministicRng::new(7);
        let history = run_platform(&plan, &cfg, 10, &mut rng);
        for w in history.rounds.windows(2) {
            assert!(
                w[1].active_sybils <= w[0].active_sybils,
                "sybil count must not grow"
            );
        }
        assert!(history.rounds[0].active_sybils == 2_000);
    }

    #[test]
    fn never_cheating_sybils_are_never_banned_but_bank_credit() {
        let plan = plan();
        let cfg = PlatformConfig::strict(900, 100, CheatStrategy::Never);
        let mut rng = DeterministicRng::new(3);
        let history = run_platform(&plan, &cfg, 3, &mut rng);
        assert_eq!(history.extinction_round(), None);
        assert_eq!(history.total_wrong_accepted(), 0);
        assert!(
            history.total_sybil_credit() > 0,
            "lurking still pays credit"
        );
        assert_eq!(history.total_reverification(), 0);
    }

    #[test]
    fn lenient_thresholds_prolong_the_damage() {
        let plan = plan();
        let strict = PlatformConfig::strict(9_000, 1_000, CheatStrategy::AtLeast { min_copies: 1 });
        let lenient = PlatformConfig {
            starting_margin: 25,
            ..strict
        };
        let mut rng1 = DeterministicRng::new(11);
        let mut rng2 = DeterministicRng::new(11);
        let h_strict = run_platform(&plan, &strict, 30, &mut rng1);
        let h_lenient = run_platform(&plan, &lenient, 30, &mut rng2);
        assert!(
            h_lenient.total_wrong_accepted() >= h_strict.total_wrong_accepted(),
            "lenient {} vs strict {}",
            h_lenient.total_wrong_accepted(),
            h_strict.total_wrong_accepted()
        );
        match (h_strict.extinction_round(), h_lenient.extinction_round()) {
            (Some(s), Some(l)) => assert!(l >= s),
            (Some(_), None) => {}
            other => panic!("unexpected extinction pattern {other:?}"),
        }
    }

    #[test]
    fn reverification_cost_tracks_detections() {
        let plan = plan();
        let cfg = PlatformConfig::strict(5_000, 500, CheatStrategy::AtLeast { min_copies: 1 });
        let mut rng = DeterministicRng::new(13);
        let history = run_platform(&plan, &cfg, 5, &mut rng);
        let detected: u64 = history.rounds.iter().map(|r| r.detected).sum();
        assert!(detected > 0);
        // Each detection costs at least 1 re-issued assignment.
        assert!(history.total_reverification() >= detected);
    }

    #[test]
    fn deterministic_replay() {
        let plan = plan();
        let cfg = PlatformConfig::strict(1_000, 100, CheatStrategy::Always);
        let mut a = DeterministicRng::new(5);
        let mut b = DeterministicRng::new(5);
        assert_eq!(
            run_platform(&plan, &cfg, 4, &mut a),
            run_platform(&plan, &cfg, 4, &mut b)
        );
    }

    #[test]
    fn zero_fault_platform_matches_baseline_exactly() {
        let plan = plan();
        let cfg = PlatformConfig::strict(2_000, 200, CheatStrategy::Always);
        let mut a = DeterministicRng::new(21);
        let mut b = DeterministicRng::new(21);
        let baseline = run_platform(&plan, &cfg, 5, &mut a);
        let faulty = run_platform_with_faults(&plan, &cfg, &FaultModel::none(), 5, &mut b);
        assert_eq!(baseline, faulty);
        assert_eq!(a, b, "inactive faults must not consume randomness");
    }

    #[test]
    fn drops_slow_the_ban_wave_and_pay_less_credit() {
        let plan = plan();
        let cfg = PlatformConfig::strict(5_000, 500, CheatStrategy::AtLeast { min_copies: 1 });
        let faults = FaultModel {
            max_retries: 0,
            ..FaultModel::with_drop_rate(0.6)
        };
        let mut a = DeterministicRng::new(31);
        let mut b = DeterministicRng::new(31);
        let clean = run_platform(&plan, &cfg, 3, &mut a);
        let lossy = run_platform_with_faults(&plan, &cfg, &faults, 3, &mut b);
        assert!(lossy.rounds[0].drops > 0);
        // Fewer returned copies: fewer implications, so fewer bans...
        assert!(lossy.rounds[0].banned <= clean.rounds[0].banned);
        // ...and less credit banked per round.
        assert!(lossy.rounds[0].sybil_credit < clean.rounds[0].sybil_credit);
    }

    #[test]
    fn faulty_platform_replays_deterministically() {
        let plan = plan();
        let cfg = PlatformConfig::strict(1_000, 100, CheatStrategy::Always);
        let faults = FaultModel {
            straggler_rate: 0.3,
            straggler_mean_delay: 12.0,
            ..FaultModel::with_drop_rate(0.2)
        };
        let mut a = DeterministicRng::new(41);
        let mut b = DeterministicRng::new(41);
        assert_eq!(
            run_platform_with_faults(&plan, &cfg, &faults, 4, &mut a),
            run_platform_with_faults(&plan, &cfg, &faults, 4, &mut b)
        );
    }

    #[test]
    fn history_serializes() {
        let plan = plan();
        let cfg = PlatformConfig::strict(1_000, 50, CheatStrategy::Always);
        let mut rng = DeterministicRng::new(9);
        let history = run_platform(&plan, &cfg, 2, &mut rng);
        let json = redundancy_json::to_string(&history);
        let back: PlatformHistory = redundancy_json::from_str(&json).unwrap();
        assert_eq!(history, back);
    }
}
